"""Figure 2: the Arduino network artifact (physical probe).

"The artifact contains a series of RGB LEDs that respond to key network
characteristics.  The current artifact supports three distinct modes:

* Mode 1.  Wireless signal strength from the artifact to the hub is
  mapped to the number of lit LEDs ...
* Mode 2.  The current total bandwidth usage of the network as a
  proportion of peak usage observed in the last day is mapped to
  animation of the LEDs ...
* Mode 3.  DHCP leases granted and revoked are signaled by a series of
  flashes in either green or blue respectively, while high proportions
  of packet retries for any machine on the network are signaled by a
  series of red flashes."
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

from ..core.events import Event, EventBus
from ..measurement.aggregator import BandwidthAggregator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hwdb.database import HomeworkDatabase
    from ..sim.simulator import Simulator
    from ..sim.wireless import RadioEnvironment

Color = Tuple[int, int, int]

OFF: Color = (0, 0, 0)
WHITE: Color = (255, 255, 255)
GREEN: Color = (0, 255, 0)
BLUE: Color = (0, 0, 255)
RED: Color = (255, 0, 0)

MODE_SIGNAL = 1
MODE_BANDWIDTH = 2
MODE_EVENTS = 3

#: RSSI mapping range for Mode 1 (full strip at -40 dBm, none at -90).
RSSI_FLOOR = -90.0
RSSI_CEIL = -40.0

#: Retry proportion above which Mode 3 flashes red.
RETRY_ALERT_THRESHOLD = 0.25

#: Flashes per DHCP event / retry alert.
FLASHES_PER_EVENT = 3


class LedStrip:
    """The row of RGB LEDs on the artifact's face."""

    def __init__(self, count: int = 12):
        self.count = count
        self.leds: List[Color] = [OFF] * count

    def clear(self) -> None:
        self.leds = [OFF] * self.count

    def fill(self, n: int, color: Color = WHITE) -> None:
        """Light the first ``n`` LEDs."""
        self.clear()
        for i in range(max(0, min(n, self.count))):
            self.leds[i] = color

    def set_all(self, color: Color) -> None:
        self.leds = [color] * self.count

    def lit_count(self) -> int:
        return sum(1 for led in self.leds if led != OFF)

    def render(self) -> str:
        """One character per LED: direction of the dominant channel."""
        chars = []
        for r, g, b in self.leds:
            if (r, g, b) == (0, 0, 0):
                chars.append(".")
            elif r == g == b:
                chars.append("#" if r > 128 else "+")
            elif r >= g and r >= b:
                chars.append("R" if r > 128 else "r")
            elif g >= r and g >= b:
                chars.append("G" if g > 128 else "g")
            else:
                chars.append("B" if b > 128 else "b")
        return "[" + "".join(chars) + "]"


class NetworkArtifact:
    """The physical probe: an LED strip driven by the measurement plane."""

    def __init__(
        self,
        sim: "Simulator",
        bus: EventBus,
        aggregator: BandwidthAggregator,
        radio: Optional["RadioEnvironment"] = None,
        db: Optional["HomeworkDatabase"] = None,
        led_count: int = 12,
        tick_interval: float = 0.1,
        position: Tuple[float, float] = (3.0, 3.0),
        station_mac: Optional[str] = None,
    ):
        self.sim = sim
        self.bus = bus
        self.aggregator = aggregator
        self.radio = radio
        self.db = db
        # When the artifact is itself a joined wireless station, Mode 1
        # reads its RSSI "reflected by the measurement plane" (the Links
        # table) exactly as the paper describes, rather than asking the
        # radio model directly.
        self.station_mac = station_mac
        self.strip = LedStrip(led_count)
        self.mode = MODE_SIGNAL
        self.position = position
        self.tick_interval = tick_interval

        # Mode 2 animation state.
        self._phase = 0.0
        self.base_speed = 2.0  # LEDs per second when idle
        self.max_speed = 40.0  # LEDs per second at peak utilisation
        self.current_speed = 0.0

        # Mode 3 flash queue: (color, flashes remaining).
        self._flash_queue: List[Tuple[Color, int]] = []
        self._flash_on = False
        self.flash_history: List[Tuple[float, str]] = []

        self._timer = None
        self._subs = [
            bus.subscribe("dhcp.lease.granted", self._on_lease_event),
            bus.subscribe("dhcp.lease.revoked", self._on_lease_event),
        ]
        self.ticks = 0

    # ------------------------------------------------------------------
    # Lifecycle / interaction
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._timer = self.sim.schedule_periodic(self.tick_interval, self.tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        for sub in self._subs:
            sub.cancel()
        self._subs = []

    def set_mode(self, mode: int) -> None:
        if mode not in (MODE_SIGNAL, MODE_BANDWIDTH, MODE_EVENTS):
            raise ValueError(f"no such artifact mode {mode}")
        self.mode = mode
        self.strip.clear()

    def move(self, position: Tuple[float, float]) -> float:
        """Carry the artifact to a new spot; returns the RSSI there.

        This is the Mode 1 use: walking the probe around the house to
        "expose areas of high or low signal strength".
        """
        self.position = position
        return self.rssi()

    def rssi(self) -> float:
        if self.station_mac is not None and self.db is not None:
            measured = self._measured_rssi()
            if measured is not None:
                return measured
        if self.radio is None:
            return RSSI_CEIL
        return self.radio.rssi_at(self.position)

    def _measured_rssi(self) -> Optional[float]:
        """The router's view of this station from hwdb ``Links``."""
        result = self.db.query(
            f"SELECT last(rssi) FROM links WHERE mac = '{self.station_mac}' "
            f"AND wired = false"
        )
        value = result.scalar()
        return float(value) if value is not None else None

    # ------------------------------------------------------------------
    # The Arduino loop
    # ------------------------------------------------------------------

    def tick(self) -> None:
        self.ticks += 1
        if self.mode == MODE_SIGNAL:
            self._tick_signal()
        elif self.mode == MODE_BANDWIDTH:
            self._tick_bandwidth()
        else:
            self._tick_events()

    def _tick_signal(self) -> None:
        rssi = self.rssi()
        fraction = (rssi - RSSI_FLOOR) / (RSSI_CEIL - RSSI_FLOOR)
        fraction = max(0.0, min(1.0, fraction))
        self.strip.fill(int(round(fraction * self.strip.count)), WHITE)

    def _tick_bandwidth(self) -> None:
        utilisation = self.aggregator.utilisation()
        self.current_speed = self.base_speed + utilisation * (
            self.max_speed - self.base_speed
        )
        self._phase = (self._phase + self.current_speed * self.tick_interval) % self.strip.count
        self.strip.clear()
        # A three-LED comet whose speed tracks utilisation.
        head = int(self._phase)
        for offset, brightness in ((0, 255), (1, 128), (2, 48)):
            index = (head - offset) % self.strip.count
            self.strip.leds[index] = (brightness, brightness, brightness)

    def _tick_events(self) -> None:
        # Check link health for retry alerts (red flashes).
        if self.db is not None and not self._flash_queue:
            retry_fraction = self._max_retry_proportion()
            if retry_fraction > RETRY_ALERT_THRESHOLD:
                self._flash_queue.append((RED, FLASHES_PER_EVENT))
                self.flash_history.append((self.sim.now, "red"))
        if not self._flash_queue:
            self.strip.clear()
            self._flash_on = False
            return
        color, remaining = self._flash_queue[0]
        if self._flash_on:
            self.strip.clear()
            self._flash_on = False
            remaining -= 1
            if remaining <= 0:
                self._flash_queue.pop(0)
            else:
                self._flash_queue[0] = (color, remaining)
        else:
            self.strip.set_all(color)
            self._flash_on = True

    def _max_retry_proportion(self) -> float:
        result = self.db.query(
            "SELECT sum(retries) AS r, sum(packets) AS p FROM links [RANGE 5 SECONDS]"
        )
        if not result.rows:
            return 0.0
        retries, packets = result.rows[0]
        if not packets:
            return 0.0
        return (retries or 0) / packets

    # ------------------------------------------------------------------
    # Event feed (Mode 3)
    # ------------------------------------------------------------------

    def _on_lease_event(self, event: Event) -> None:
        if event.name == "dhcp.lease.granted":
            color, label = GREEN, "green"
        else:
            color, label = BLUE, "blue"
        self._flash_queue.append((color, FLASHES_PER_EVENT))
        self.flash_history.append((self.sim.now, label))

    def render(self) -> str:
        mode_names = {
            MODE_SIGNAL: "signal",
            MODE_BANDWIDTH: "bandwidth",
            MODE_EVENTS: "events",
        }
        return f"artifact[{mode_names[self.mode]}] {self.strip.render()}"
