"""Figure 3: the situated drag-and-drop DHCP control interface.

"A simple control interface that exercises the control API to manage
DHCP allocations, accessed via a situated display in the home.  This
allows non-expert users to detect, interrogate and supply metadata for
devices requesting access, and to control the DHCP server on a
case-by-case basis by dragging the device's tab into the appropriate
permitted/denied category."

The UI model: three columns of device *tabs* (pending / permitted /
denied); drag = :meth:`drag`; tapping a tab = :meth:`interrogate`;
filling the name dialog = :meth:`supply_metadata`.  Everything goes
through the control API, never directly to the DHCP server.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING, Union

from ..core.events import Event, EventBus
from ..net.addresses import MACAddress
from ..services.control_api.http import HttpError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..services.control_api.api import ControlApi

CATEGORIES = ("pending", "permitted", "denied")


class DeviceTab:
    """One draggable tab on the display."""

    __slots__ = ("mac", "display_name", "hostname", "ip", "state", "metadata")

    def __init__(self, entry: Dict[str, object]):
        self.mac = str(entry["mac"])
        self.display_name = str(entry.get("display_name") or self.mac)
        self.hostname = str(entry.get("hostname") or "")
        self.ip = entry.get("ip")
        self.state = str(entry.get("state"))
        self.metadata = dict(entry.get("metadata") or {})

    def __repr__(self) -> str:
        return f"DeviceTab({self.display_name}, {self.state})"


class ControlInterface:
    """The situated display's model + controller."""

    def __init__(self, control_api: "ControlApi", bus: Optional[EventBus] = None):
        self.control_api = control_api
        self.tabs: Dict[str, List[DeviceTab]] = {c: [] for c in CATEGORIES}
        self.notifications: List[str] = []
        self.drags = 0
        self._subs = []
        if bus is not None:
            self._subs.append(bus.subscribe("dhcp.device.pending", self._on_pending))

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------

    def refresh(self) -> None:
        """Re-pull the device list from the control API."""
        response = self.control_api.request("GET", "/devices")
        if response.status != 200:
            raise HttpError(response.status, "device list unavailable")
        self.tabs = {c: [] for c in CATEGORIES}
        for entry in response.json():
            tab = DeviceTab(entry)
            self.tabs.setdefault(tab.state, []).append(tab)

    def _on_pending(self, event: Event) -> None:
        """A new device knocked: surface a notification on the display."""
        message = f"new device requesting access: {event.get('hostname') or event.get('mac')}"
        if message not in self.notifications:
            self.notifications.append(message)

    # ------------------------------------------------------------------
    # Interactions
    # ------------------------------------------------------------------

    def drag(self, device: Union[str, MACAddress], category: str) -> DeviceTab:
        """Drag a device's tab into 'permitted' or 'denied'."""
        if category not in ("permitted", "denied"):
            raise ValueError(f"can only drag to permitted/denied, not {category!r}")
        mac = str(MACAddress(device))
        verb = "permit" if category == "permitted" else "deny"
        response = self.control_api.request("POST", f"/devices/{mac}/{verb}")
        if response.status != 200:
            raise HttpError(response.status, f"{verb} failed")
        self.drags += 1
        self.refresh()
        for tab in self.tabs[category]:
            if tab.mac == mac:
                self.notifications = [
                    n
                    for n in self.notifications
                    if mac not in n
                    and (not tab.hostname or tab.hostname not in n)
                ]
                return tab
        raise HttpError(500, f"device {mac} did not land in {category}")

    def interrogate(self, device: Union[str, MACAddress]) -> Dict[str, object]:
        """Tap a tab: full details for the device."""
        mac = str(MACAddress(device))
        response = self.control_api.request("GET", f"/devices/{mac}")
        if response.status != 200:
            raise HttpError(response.status, f"unknown device {mac}")
        return response.json()

    def supply_metadata(self, device: Union[str, MACAddress], **metadata: str) -> None:
        """Fill in the 'what is this device?' dialog."""
        mac = str(MACAddress(device))
        response = self.control_api.request(
            "PUT", f"/devices/{mac}/metadata", dict(metadata)
        )
        if response.status != 200:
            raise HttpError(response.status, "metadata update failed")
        self.refresh()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        """The three-column situated display."""
        width = 24
        columns = []
        for category in CATEGORIES:
            rows = [category.upper().center(width), "-" * width]
            for tab in self.tabs[category]:
                ip = f" ({tab.ip})" if tab.ip else ""
                rows.append(f"[{tab.display_name[:14]}{ip}]"[:width].ljust(width))
            columns.append(rows)
        height = max(len(c) for c in columns)
        for column in columns:
            column.extend([" " * width] * (height - len(column)))
        lines = ["  ".join(row) for row in zip(*columns)]
        for note in self.notifications:
            lines.append(f"! {note}")
        return "\n".join(lines)
