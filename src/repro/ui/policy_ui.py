"""Figure 4: the interactive cartoon policy interface.

"The final interface integrates physical mediation of control into a
simple visual policy language. ... By selecting appropriate options for
each panel in the cartoon, non-expert users can implement simple
policies such as 'the kids can only use Facebook on weekdays after
they've finished their homework.'"

The interface edits :class:`~repro.policy.cartoon.CartoonStrip` objects
panel by panel, shows the sentence the strip means, and publishes it to
the router through the control API.  USB keys appear in the footer, since
inserting/removing them changes which policies bite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from ..policy.cartoon import CartoonStrip
from ..services.control_api.http import HttpError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..services.control_api.api import ControlApi
    from ..services.udev.monitor import UdevMonitor


class PolicyInterface:
    """The cartoon policy editor + published-policy board."""

    def __init__(
        self, control_api: "ControlApi", udev: Optional["UdevMonitor"] = None
    ):
        self.control_api = control_api
        self.udev = udev
        self.draft: Optional[CartoonStrip] = None
        self.published: List[Dict[str, object]] = []
        self.installs = 0

    # ------------------------------------------------------------------
    # Editing
    # ------------------------------------------------------------------

    def new_strip(self, title: str) -> CartoonStrip:
        """Start a fresh cartoon."""
        self.draft = CartoonStrip(title)
        return self.draft

    def preview(self) -> str:
        """The sentence the current draft means."""
        if self.draft is None:
            return "(no draft policy)"
        return self.draft.describe()

    def publish(self) -> Dict[str, object]:
        """Compile the draft and install it via the control API."""
        if self.draft is None:
            raise HttpError(400, "nothing to publish")
        policy = self.draft.compile()
        response = self.control_api.request("POST", "/policies", policy.to_dict())
        if response.status != 201:
            raise HttpError(response.status, f"policy rejected: {response.json()}")
        self.installs += 1
        self.draft = None
        self.refresh()
        return response.json()

    def retract(self, policy_id: int) -> None:
        response = self.control_api.request("DELETE", f"/policies/{policy_id}")
        if response.status not in (200, 204):
            raise HttpError(response.status, "retract failed")
        self.refresh()

    # ------------------------------------------------------------------
    # Board state
    # ------------------------------------------------------------------

    def refresh(self) -> List[Dict[str, object]]:
        response = self.control_api.request("GET", "/policies")
        if response.status != 200:
            raise HttpError(response.status, "policy list unavailable")
        self.published = response.json()
        return self.published

    def inserted_keys(self) -> List[str]:
        if self.udev is None:
            return []
        return self.udev.inserted_keys()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        lines = ["HOUSE RULES", "=" * 48]
        if not self.published:
            lines.append("(no policies installed)")
        for entry in self.published:
            active = "ACTIVE" if entry.get("active_now") else "idle  "
            gate = " [USB-gated]" if entry.get("usb_gated") else ""
            lines.append(f"#{entry['id']:>2} {active} {entry['name']}{gate}")
            sites = entry.get("sites") or []
            if entry.get("dns_mode") == "only":
                lines.append(f"      only: {', '.join(sites)}")
            elif entry.get("dns_mode") == "block":
                lines.append(f"      blocked: {', '.join(sites)}")
            if entry.get("network") == "deny":
                lines.append("      network access: OFF")
        if self.draft is not None:
            lines.append("-" * 48)
            lines.append("draft: " + self.draft.describe())
        keys = self.inserted_keys()
        lines.append("-" * 48)
        lines.append(f"USB keys inserted: {', '.join(keys) if keys else 'none'}")
        return "\n".join(lines)
