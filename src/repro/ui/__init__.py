"""The paper's four novel management interfaces (Figures 1-4)."""

from .artifact import (
    BLUE,
    GREEN,
    LedStrip,
    MODE_BANDWIDTH,
    MODE_EVENTS,
    MODE_SIGNAL,
    NetworkArtifact,
    OFF,
    RED,
    WHITE,
)
from .bandwidth_view import BandwidthView
from .control_ui import CATEGORIES, ControlInterface, DeviceTab
from .policy_ui import PolicyInterface

__all__ = [
    "BandwidthView",
    "NetworkArtifact",
    "LedStrip",
    "MODE_SIGNAL",
    "MODE_BANDWIDTH",
    "MODE_EVENTS",
    "OFF",
    "WHITE",
    "GREEN",
    "BLUE",
    "RED",
    "ControlInterface",
    "DeviceTab",
    "CATEGORIES",
    "PolicyInterface",
]
