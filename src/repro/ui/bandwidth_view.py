"""Figure 1: the iPhone/iTouch per-device bandwidth display.

"The first ... runs on an iPhone/iTouch device and simply displays the
per-device per-protocol bandwidth consumption.  This allows users to
focus on how their devices and their applications ... are using the
network."

The view subscribes to the measurement plane and renders two screens:
the device list (bandwidth per machine) and, after
:meth:`select_device`, the per-protocol breakdown for one machine —
exactly the two panes of the paper's Figure 5 screenshot ("Bandwidth
consumption per machine (left-hand side) and usage per protocol for
'Tom's Mac Air' (right-hand side)").
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING, Union

from ..measurement.aggregator import BandwidthAggregator, DeviceUsage
from ..net.addresses import MACAddress

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import Simulator

_SCREEN_WIDTH = 36  # characters: a 2011 iPhone-ish text screen
_BAR_WIDTH = 12


def _human_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024:
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}TB"


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


class BandwidthView:
    """The handheld bandwidth-consumption display."""

    def __init__(
        self,
        aggregator: BandwidthAggregator,
        sim: Optional["Simulator"] = None,
        window: float = 10.0,
        refresh_interval: float = 2.0,
    ):
        self.aggregator = aggregator
        self.sim = sim
        self.window = window
        self.refresh_interval = refresh_interval
        self.devices: List[DeviceUsage] = []
        self.selected: Optional[str] = None  # MAC of the drilled-into device
        self.refreshes = 0
        self.pushes = 0
        self._timer = None
        self._subscription = None

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def refresh(self) -> List[DeviceUsage]:
        """Pull the latest per-device usage from the measurement plane."""
        self.devices = self.aggregator.per_device(self.window)
        self.refreshes += 1
        return self.devices

    def start(self) -> None:
        """Begin periodic refresh (the live display loop)."""
        if self.sim is None:
            raise RuntimeError("BandwidthView needs a simulator for live mode")
        self._timer = self.sim.schedule_periodic(self.refresh_interval, self.refresh)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def attach_subscription(self, db, interval: Optional[float] = None):
        """Drive the display from hwdb's active plane instead of a timer.

        This is the paper's architecture verbatim: the handheld display
        "subscribe[s] to query results" rather than polling.  A
        continuous per-device aggregation over the flows ring pushes on
        every interval (``deliver_empty=True`` so a quiet network still
        repaints), and each push refreshes the screen.  Because the
        query is a subscription, the query engine pins its compiled
        plan and maintains the windowed sums incrementally between
        pushes.  Returns the :class:`~repro.hwdb.database.Subscription`.
        """
        if self._subscription is not None:
            raise RuntimeError("display is already subscribed")
        query = (
            f"SELECT src_mac, sum(bytes) AS bytes FROM flows "
            f"[RANGE {self.window:g} SECONDS] GROUP BY src_mac"
        )
        self._subscription = db.subscribe(
            query,
            interval if interval is not None else self.refresh_interval,
            self._on_push,
            deliver_empty=True,
        )
        return self._subscription

    def detach_subscription(self) -> None:
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    def _on_push(self, result) -> None:
        self.pushes += 1
        self.refresh()

    # ------------------------------------------------------------------
    # Interaction
    # ------------------------------------------------------------------

    def select_device(self, device: Union[str, MACAddress]) -> None:
        """Tap a device row: drill into its per-protocol view."""
        self.selected = str(MACAddress(device))

    def back(self) -> None:
        """Return to the device list."""
        self.selected = None

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        """The current screen as text."""
        if self.selected is None:
            return self._render_device_list()
        return self._render_device_detail(self.selected)

    def _header(self, title: str) -> List[str]:
        return [
            "+" + "-" * _SCREEN_WIDTH + "+",
            "|" + title.center(_SCREEN_WIDTH) + "|",
            "+" + "-" * _SCREEN_WIDTH + "+",
        ]

    def _render_device_list(self) -> str:
        lines = self._header(f"Network usage (last {self.window:.0f}s)")
        if not self.devices:
            lines.append("|" + "no activity".center(_SCREEN_WIDTH) + "|")
        else:
            top = max(usage.bytes for usage in self.devices) or 1
            for usage in self.devices:
                name = usage.display_name[:16].ljust(16)
                bar = _bar(usage.bytes / top)
                amount = _human_bytes(usage.bytes).rjust(7)
                row = f" {name}{bar}{amount}"[: _SCREEN_WIDTH].ljust(_SCREEN_WIDTH)
                lines.append("|" + row + "|")
        lines.append("+" + "-" * _SCREEN_WIDTH + "+")
        return "\n".join(lines)

    def _render_device_detail(self, mac: str) -> str:
        usage = next((u for u in self.devices if u.mac == mac), None)
        title = usage.display_name if usage is not None else mac
        lines = self._header(f"{title[:26]} by protocol")
        protocols = self.aggregator.per_protocol(mac, self.window)
        if not protocols:
            lines.append("|" + "no activity".center(_SCREEN_WIDTH) + "|")
        else:
            top = protocols[0][1] or 1
            for protocol, nbytes in protocols:
                name = protocol[:12].ljust(12)
                bar = _bar(nbytes / top)
                amount = _human_bytes(nbytes).rjust(8)
                row = f" {name}{bar}{amount}"[: _SCREEN_WIDTH].ljust(_SCREEN_WIDTH)
                lines.append("|" + row + "|")
        lines.append("|" + "[back]".center(_SCREEN_WIDTH) + "|")
        lines.append("+" + "-" * _SCREEN_WIDTH + "+")
        return "\n".join(lines)
