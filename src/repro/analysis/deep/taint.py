"""D1 — determinism taint: nondeterminism must never reach a digest.

Sources are the things that differ between two runs of the same seed:
the wall clock, module-level ``random``, ``id()`` and set iteration
order (both vary with ``PYTHONHASHSEED`` / allocation order), process
environment reads, ``uuid4``.  Sinks are the repo's reproducibility
surfaces: trace/fleet digests, snapshot payloads, the RPC wire encoder.
``sorted``/``min``/``max``/``sum``/``len`` sanitize — they collapse
iteration order into a deterministic value.

The check is interprocedural: per-function "returns nondeterminism"
summaries and per-class "attribute holds nondeterminism" facts are
iterated to a fixpoint over the call graph, then every sink function is
re-analysed and each tainted value reaching a ``return``, a
``hasher.update(...)`` or a sink call's argument list becomes a finding.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core import Rule, SourceFile, Violation
from .callgraph import CallGraph
from .dataflow import TaintPolicy, analyse_function

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import DeepContext

#: Calls that introduce run-to-run nondeterminism.
DEFAULT_SOURCE_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.listdir",
        "os.scandir",
        "os.walk",
        "os.getenv",
        "os.urandom",
        "uuid.uuid4",
        "uuid.uuid1",
        "id",
        "set",
        "frozenset",
        "globals",
        "locals",
        "vars",
    }
)

#: Any call into these modules is a source (module-level RNG state).
DEFAULT_SOURCE_PREFIXES: Tuple[str, ...] = ("random.", "secrets.")

#: Attribute reads that are sources without being calls.
DEFAULT_SOURCE_ATTRS: FrozenSet[str] = frozenset({"os.environ", "sys.argv"})

#: Order-collapsing builtins: deterministic results from tainted input.
DEFAULT_SANITIZERS: FrozenSet[str] = frozenset({"sorted", "min", "max", "sum", "len"})

#: The repo's reproducibility surfaces (checked only when present).
DEFAULT_SINK_FUNCTIONS: FrozenSet[str] = frozenset(
    {
        "repro.hwdb.snapshot.snapshot_table",
        "repro.hwdb.snapshot.snapshot_subscription",
        "repro.hwdb.snapshot.snapshot_database",
        "repro.hwdb.snapshot.table_digest",
        "repro.hwdb.snapshot.database_digests",
        "repro.hwdb.rpc.pack_resultset",
        "repro.hwdb.rpc._encode_value",
        "repro.check.runner.ScenarioRunner.finish",
        "repro.check.runner.ScenarioRunner._digest",
        "repro.fleet.aggregate.fleet_digest",
        "repro.fleet.seeds.household_seed",
    }
)

#: Method names that are sinks on every class (snapshot payloads).
DEFAULT_SINK_METHODS: FrozenSet[str] = frozenset({"to_snapshot"})


class TaintConfig:
    """Source/sanitizer/sink tables; defaults describe this repository."""

    def __init__(
        self,
        source_calls: Iterable[str] = DEFAULT_SOURCE_CALLS,
        source_prefixes: Sequence[str] = DEFAULT_SOURCE_PREFIXES,
        source_attrs: Iterable[str] = DEFAULT_SOURCE_ATTRS,
        sanitizers: Iterable[str] = DEFAULT_SANITIZERS,
        sink_functions: Iterable[str] = DEFAULT_SINK_FUNCTIONS,
        sink_methods: Iterable[str] = DEFAULT_SINK_METHODS,
    ) -> None:
        self.source_calls = frozenset(source_calls)
        self.source_prefixes = tuple(source_prefixes)
        self.source_attrs = frozenset(source_attrs)
        self.sanitizers = frozenset(sanitizers)
        self.sink_functions = frozenset(sink_functions)
        self.sink_methods = frozenset(sink_methods)


class _Policy(TaintPolicy):
    def __init__(
        self,
        config: TaintConfig,
        summaries: Dict[str, bool],
        attr_taint: Dict[str, Set[str]],
        sinks: FrozenSet[str],
    ) -> None:
        self.config = config
        self.summaries = summaries
        self.attr_taint = attr_taint
        self.sinks = sinks

    def is_source_call(self, label: Optional[str], call: ast.Call) -> bool:
        if label is None:
            return False
        if label in self.config.source_calls:
            return True
        return any(label.startswith(p) for p in self.config.source_prefixes)

    def is_source_attr(self, dotted: Optional[str]) -> bool:
        return dotted is not None and dotted in self.config.source_attrs

    def is_sanitizer(self, label: Optional[str], call: ast.Call) -> bool:
        return label is not None and label in self.config.sanitizers

    def is_sink_call(self, label: Optional[str]) -> bool:
        return label is not None and label in self.sinks

    def callee_returns_taint(self, qualname: str) -> bool:
        return self.summaries.get(qualname, False)

    def attr_is_tainted(self, class_qualname: str, attr: str) -> bool:
        return attr in self.attr_taint.get(class_qualname, ())


class DeepTaintRule(Rule):
    name = "deep-taint"
    ids = ("deep-taint",)
    description = "nondeterminism sources must not reach reproducibility sinks"

    #: Fixpoint safety bound; the two-point lattice converges far sooner.
    MAX_ROUNDS = 8

    def __init__(
        self,
        context: Optional["DeepContext"] = None,
        config: Optional[TaintConfig] = None,
    ) -> None:
        from . import DeepContext

        self.context = context if context is not None else DeepContext()
        self.config = config if config is not None else TaintConfig()

    def _sink_qualnames(self, graph: CallGraph) -> FrozenSet[str]:
        sinks = {q for q in self.config.sink_functions if q in graph.functions}
        for qualname, fn in graph.functions.items():
            if fn.cls is not None and fn.name in self.config.sink_methods:
                sinks.add(qualname)
        return frozenset(sinks)

    def check_project(self, files: Sequence[SourceFile]) -> Iterable[Violation]:
        graph = self.context.graph(files)
        sinks = self._sink_qualnames(graph)
        summaries: Dict[str, bool] = {q: False for q in graph.functions}
        attr_taint: Dict[str, Set[str]] = {}
        policy = _Policy(self.config, summaries, attr_taint, sinks)

        for _ in range(self.MAX_ROUNDS):
            changed = False
            for qualname, fn in graph.functions.items():
                outcome = analyse_function(graph, fn, policy)
                if outcome.returns_taint and not summaries[qualname]:
                    summaries[qualname] = True
                    changed = True
                if fn.cls is not None and outcome.tainted_self_attrs:
                    known = attr_taint.setdefault(fn.cls, set())
                    fresh = outcome.tainted_self_attrs - known
                    if fresh:
                        known.update(fresh)
                        changed = True
            if not changed:
                break

        violations: List[Violation] = []
        by_module = {f.module: f for f in files}
        for qualname, fn in sorted(graph.functions.items()):
            outcome = analyse_function(graph, fn, policy)
            source = by_module.get(fn.module)
            if source is None:
                continue
            for hit in outcome.hits:
                if hit.kind == "return" and qualname not in sinks:
                    continue  # only sinks make returned nondeterminism a bug
                where = f"in {qualname}" if hit.kind != "sink-arg" else f"from {qualname}"
                violations.append(
                    Violation(
                        path=source.path,
                        line=hit.line,
                        col=hit.col,
                        rule="deep-taint",
                        message=f"{hit.detail} {where}",
                    )
                )
        return violations
