"""D3 — dispatch exhaustiveness over closed class families.

Two shapes of check:

* **Family surfaces** — the CQL AST is a closed family (every ``Expr``
  subclass defined in ``ast_nodes``).  Each dispatch surface (unparser,
  evaluator, planner, optimizer) must handle every member, and the
  parser must actually produce every member (a node nobody constructs
  is dead weight the surfaces pay for).
* **Message flows** — OpenFlow messages are checked *directionally*:
  the set of message classes actually sent switch→controller must be
  covered by the controller dispatcher, and vice versa.  A handler arm
  for a message nobody sends is an orphan; a sent message without an
  arm falls into the dispatcher's error path at runtime.

Handled sets are collected from ``isinstance`` tests, followed through
resolved project callees (a surface may delegate); orphan detection
uses only the surface's own direct tests, so delegation never
manufactures orphans.  Sent sets come from the static class of the
first argument at each send-helper call site; arguments typed as the
abstract base are forwarding wrappers and are skipped — their own call
sites carry the real classes.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core import Rule, SourceFile, Violation
from .callgraph import CallGraph, FunctionInfo, dotted_parts, iter_calls

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import DeepContext


class FamilySpec:
    """A closed class family plus the surfaces that must cover it."""

    __slots__ = ("name", "base", "member_module", "members", "exclude", "surfaces", "producers")

    def __init__(
        self,
        name: str,
        member_module: str,
        base: Optional[str] = None,
        members: Tuple[str, ...] = (),
        exclude: Tuple[str, ...] = (),
        surfaces: Tuple[str, ...] = (),
        producers: Tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.member_module = member_module
        self.base = base
        self.members = members
        self.exclude = exclude
        self.surfaces = surfaces
        self.producers = producers


class FlowSpec:
    """A directional message flow: senders on one side, one dispatcher."""

    __slots__ = ("name", "base", "member_module", "exclude", "senders", "surfaces")

    def __init__(
        self,
        name: str,
        member_module: str,
        base: str,
        senders: Tuple[str, ...],
        surfaces: Tuple[str, ...],
        exclude: Tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.member_module = member_module
        self.base = base
        self.senders = senders
        self.surfaces = surfaces
        self.exclude = exclude


_AST = "repro.hwdb.cql.ast_nodes"

#: The repo's closed families (each spec is inert when its modules are
#: absent from the file set, so fixtures can supply their own).
DEFAULT_FAMILIES: Tuple[FamilySpec, ...] = (
    FamilySpec(
        name="cql-expr",
        member_module=_AST,
        base=f"{_AST}.Expr",
        surfaces=(
            "repro.hwdb.cql.unparse.unparse_expr",
            "repro.hwdb.cql.executor.Evaluator.scalar",
            "repro.hwdb.cql.executor.Evaluator.aggregate",
            "repro.query.plan._check_expr",
            "repro.query.optimize.clone_expr",
            "repro.query.optimize.fold_expr",
            "repro.query.optimize._strip_alias",
        ),
        producers=("repro.hwdb.cql.parser",),
    ),
    FamilySpec(
        name="cql-statement",
        member_module=_AST,
        members=(
            f"{_AST}.Select",
            f"{_AST}.Explain",
            f"{_AST}.Insert",
            f"{_AST}.CreateTable",
        ),
        surfaces=(
            "repro.hwdb.cql.unparse.unparse",
            "repro.hwdb.database.HomeworkDatabase.execute_parsed",
        ),
        producers=("repro.hwdb.cql.parser",),
    ),
)

_MSG = "repro.openflow.messages"

DEFAULT_FLOWS: Tuple[FlowSpec, ...] = (
    FlowSpec(
        name="openflow-to-controller",
        member_module=_MSG,
        base=f"{_MSG}.OpenFlowMessage",
        senders=(
            "repro.openflow.channel.SecureChannel.to_controller",
            "repro.openflow.datapath.Datapath._reply",
        ),
        surfaces=("repro.nox.controller.Controller.receive",),
    ),
    FlowSpec(
        name="openflow-to-switch",
        member_module=_MSG,
        base=f"{_MSG}.OpenFlowMessage",
        senders=(
            "repro.openflow.channel.SecureChannel.to_switch",
            "repro.nox.controller.Controller.send",
        ),
        surfaces=("repro.openflow.datapath.Datapath.handle_message",),
    ),
)


class DispatchRule(Rule):
    name = "deep-dispatch"
    ids = ("deep-dispatch", "deep-dispatch-orphan")
    description = "closed class families fully dispatched; no orphan handler arms"

    def __init__(
        self,
        context: Optional["DeepContext"] = None,
        families: Optional[Sequence[FamilySpec]] = None,
        flows: Optional[Sequence[FlowSpec]] = None,
    ) -> None:
        from . import DeepContext

        self.context = context if context is not None else DeepContext()
        self.families = tuple(families) if families is not None else DEFAULT_FAMILIES
        self.flows = tuple(flows) if flows is not None else DEFAULT_FLOWS

    # -- shared extraction helpers -------------------------------------

    def _family_members(
        self, graph: CallGraph, member_module: str, base: Optional[str],
        members: Tuple[str, ...], exclude: Tuple[str, ...]
    ) -> Set[str]:
        if members:
            return {m for m in members if m in graph.classes}
        out: Set[str] = set()
        for qualname, info in graph.classes.items():
            if info.module != member_module or qualname == base:
                continue
            if qualname in exclude:
                continue
            if base is not None and graph.is_subclass(qualname, base):
                out.add(qualname)
        return out

    def _direct_tests(
        self, graph: CallGraph, fn: FunctionInfo, members: Set[str]
    ) -> Dict[str, Tuple[int, int]]:
        """Family members named in this function's own isinstance tests."""
        found: Dict[str, Tuple[int, int]] = {}
        for call in iter_calls(fn.node):
            if not (
                isinstance(call.func, ast.Name)
                and call.func.id == "isinstance"
                and len(call.args) == 2
            ):
                continue
            spec = call.args[1]
            candidates = spec.elts if isinstance(spec, ast.Tuple) else [spec]
            for candidate in candidates:
                parts = dotted_parts(candidate)
                if parts is None:
                    continue
                resolved = graph.resolve_name(fn.module, parts)
                if resolved in members:
                    found.setdefault(resolved, (call.lineno, call.col_offset + 1))
        return found

    def _handled(
        self, graph: CallGraph, surface: FunctionInfo, members: Set[str]
    ) -> Set[str]:
        """Members handled by the surface or any resolved project callee."""
        handled: Set[str] = set()
        seen: Set[str] = set()
        stack = [surface.qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            fn = graph.functions.get(current)
            if fn is None:
                continue
            handled |= set(self._direct_tests(graph, fn, members))
            stack.extend(graph.callees(current))
        return handled

    def _sent_classes(
        self, graph: CallGraph, senders: Tuple[str, ...], members: Set[str], base: str
    ) -> Set[str]:
        sent: Set[str] = set()
        for fn in graph.functions.values():
            for call in iter_calls(fn.node):
                if graph.resolve_call(fn, call) not in senders or not call.args:
                    continue
                klass = graph.class_of_expr(fn, call.args[0])
                if klass is None or klass == base:
                    continue  # base-typed args are forwarding wrappers
                if klass in members:
                    sent.add(klass)
        return sent

    def _short(self, qualname: str) -> str:
        return qualname.rsplit(".", 1)[-1]

    # -- checks --------------------------------------------------------

    def check_project(self, files: Sequence[SourceFile]) -> Iterable[Violation]:
        graph = self.context.graph(files)
        by_module = {f.module: f for f in files}
        violations: List[Violation] = []

        def emit(module: str, line: int, col: int, rule: str, message: str) -> None:
            source = by_module.get(module)
            if source is not None:
                violations.append(
                    Violation(path=source.path, line=line, col=col, rule=rule, message=message)
                )

        for family in self.families:
            members = self._family_members(
                graph, family.member_module, family.base, family.members, family.exclude
            )
            if not members:
                continue
            for surface_name in family.surfaces:
                surface = graph.functions.get(surface_name)
                if surface is None:
                    continue
                missing = sorted(members - self._handled(graph, surface, members))
                if missing:
                    names = ", ".join(self._short(m) for m in missing)
                    emit(
                        surface.module,
                        surface.node.lineno,  # type: ignore[attr-defined]
                        surface.node.col_offset + 1,  # type: ignore[attr-defined]
                        "deep-dispatch",
                        f"{surface_name} does not handle {family.name} member(s): {names}",
                    )
            producers_present = [p for p in family.producers if p in graph.modules]
            if producers_present:
                produced: Set[str] = set()
                for fn in graph.functions.values():
                    if fn.module not in producers_present:
                        continue
                    for call in iter_calls(fn.node):
                        klass = graph.class_of_expr(fn, call)
                        if klass in members:
                            produced.add(klass)  # type: ignore[arg-type]
                for member in sorted(members - produced):
                    info = graph.classes[member]
                    emit(
                        info.module,
                        info.node.lineno,
                        info.node.col_offset + 1,
                        "deep-dispatch-orphan",
                        f"{family.name} member {self._short(member)} is never "
                        f"produced by {', '.join(producers_present)}",
                    )

        for flow in self.flows:
            members = self._family_members(
                graph, flow.member_module, flow.base, (), flow.exclude
            )
            if not members:
                continue
            senders_present = tuple(s for s in flow.senders if s in graph.functions)
            if not senders_present:
                continue
            sent = self._sent_classes(graph, senders_present, members, flow.base)
            for surface_name in flow.surfaces:
                surface = graph.functions.get(surface_name)
                if surface is None:
                    continue
                handled = self._handled(graph, surface, members)
                direct = self._direct_tests(graph, surface, members)
                missing = sorted(sent - handled)
                if missing:
                    names = ", ".join(self._short(m) for m in missing)
                    emit(
                        surface.module,
                        surface.node.lineno,  # type: ignore[attr-defined]
                        surface.node.col_offset + 1,  # type: ignore[attr-defined]
                        "deep-dispatch",
                        f"{surface_name} does not handle sent {flow.name} "
                        f"message(s): {names}",
                    )
                for member, (line, col) in sorted(direct.items()):
                    if member in sent:
                        continue
                    emit(
                        surface.module,
                        line,
                        col,
                        "deep-dispatch-orphan",
                        f"{surface_name} handles {self._short(member)} but no "
                        f"{flow.name} sender ever sends it",
                    )
        return violations
