"""D2 — exception flow: what can escape each layer-boundary function.

Computes, per function, the set of *project* exception classes that may
escape it: direct ``raise`` statements plus everything resolvable
callees may raise, minus what enclosing ``try``/``except`` arms catch
(subclass-aware through the class hierarchy in the call graph).  The
summaries reach a fixpoint over the call graph, then two checks run:

* **deep-except-escape** — declared contracts (``QueryEngine`` may only
  leak ``HwdbError``, the RPC server nothing, ...) are compared against
  the computed escape sets.  Only tracked project exceptions appear in
  summaries, so every reported escape is a real ``raise`` reachable
  from the boundary.
* **deep-except-dead** — an ``except SomeProjectError`` arm whose try
  body provably cannot raise it.  Only *closed-world* bodies are judged
  (every call transitively resolved to project code); one opaque call
  and the arm is given the benefit of the doubt.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core import Rule, SourceFile, Violation
from .callgraph import CallGraph, FunctionInfo, dotted_parts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import DeepContext

#: Handler names that catch any project exception.
_CATCH_ALL = ("Exception", "BaseException")


class ExceptionContract:
    """One boundary function and the exception roots allowed to escape."""

    __slots__ = ("function", "allowed")

    def __init__(self, function: str, allowed: Tuple[str, ...]) -> None:
        self.function = function
        self.allowed = allowed


#: The repo's layer-boundary contracts (checked only when present).
DEFAULT_CONTRACTS: Tuple[ExceptionContract, ...] = (
    ExceptionContract(
        "repro.hwdb.database.HomeworkDatabase.query",
        ("repro.core.errors.HwdbError",),
    ),
    ExceptionContract(
        "repro.hwdb.database.HomeworkDatabase.execute_parsed",
        ("repro.core.errors.HwdbError",),
    ),
    ExceptionContract(
        "repro.query.engine.QueryEngine.execute_select",
        ("repro.core.errors.HwdbError",),
    ),
    ExceptionContract("repro.hwdb.rpc.RpcServer.handle_datagram", ()),
    ExceptionContract(
        "repro.hwdb.snapshot.restore_table", ("repro.core.errors.HwdbError",)
    ),
    ExceptionContract(
        "repro.hwdb.snapshot.restore_database", ("repro.core.errors.HwdbError",)
    ),
    ExceptionContract(
        "repro.nox.controller.Controller.receive",
        ("repro.core.errors.ControllerError",),
    ),
    ExceptionContract("repro.nox.controller.Controller.dispatch", ()),
    ExceptionContract(
        "repro.openflow.datapath.Datapath.handle_message",
        ("repro.core.errors.DatapathError",),
    ),
    ExceptionContract(
        "repro.policy.engine.PolicyEngine.install_document",
        ("repro.core.errors.PolicyError",),
    ),
)


class RaiseSummary:
    """Project exceptions a function may let escape, plus an open bit."""

    __slots__ = ("raises", "open")

    def __init__(self) -> None:
        self.raises: Set[str] = set()
        self.open = False


class _Analyzer:
    """Computes raise summaries and records dead handler arms."""

    MAX_ROUNDS = 12

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: Dict[str, RaiseSummary] = {
            q: RaiseSummary() for q in graph.functions
        }
        #: (module, line, col, exception name) for provably-dead arms.
        self.dead_arms: List[Tuple[str, int, int, str]] = []
        self._exception_cache: Dict[str, bool] = {}

    # -- class hierarchy helpers ---------------------------------------

    def is_exception_class(self, qualname: str) -> bool:
        cached = self._exception_cache.get(qualname)
        if cached is not None:
            return cached
        info = self.graph.classes.get(qualname)
        verdict = False
        if info is not None:
            for base in info.bases:
                if base in _CATCH_ALL or base.rsplit(".", 1)[-1] in _CATCH_ALL:
                    verdict = True
                    break
                if base in self.graph.classes and self.is_exception_class(base):
                    verdict = True
                    break
        self._exception_cache[qualname] = verdict
        return verdict

    def catches(self, handler_type: str, raised: str) -> bool:
        if handler_type.rsplit(".", 1)[-1] in _CATCH_ALL:
            return True
        return self.graph.is_subclass(raised, handler_type)

    def _handler_types(self, fn: FunctionInfo, node: Optional[ast.expr]) -> List[str]:
        if node is None:
            return ["Exception"]
        members = node.elts if isinstance(node, ast.Tuple) else [node]
        names: List[str] = []
        for member in members:
            parts = dotted_parts(member)
            if parts is None:
                continue
            resolved = self.graph.resolve_name(fn.module, parts)
            names.append(resolved if resolved is not None else parts[-1])
        return names

    # -- per-function effects ------------------------------------------

    def run(self) -> None:
        for round_no in range(self.MAX_ROUNDS):
            changed = False
            final = round_no == self.MAX_ROUNDS - 1
            for qualname, fn in self.graph.functions.items():
                raises, open_world = self._effects(
                    fn, list(fn.node.body), set(), report_dead=False  # type: ignore[attr-defined]
                )
                summary = self.summaries[qualname]
                if raises - summary.raises:
                    summary.raises |= raises
                    changed = True
                if open_world and not summary.open:
                    summary.open = True
                    changed = True
            if not changed or final:
                break
        # One last pass with dead-arm reporting, now that summaries are
        # stable (reporting earlier would use incomplete callee sets).
        for fn in self.graph.functions.values():
            self._effects(fn, list(fn.node.body), set(), report_dead=True)  # type: ignore[attr-defined]

    def _call_effects(self, fn: FunctionInfo, call: ast.Call) -> Tuple[Set[str], bool]:
        resolved = self.graph.resolve_call(fn, call)
        if resolved in self.graph.functions:
            summary = self.summaries[resolved]
            return set(summary.raises), summary.open
        if resolved in self.graph.classes:
            init = self.graph.find_method(resolved, "__init__")
            if init is None:
                return set(), False
            summary = self.summaries[init.qualname]
            return set(summary.raises), summary.open
        return set(), True

    def _expr_effects(self, fn: FunctionInfo, node: Optional[ast.AST]) -> Tuple[Set[str], bool]:
        raises: Set[str] = set()
        open_world = False
        if node is None:
            return raises, open_world
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                callee_raises, callee_open = self._call_effects(fn, child)
                raises |= callee_raises
                open_world |= callee_open
        return raises, open_world

    def _effects(
        self,
        fn: FunctionInfo,
        stmts: Sequence[ast.stmt],
        reraise: Set[str],
        report_dead: bool,
    ) -> Tuple[Set[str], bool]:
        raises: Set[str] = set()
        open_world = False

        for stmt in stmts:
            if isinstance(stmt, ast.Raise):
                raises_from, open_from = self._expr_effects(fn, stmt.exc)
                raises |= raises_from
                open_world |= open_from
                if stmt.exc is None:
                    raises |= reraise
                else:
                    target = stmt.exc.func if isinstance(stmt.exc, ast.Call) else stmt.exc
                    parts = dotted_parts(target)
                    if parts is not None:
                        resolved = self.graph.resolve_name(fn.module, parts)
                        if resolved in self.graph.classes and self.is_exception_class(
                            resolved
                        ):
                            raises.add(resolved)
            elif isinstance(stmt, ast.Try):
                body_raises, body_open = self._effects(
                    fn, stmt.body, reraise, report_dead
                )
                caught: Set[str] = set()
                for handler in stmt.handlers:
                    handler_types = self._handler_types(fn, handler.type)
                    from_body = {
                        e
                        for e in body_raises
                        if any(self.catches(t, e) for t in handler_types)
                    }
                    caught |= from_body
                    if report_dead and not body_open:
                        for handler_type in handler_types:
                            if handler_type.rsplit(".", 1)[-1] in _CATCH_ALL:
                                continue  # defensive catch-alls are fine
                            if handler_type not in self.graph.classes:
                                continue  # builtin types: body raises untracked
                            if not self.is_exception_class(handler_type):
                                continue
                            if not any(
                                self.catches(handler_type, e) for e in body_raises
                            ):
                                self.dead_arms.append(
                                    (
                                        fn.module,
                                        handler.lineno,
                                        handler.col_offset + 1,
                                        handler_type,
                                    )
                                )
                    handler_raises, handler_open = self._effects(
                        fn, handler.body, from_body, report_dead
                    )
                    raises |= handler_raises
                    open_world |= handler_open
                raises |= body_raises - caught
                open_world |= body_open
                orelse_raises, orelse_open = self._effects(
                    fn, stmt.orelse, reraise, report_dead
                )
                final_raises, final_open = self._effects(
                    fn, stmt.finalbody, reraise, report_dead
                )
                raises |= orelse_raises | final_raises
                open_world |= orelse_open | final_open
            elif isinstance(stmt, (ast.If, ast.While)):
                test_raises, test_open = self._expr_effects(fn, stmt.test)
                body_raises, body_open = self._effects(fn, stmt.body, reraise, report_dead)
                else_raises, else_open = self._effects(
                    fn, stmt.orelse, reraise, report_dead
                )
                raises |= test_raises | body_raises | else_raises
                open_world |= test_open | body_open | else_open
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                iter_raises, iter_open = self._expr_effects(fn, stmt.iter)
                body_raises, body_open = self._effects(fn, stmt.body, reraise, report_dead)
                else_raises, else_open = self._effects(
                    fn, stmt.orelse, reraise, report_dead
                )
                raises |= iter_raises | body_raises | else_raises
                open_world |= iter_open | body_open | else_open
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    item_raises, item_open = self._expr_effects(fn, item.context_expr)
                    raises |= item_raises
                    open_world |= item_open
                body_raises, body_open = self._effects(fn, stmt.body, reraise, report_dead)
                raises |= body_raises
                open_world |= body_open
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes raise when *called*, not here
            else:
                stmt_raises, stmt_open = self._expr_effects(fn, stmt)
                raises |= stmt_raises
                open_world |= stmt_open
        return raises, open_world


class ExceptionFlowRule(Rule):
    name = "deep-except"
    ids = ("deep-except-escape", "deep-except-dead")
    description = "exception contracts at layer boundaries; dead except arms"

    def __init__(
        self,
        context: Optional["DeepContext"] = None,
        contracts: Optional[Sequence[ExceptionContract]] = None,
    ) -> None:
        from . import DeepContext

        self.context = context if context is not None else DeepContext()
        self.contracts = tuple(contracts) if contracts is not None else DEFAULT_CONTRACTS

    def check_project(self, files: Sequence[SourceFile]) -> Iterable[Violation]:
        graph = self.context.graph(files)
        analyzer = _Analyzer(graph)
        analyzer.run()
        by_module = {f.module: f for f in files}
        violations: List[Violation] = []

        for contract in self.contracts:
            fn = graph.functions.get(contract.function)
            if fn is None:
                continue
            summary = analyzer.summaries[contract.function]
            escaped = sorted(
                e
                for e in summary.raises
                if not any(graph.is_subclass(e, root) for root in contract.allowed)
            )
            if not escaped:
                continue
            source = by_module.get(fn.module)
            if source is None:
                continue
            allowed = ", ".join(contract.allowed) if contract.allowed else "nothing"
            names = ", ".join(e.rsplit(".", 1)[-1] for e in escaped)
            violations.append(
                Violation(
                    path=source.path,
                    line=fn.node.lineno,  # type: ignore[attr-defined]
                    col=fn.node.col_offset + 1,  # type: ignore[attr-defined]
                    rule="deep-except-escape",
                    message=(
                        f"{contract.function} may leak {names} but its contract "
                        f"allows {allowed}"
                    ),
                )
            )

        for module, line, col, handler_type in analyzer.dead_arms:
            source = by_module.get(module)
            if source is None:
                continue
            violations.append(
                Violation(
                    path=source.path,
                    line=line,
                    col=col,
                    rule="deep-except-dead",
                    message=(
                        f"except arm for {handler_type.rsplit('.', 1)[-1]} can never "
                        f"fire: the try body provably does not raise it"
                    ),
                )
            )
        return violations
