"""D4 — snapshot parity: state that does not survive a round-trip.

Two symmetric checks:

* **Class round-trips** — for every class defining ``to_snapshot``,
  each field assigned in ``__init__`` must be read somewhere in
  ``to_snapshot`` (directly or via a self-method it calls).  Fields
  that are pure collaborator wiring (``self.channel = channel``) are
  exempt; derived caches that are legitimately rebuilt on restore carry
  a ``# repro: ignore[deep-snapshot]`` pragma with a justification.
  When the class also defines ``from_snapshot``, the payload keys the
  two methods touch must agree.
* **Module round-trips** — a module with ``snapshot_*`` / ``restore_*``
  function pairs must read back every payload key it writes, and never
  read a key no snapshot function writes.  Keys are matched by string
  literal (dict displays, subscript stores, ``.get`` reads), which is
  exactly how the hwdb snapshot format is written.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core import Rule, SourceFile, Violation
from .callgraph import CallGraph, ClassInfo, FunctionInfo, iter_calls

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import DeepContext

#: (module, line, col, message) -> records one finding.
_Emitter = Callable[[str, int, int, str], None]


def _written_keys(node: ast.AST) -> Dict[str, int]:
    """String keys this function writes into dict payloads -> first line."""
    keys: Dict[str, int] = {}
    for child in ast.walk(node):
        if isinstance(child, ast.Dict):
            for key in child.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.setdefault(key.value, key.lineno)
        elif isinstance(child, (ast.Assign, ast.AugAssign)):
            targets = child.targets if isinstance(child, ast.Assign) else [child.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.setdefault(target.slice.value, target.lineno)
    return keys


def _read_keys(node: ast.AST) -> Dict[str, int]:
    """String keys this function reads from dict payloads -> first line."""
    keys: Dict[str, int] = {}
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Subscript)
            and isinstance(child.ctx, ast.Load)
            and isinstance(child.slice, ast.Constant)
            and isinstance(child.slice.value, str)
        ):
            keys.setdefault(child.slice.value, child.lineno)
        elif (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr in ("get", "pop")
            and child.args
            and isinstance(child.args[0], ast.Constant)
            and isinstance(child.args[0].value, str)
        ):
            keys.setdefault(child.args[0].value, child.lineno)
    return keys


def _self_reads(node: ast.AST) -> Set[str]:
    """Attribute names read (or touched at all) as ``self.<attr>``."""
    reads: Set[str] = set()
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and isinstance(child.value, ast.Name)
            and child.value.id == "self"
        ):
            reads.add(child.attr)
    return reads


def _self_calls(node: ast.AST) -> Set[str]:
    """Names of methods invoked as ``self.<method>(...)``."""
    called: Set[str] = set()
    for call in iter_calls(node):
        if (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "self"
        ):
            called.add(call.func.attr)
    return called


class SnapshotParityRule(Rule):
    name = "deep-snapshot"
    ids = ("deep-snapshot",)
    description = "every __init__ field and payload key survives the round-trip"

    def __init__(self, context: Optional["DeepContext"] = None) -> None:
        from . import DeepContext

        self.context = context if context is not None else DeepContext()

    # -- class round-trips ---------------------------------------------

    def _init_fields(self, init: FunctionInfo) -> Dict[str, Tuple[int, int]]:
        """Non-wiring fields assigned in __init__ -> (line, col)."""
        params = set(init.params)
        fields: Dict[str, Tuple[int, int]] = {}
        for child in ast.walk(init.node):
            if isinstance(child, ast.Assign):
                targets = child.targets
                value: Optional[ast.expr] = child.value
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                targets = [child.target]
                value = child.value
            else:
                continue
            if isinstance(value, ast.Name) and value.id in params:
                continue  # collaborator/config wiring, not state
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    fields.setdefault(
                        target.attr, (target.lineno, target.col_offset + 1)
                    )
        return fields

    def _snapshot_reads(self, graph: CallGraph, info: ClassInfo) -> Set[str]:
        """self-attrs read by to_snapshot or same-class methods it calls."""
        reads: Set[str] = set()
        seen: Set[str] = set()
        stack = ["to_snapshot"]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            method = graph.find_method(info.qualname, name)
            if method is None:
                continue
            reads |= _self_reads(method.node)
            stack.extend(_self_calls(method.node))
        return reads

    def _check_class(
        self, graph: CallGraph, info: ClassInfo, emit: "_Emitter"
    ) -> None:
        to_snapshot = info.methods.get("to_snapshot")
        if to_snapshot is None:
            return
        init = info.methods.get("__init__")
        if init is not None:
            reads = self._snapshot_reads(graph, info)
            for field, (line, col) in sorted(self._init_fields(init).items()):
                if field in reads:
                    continue
                emit(
                    info.module,
                    line,
                    col,
                    f"{info.qualname}.__init__ sets self.{field} but "
                    f"to_snapshot never reads it",
                )
        from_snapshot = info.methods.get("from_snapshot")
        if from_snapshot is not None:
            written = _written_keys(to_snapshot.node)
            read = _read_keys(from_snapshot.node)
            for key, line in sorted(written.items()):
                if key not in read:
                    emit(
                        info.module,
                        line,
                        1,
                        f"{info.qualname}.to_snapshot writes key {key!r} but "
                        f"from_snapshot never reads it",
                    )
            for key, line in sorted(read.items()):
                if key not in written:
                    emit(
                        info.module,
                        line,
                        1,
                        f"{info.qualname}.from_snapshot reads key {key!r} but "
                        f"to_snapshot never writes it",
                    )

    # -- module round-trips --------------------------------------------

    def _check_module(
        self, graph: CallGraph, module: str, emit: "_Emitter"
    ) -> None:
        snapshot_fns = [
            fn
            for q, fn in graph.functions.items()
            if fn.module == module and fn.cls is None and fn.name.startswith("snapshot_")
        ]
        restore_fns = [
            fn
            for q, fn in graph.functions.items()
            if fn.module == module and fn.cls is None and fn.name.startswith("restore_")
        ]
        if not snapshot_fns or not restore_fns:
            return
        written: Dict[str, Tuple[str, int]] = {}
        for fn in snapshot_fns:
            for key, line in _written_keys(fn.node).items():
                written.setdefault(key, (fn.qualname, line))
        read: Dict[str, Tuple[str, int]] = {}
        for fn in restore_fns:
            for key, line in _read_keys(fn.node).items():
                read.setdefault(key, (fn.qualname, line))
        for key, (writer, line) in sorted(written.items()):
            if key not in read:
                emit(
                    module,
                    line,
                    1,
                    f"{writer} writes snapshot key {key!r} but no restore_* "
                    f"function in {module} reads it",
                )
        for key, (reader, line) in sorted(read.items()):
            if key not in written:
                emit(
                    module,
                    line,
                    1,
                    f"{reader} reads snapshot key {key!r} but no snapshot_* "
                    f"function in {module} writes it",
                )

    def check_project(self, files: Sequence[SourceFile]) -> Iterable[Violation]:
        graph = self.context.graph(files)
        by_module = {f.module: f for f in files}
        violations: List[Violation] = []

        def emit(module: str, line: int, col: int, message: str) -> None:
            source = by_module.get(module)
            if source is not None:
                violations.append(
                    Violation(
                        path=source.path,
                        line=line,
                        col=col,
                        rule="deep-snapshot",
                        message=message,
                    )
                )

        for info in sorted(graph.classes.values(), key=lambda c: c.qualname):
            self._check_class(graph, info, emit)
        for module in sorted(graph.modules):
            self._check_module(graph, module, emit)
        return violations
