"""The whole-program call graph the deep rules share.

Built purely from the lint file set (no imports are executed).  Names
resolve across modules through each file's import aliases; methods
resolve through class bases and through two attribute-typing passes:

* constructor assignments — ``self.table = FlowTable()`` types the
  ``table`` attribute for every later ``self.table.add(...)`` call;
* duck-typed attach points — a setter whose whole job is storing a
  parameter (``def set_query_engine(self, engine): self._engine =
  engine``) types the stored attribute from its *call sites*
  (``db.set_query_engine(QueryEngine(...))``), which is how the hwdb →
  query layer inversion stays resolvable without hwdb importing query.

Everything is best-effort and under-approximating: a call that cannot
be resolved contributes no edge and marks the caller *open* (consumers
that need a closed world — the dead-``except`` check — skip open
functions rather than guess).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core import SourceFile

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


class FunctionInfo:
    """One function or method definition in the analyzed file set."""

    __slots__ = ("qualname", "module", "cls", "node", "params")

    def __init__(
        self,
        qualname: str,
        module: str,
        cls: Optional[str],
        node: ast.AST,
    ) -> None:
        self.qualname = qualname
        self.module = module
        self.cls = cls
        self.node = node
        args = node.args  # type: ignore[attr-defined]
        self.params: List[str] = [a.arg for a in args.posonlyargs + args.args]

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[1]

    def __repr__(self) -> str:
        return f"FunctionInfo({self.qualname})"


class ClassInfo:
    """One class definition: bases, methods and inferred attribute types."""

    __slots__ = ("qualname", "module", "node", "bases", "methods", "attr_types")

    def __init__(self, qualname: str, module: str, node: ast.ClassDef) -> None:
        self.qualname = qualname
        self.module = module
        self.node = node
        #: Base names, resolved when possible ("repro.x.Y" or bare "Exception").
        self.bases: List[str] = []
        self.methods: Dict[str, FunctionInfo] = {}
        #: attribute name -> class qualname, from the typing passes above.
        self.attr_types: Dict[str, str] = {}

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[1]

    def __repr__(self) -> str:
        return f"ClassInfo({self.qualname})"


def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a","b","c"]``; None for non-name expressions."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


class CallGraph:
    """Project index + resolved call edges over one lint file set."""

    def __init__(self, files: Sequence[SourceFile]) -> None:
        self.modules: Dict[str, SourceFile] = {f.module: f for f in files}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: Dict[str, Set[str]] = {}
        #: Functions with at least one call we could not resolve to a
        #: project function/class — their behaviour is not closed-world.
        self.open_calls: Set[str] = set()
        self._imports: Dict[str, Dict[str, str]] = {}
        self._envs: Dict[str, Dict[str, str]] = {}
        #: (class qualname, method name) -> attribute the method stores
        #: its sole interesting parameter into (duck-typed attach point).
        self._setters: Dict[Tuple[str, str], str] = {}

        for source in files:
            self._index_module(source)
        for info in self.classes.values():
            self._resolve_bases(info)
        for info in self.classes.values():
            self._infer_ctor_attr_types(info)
        self._collect_setters()
        self._apply_duck_attach()
        for fn in self.functions.values():
            self._build_edges(fn)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def _index_module(self, source: SourceFile) -> None:
        module = source.module
        aliases: Dict[str, str] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".", 1)[0]
                        aliases.setdefault(head, head)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = source.resolve_relative(node.level, node.module)
                else:
                    base = node.module
                if base is None:
                    continue
                for alias in node.names:
                    aliases[alias.asname or alias.name] = f"{base}.{alias.name}"
        self._imports[module] = aliases

        for stmt in source.tree.body:
            if isinstance(stmt, _FunctionNode):
                info = FunctionInfo(f"{module}.{stmt.name}", module, None, stmt)
                self.functions[info.qualname] = info
            elif isinstance(stmt, ast.ClassDef):
                cls = ClassInfo(f"{module}.{stmt.name}", module, stmt)
                self.classes[cls.qualname] = cls
                for member in stmt.body:
                    if isinstance(member, _FunctionNode):
                        fn = FunctionInfo(
                            f"{cls.qualname}.{member.name}", module, cls.qualname, member
                        )
                        cls.methods[member.name] = fn
                        self.functions[fn.qualname] = fn

    def _resolve_bases(self, info: ClassInfo) -> None:
        for base in info.node.bases:
            parts = dotted_parts(base)
            if parts is None:
                continue
            resolved = self.resolve_name(info.module, parts)
            info.bases.append(resolved if resolved is not None else parts[-1])

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------

    def resolve_name(self, module: str, parts: Sequence[str]) -> Optional[str]:
        """Resolve a dotted name seen in ``module`` to a canonical name.

        Project symbols come back as their definition qualname; external
        names come back as the import-expanded dotted text (so callers
        can still pattern-match e.g. ``time.time``).
        """
        if not parts:
            return None
        head, rest = parts[0], list(parts[1:])
        aliases = self._imports.get(module, {})
        if head in aliases:
            full = ".".join([aliases[head]] + rest)
        elif f"{module}.{head}" in self.functions or f"{module}.{head}" in self.classes:
            full = ".".join([f"{module}.{head}"] + rest)
        else:
            return None
        return self._canonical(full)

    def _canonical(self, full: str) -> str:
        if full in self.functions or full in self.classes:
            return full
        prefix, _, last = full.rpartition(".")
        if prefix in self.classes:
            method = self.find_method(prefix, last)
            if method is not None:
                return method.qualname
        # ``from pkg import submodule`` style: pkg.submodule.symbol.
        if prefix in self.modules:
            candidate = f"{prefix}.{last}"
            if candidate in self.functions or candidate in self.classes:
                return candidate
        return full

    def find_method(self, class_qualname: str, name: str) -> Optional[FunctionInfo]:
        """Resolve a method through the class and its project bases."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            stack.extend(info.bases)
        return None

    def is_subclass(self, class_qualname: str, base: str) -> bool:
        """True when ``base`` (qualname or bare name) is an ancestor."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            if current == base or current.rsplit(".", 1)[-1] == base:
                return True
            info = self.classes.get(current)
            if info is not None:
                stack.extend(info.bases)
        return False

    # ------------------------------------------------------------------
    # Local type environments
    # ------------------------------------------------------------------

    def _annotation_class(self, module: str, node: Optional[ast.AST]) -> Optional[str]:
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value.strip().strip("\"'")
            if name.isidentifier():
                resolved = self.resolve_name(module, [name])
                return resolved if resolved in self.classes else None
            return None
        if isinstance(node, ast.Subscript):
            # Unwrap Optional[X]; other generics are containers, not classes.
            parts = dotted_parts(node.value)
            if parts is not None and parts[-1] == "Optional":
                return self._annotation_class(module, node.slice)
            return None
        parts = dotted_parts(node)
        if parts is None:
            return None
        resolved = self.resolve_name(module, parts)
        return resolved if resolved in self.classes else None

    def env_of(self, fn: FunctionInfo) -> Dict[str, str]:
        """Local variable -> class qualname, for receiver typing."""
        cached = self._envs.get(fn.qualname)
        if cached is not None:
            return cached
        env: Dict[str, str] = {}
        if fn.cls is not None:
            env["self"] = fn.cls
            env["cls"] = fn.cls
        args = fn.node.args  # type: ignore[attr-defined]
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            klass = self._annotation_class(fn.module, arg.annotation)
            if klass is not None:
                env[arg.arg] = klass
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                klass = self._call_constructs(fn.module, node.value)
                if klass is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = klass
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                klass = self._annotation_class(fn.module, node.annotation)
                if klass is not None:
                    env[node.target.id] = klass
        self._envs[fn.qualname] = env
        return env

    def _call_constructs(self, module: str, call: ast.Call) -> Optional[str]:
        """The class a call expression constructs, if statically known."""
        parts = dotted_parts(call.func)
        if parts is None:
            return None
        resolved = self.resolve_name(module, parts)
        if resolved in self.classes:
            return resolved
        if len(parts) >= 2:
            # Classmethod constructor: Cls.method(...) returning Cls.
            owner = self.resolve_name(module, parts[:-1])
            if owner in self.classes and self.find_method(owner, parts[-1]) is not None:
                return owner
        return None

    def class_of_expr(self, fn: FunctionInfo, node: ast.AST) -> Optional[str]:
        """Static class of an expression (local vars, self attrs, ctors)."""
        if isinstance(node, ast.Call):
            return self._call_constructs(fn.module, node)
        parts = dotted_parts(node)
        if parts is None:
            return None
        env = self.env_of(fn)
        if parts[0] in env:
            klass: Optional[str] = env[parts[0]]
            for attr in parts[1:]:
                if klass is None:
                    return None
                info = self.classes.get(klass)
                klass = info.attr_types.get(attr) if info is not None else None
            return klass
        resolved = self.resolve_name(fn.module, parts)
        return resolved if resolved in self.classes else None

    # ------------------------------------------------------------------
    # Attribute typing passes
    # ------------------------------------------------------------------

    def _infer_ctor_attr_types(self, info: ClassInfo) -> None:
        for method in info.methods.values():
            env = self.env_of(method)
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    klass: Optional[str] = None
                    if isinstance(node.value, ast.Call):
                        klass = self._call_constructs(info.module, node.value)
                    elif isinstance(node.value, ast.Name):
                        klass = env.get(node.value.id)
                    if klass is not None:
                        info.attr_types.setdefault(target.attr, klass)

    def _collect_setters(self) -> None:
        for info in self.classes.values():
            for method in info.methods.values():
                if method.name.startswith("__"):
                    continue
                params = [p for p in method.params if p != "self"]
                if not params:
                    continue
                stored = None
                for node in ast.walk(method.node):
                    if (
                        isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Attribute)
                        and isinstance(node.targets[0].value, ast.Name)
                        and node.targets[0].value.id == "self"
                        and isinstance(node.value, ast.Name)
                        and node.value.id == params[0]
                    ):
                        stored = node.targets[0].attr
                if stored is not None:
                    self._setters[(info.qualname, method.name)] = stored

    def _apply_duck_attach(self) -> None:
        """Type duck-attached attributes from setter call sites."""
        for fn in list(self.functions.values()):
            for call in iter_calls(fn.node):
                if not isinstance(call.func, ast.Attribute) or not call.args:
                    continue
                receiver = self.class_of_expr(fn, call.func.value)
                if receiver is None:
                    continue
                attr = self._setters.get((receiver, call.func.attr))
                if attr is None:
                    # The setter may live on a base class.
                    method = self.find_method(receiver, call.func.attr)
                    if method is None or method.cls is None:
                        continue
                    attr = self._setters.get((method.cls, call.func.attr))
                    if attr is None:
                        continue
                arg_class = self.class_of_expr(fn, call.args[0])
                if arg_class is not None:
                    self.classes[receiver].attr_types.setdefault(attr, arg_class)

    # ------------------------------------------------------------------
    # Call resolution and edges
    # ------------------------------------------------------------------

    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> Optional[str]:
        """Canonical target of a call: function/class qualname, external
        dotted text, or None when the receiver is opaque."""
        parts = dotted_parts(call.func)
        if parts is None:
            return None
        env = self.env_of(fn)
        if len(parts) >= 2 and parts[0] in env:
            klass: Optional[str] = env[parts[0]]
            for attr in parts[1:-1]:
                if klass is None:
                    break
                info = self.classes.get(klass)
                klass = info.attr_types.get(attr) if info is not None else None
            if klass is not None:
                method = self.find_method(klass, parts[-1])
                if method is not None:
                    return method.qualname
            return None
        return self.resolve_name(fn.module, parts)

    def _build_edges(self, fn: FunctionInfo) -> None:
        targets: Set[str] = set()
        open_world = False
        for call in iter_calls(fn.node):
            resolved = self.resolve_call(fn, call)
            if resolved in self.functions:
                targets.add(resolved)
            elif resolved in self.classes:
                init = self.find_method(resolved, "__init__")
                if init is not None:
                    targets.add(init.qualname)
            else:
                open_world = True
        self.edges[fn.qualname] = targets
        if open_world:
            self.open_calls.add(fn.qualname)

    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def stats(self) -> Dict[str, int]:
        return {
            "modules": len(self.modules),
            "classes": len(self.classes),
            "functions": len(self.functions),
            "edges": sum(len(t) for t in self.edges.values()),
            "open_functions": len(self.open_calls),
        }


def build_callgraph(files: Sequence[SourceFile]) -> CallGraph:
    """Build the project model the deep rule families share."""
    return CallGraph(files)
