"""Def-use taint dataflow over one function body.

A deliberately small abstract interpreter: it tracks which local names
(and ``self.<attr>`` slots) may carry a tainted value, propagating
through assignments, containers, f-strings, arithmetic and calls.  Two
passes over the statement list reach the loop-carried fixpoint (the
lattice is two-point and transfer functions are monotone, so one
re-pass suffices).

Only *explicit* flows propagate: branch conditions never taint the
values computed under them, and membership tests (``x in some_set``)
are deterministic regardless of the container's iteration order, so
``Compare`` results are always clean.  This keeps the engine
under-approximating — everything it reports is a real data flow.

The policy object supplies what varies per rule family: which calls
introduce taint, which calls sanitize it, which callees are sinks, and
what resolved project callees return (the interprocedural summaries
computed by :mod:`repro.analysis.deep.taint`).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionInfo, dotted_parts


def call_label(graph: CallGraph, fn: FunctionInfo, call: ast.Call) -> Optional[str]:
    """Canonical name of a call target, falling back to its dotted text.

    Unresolved bare names (``sorted``, ``id``, ``set``) come back as-is
    so policies can still pattern-match builtins.
    """
    resolved = graph.resolve_call(fn, call)
    if resolved is not None:
        return resolved
    parts = dotted_parts(call.func)
    return ".".join(parts) if parts is not None else None


class TaintPolicy:
    """Hooks a rule family plugs into the dataflow engine."""

    def is_source_call(self, label: Optional[str], call: ast.Call) -> bool:
        raise NotImplementedError

    def is_source_attr(self, dotted: Optional[str]) -> bool:
        """Non-call taint (e.g. ``os.environ`` attribute reads)."""
        raise NotImplementedError

    def is_sanitizer(self, label: Optional[str], call: ast.Call) -> bool:
        raise NotImplementedError

    def is_sink_call(self, label: Optional[str]) -> bool:
        return False

    def callee_returns_taint(self, qualname: str) -> bool:
        raise NotImplementedError

    def attr_is_tainted(self, class_qualname: str, attr: str) -> bool:
        """Cross-method taint: ``obj.attr`` poisoned elsewhere in the class."""
        raise NotImplementedError


class TaintHit:
    """One tainted value arriving somewhere the caller cares about."""

    __slots__ = ("line", "col", "kind", "detail")

    def __init__(self, line: int, col: int, kind: str, detail: str) -> None:
        self.line = line
        self.col = col
        self.kind = kind  # "return" | "hash-update" | "sink-arg"
        self.detail = detail


class FunctionTaint:
    """Result of analysing one function: summary bits + hit list."""

    __slots__ = ("returns_taint", "tainted_self_attrs", "hits")

    def __init__(self) -> None:
        self.returns_taint = False
        self.tainted_self_attrs: Set[str] = set()
        self.hits: List[TaintHit] = []


#: Calls whose result must be treated as a fresh hash accumulator.
HASH_FACTORIES = frozenset(
    {
        "hashlib.sha256",
        "hashlib.sha1",
        "hashlib.sha512",
        "hashlib.md5",
        "hashlib.blake2b",
        "hashlib.blake2s",
        "hashlib.new",
    }
)


def analyse_function(
    graph: CallGraph,
    fn: FunctionInfo,
    policy: TaintPolicy,
) -> FunctionTaint:
    """Run the two-pass taint interpretation of one function body."""
    result = FunctionTaint()
    env: Dict[str, bool] = {}
    hash_vars: Set[str] = set()
    reported: Set[Tuple[int, int, str]] = set()
    type_env = graph.env_of(fn)

    def taint_of(node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return env.get(node.id, False)
        if isinstance(node, ast.Attribute):
            parts = dotted_parts(node)
            if parts is None:
                return taint_of(node.value)
            if env.get(".".join(parts), False):
                return True
            if len(parts) == 2:
                klass = type_env.get(parts[0])
                if klass is not None and policy.attr_is_tainted(klass, parts[1]):
                    return True
            resolved = graph.resolve_name(fn.module, parts)
            return policy.is_source_attr(resolved if resolved else ".".join(parts))
        if isinstance(node, ast.Call):
            return call_taint(node)
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True  # iteration order of a set is nondeterministic
        if isinstance(node, ast.Compare):
            return False  # membership/ordering tests are deterministic
        if isinstance(node, ast.BoolOp):
            return False  # branch logic, not data
        if isinstance(node, ast.IfExp):
            return taint_of(node.body) or taint_of(node.orelse)
        if isinstance(node, ast.Lambda):
            return False
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            if any(taint_of(g.iter) for g in node.generators):
                return True
            return taint_of(node.elt)
        if isinstance(node, ast.DictComp):
            if any(taint_of(g.iter) for g in node.generators):
                return True
            return taint_of(node.key) or taint_of(node.value)
        return any(taint_of(child) for child in ast.iter_child_nodes(node))

    def args_taint(call: ast.Call) -> bool:
        return any(taint_of(a) for a in call.args) or any(
            taint_of(k.value) for k in call.keywords
        )

    def call_taint(call: ast.Call) -> bool:
        label = call_label(graph, fn, call)
        if policy.is_sanitizer(label, call):
            return False
        if policy.is_source_call(label, call):
            return True
        if policy.is_sink_call(label) and args_taint(call):
            record(call, "sink-arg", f"tainted argument passed to sink {label}")
        if label is not None and label in graph.functions:
            return policy.callee_returns_taint(label) or args_taint(call)
        # Unknown callee: assume it forwards its arguments' taint, and a
        # method call its receiver's (``str(time.time()).encode()``).
        if isinstance(call.func, ast.Attribute) and taint_of(call.func.value):
            return True
        return args_taint(call)

    def record(node: ast.AST, kind: str, detail: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (line, col, kind)
        if key in reported:
            return
        reported.add(key)
        result.hits.append(TaintHit(line, col + 1, kind, detail))

    def assign_target(target: ast.AST, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = tainted or env.get(target.id, False)
        elif isinstance(target, ast.Attribute):
            parts = dotted_parts(target)
            if parts is not None:
                key = ".".join(parts)
                env[key] = tainted or env.get(key, False)
                if parts[0] == "self" and len(parts) == 2 and tainted:
                    result.tainted_self_attrs.add(parts[1])
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                assign_target(element, tainted)
        elif isinstance(target, ast.Starred):
            assign_target(target.value, tainted)
        # Subscript stores taint the whole container conservatively.
        elif isinstance(target, ast.Subscript):
            assign_target(target.value, tainted)

    def visit_stmt(stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            tainted = taint_of(stmt.value)
            if isinstance(stmt.value, ast.Call):
                label = call_label(graph, fn, stmt.value)
                if label in HASH_FACTORIES:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            hash_vars.add(target.id)
            for target in stmt.targets:
                assign_target(target, tainted)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            assign_target(stmt.target, taint_of(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            assign_target(stmt.target, taint_of(stmt.value) or taint_of(stmt.target))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None and taint_of(stmt.value):
                result.returns_taint = True
                record(stmt, "return", "nondeterministic value returned")
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "update"
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id in hash_vars
            ):
                if args_taint(call):
                    record(call, "hash-update", "nondeterministic bytes hashed")
            else:
                # Method calls may store taint into their receiver
                # (``lines.append(tainted)``).
                if isinstance(call.func, ast.Attribute) and args_taint(call):
                    assign_target(call.func.value, True)
                call_taint(call)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            assign_target(stmt.target, taint_of(stmt.iter))
            for child in stmt.body + stmt.orelse:
                visit_stmt(child)
        elif isinstance(stmt, (ast.If, ast.While)):
            for child in stmt.body + stmt.orelse:
                visit_stmt(child)
        elif isinstance(stmt, ast.Try):
            for child in stmt.body:
                visit_stmt(child)
            for handler in stmt.handlers:
                for child in handler.body:
                    visit_stmt(child)
            for child in stmt.orelse + stmt.finalbody:
                visit_stmt(child)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    assign_target(item.optional_vars, taint_of(item.context_expr))
            for child in stmt.body:
                visit_stmt(child)
        # Nested defs/classes are separate scopes; skip them.

    body: List[ast.stmt] = list(fn.node.body)  # type: ignore[attr-defined]
    for _ in range(2):  # second pass settles loop-carried taint
        for stmt in body:
            visit_stmt(stmt)
    return result
