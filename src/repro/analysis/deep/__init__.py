"""repro-deepcheck: interprocedural analysis behind ``repro lint --deep``.

Where the shallow rules (:mod:`repro.analysis`) judge one line at a
time, the deep pass builds a whole-program model first — a call graph
name-resolved across modules (methods resolved through class bases and
through duck-typed attach points like ``db.set_query_engine``) plus a
def-use taint dataflow — and then runs four rule families over it:

* **deep-taint** (D1) — nondeterminism sources (wall clock, module-level
  ``random``, ``id()``, set iteration order, environment reads) must not
  reach reproducibility sinks (trace digests, snapshot payloads, RPC
  wire encoders) except through sanctioned sanitizers (``sorted`` et al.);
* **deep-except-escape** / **deep-except-dead** (D2) — which project
  exception types can escape each declared layer-boundary function, and
  which ``except`` arms can never fire;
* **deep-dispatch** / **deep-dispatch-orphan** (D3) — every member of a
  closed class family (CQL AST nodes, OpenFlow messages) is handled by
  every dispatch surface, and no surface handles a member that is never
  produced;
* **deep-snapshot** (D4) — fields written in ``__init__`` but absent
  from ``to_snapshot``, and snapshot payload keys that do not round-trip
  through the paired ``restore_*``/``from_snapshot``.

All four reuse the shallow framework's finding/pragma/baseline
machinery, so ``# repro: ignore[deep-*]`` pragmas and the committed
baseline work unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core import Rule, SourceFile
from .callgraph import CallGraph, build_callgraph
from .dispatch import DispatchRule
from .exceptions import ExceptionFlowRule
from .snapshots import SnapshotParityRule
from .taint import DeepTaintRule

__all__ = [
    "CallGraph",
    "DeepContext",
    "DeepTaintRule",
    "DispatchRule",
    "ExceptionFlowRule",
    "SnapshotParityRule",
    "build_callgraph",
    "deep_rules",
]


class DeepContext:
    """Shared, lazily-built call graph so the four rules model once."""

    def __init__(self) -> None:
        self._graph: Optional[CallGraph] = None
        self._key: Optional[Tuple[int, ...]] = None

    def graph(self, files: Sequence[SourceFile]) -> CallGraph:
        key = tuple(id(f) for f in files)
        if self._graph is None or self._key != key:
            self._graph = build_callgraph(files)
            self._key = key
        return self._graph


def deep_rules(context: Optional[DeepContext] = None) -> List[Rule]:
    """The four deep rule families, sharing one project model."""
    ctx = context if context is not None else DeepContext()
    return [
        DeepTaintRule(ctx),
        ExceptionFlowRule(ctx),
        DispatchRule(ctx),
        SnapshotParityRule(ctx),
    ]
