"""repro-lint: repo-specific static analysis for the Homework reproduction.

The reproduction has architectural contracts that generic linters cannot
see: the layer DAG (``net`` never imports ``sim``), the determinism rule
(all time flows through the injected clock), the parser-safety idiom in
:mod:`repro.net` (bounds-check before you slice), exception and logging
hygiene, and the telemetry naming conventions from the ``repro.obs``
registry.  This package turns those conventions into machine-checked
rules over the AST — pure stdlib, no third-party dependencies.

Run it as ``python -m repro lint`` (see :mod:`repro.analysis.cli`);
suppress a single finding with a ``# repro: ignore[rule-id]`` pragma on
the flagged line, and gate CI on *new* findings with a committed
baseline file.
"""

from .core import (
    Rule,
    SourceFile,
    Violation,
    default_rules,
    discover_files,
    run_rules,
)

__all__ = [
    "Rule",
    "SourceFile",
    "Violation",
    "default_rules",
    "discover_files",
    "run_rules",
]
