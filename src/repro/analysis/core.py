"""The lint framework: source model, rule protocol, runner, baseline.

Every rule works from a :class:`SourceFile` — the parsed AST plus the
metadata rules keep needing (module name, pragma lines, TYPE_CHECKING
import lines).  Rules are small classes with two hooks:

* :meth:`Rule.check_file` — per-file findings (most rules);
* :meth:`Rule.check_project` — whole-project findings that need a global
  view (the layering DAG, metric-name cross-checks).

Findings are :class:`Violation` records.  A per-line pragma
``# repro: ignore[rule-id]`` (or ``ignore[*]``) suppresses findings on
that line; the committed baseline (see :func:`diff_baseline`) gates CI
on *new* findings only, keyed by ``path::rule`` counts so line drift
never breaks the build.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Rule",
    "SourceFile",
    "Violation",
    "default_rules",
    "diff_baseline",
    "discover_files",
    "load_baseline",
    "run_rules",
    "violation_counts",
]

_PRAGMA_RE = re.compile(r"#\s*repro:\s*ignore\[([^\]]*)\]")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule id anchored to a file position."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def key(self) -> str:
        """Baseline key — deliberately line-free so findings survive drift."""
        return f"{self.path}::{self.rule}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def _sort_key(v: Violation) -> Tuple[str, int, int, str]:
    return (v.path, v.line, v.col, v.rule)


class SourceFile:
    """A parsed source file plus the metadata every rule needs."""

    def __init__(self, module: str, path: str, text: str):
        self.module = module
        self.path = path
        self.text = text
        self.tree = ast.parse(text, filename=path)
        self.pragmas = self._parse_pragmas(text)
        self.type_checking_lines = self._type_checking_import_lines(self.tree)

    @classmethod
    def from_path(cls, path: Path, module: str, display: str) -> "SourceFile":
        return cls(module, display, path.read_text(encoding="utf-8"))

    @staticmethod
    def _parse_pragmas(text: str) -> Dict[int, Set[str]]:
        pragmas: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _PRAGMA_RE.search(line)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            if rules:
                pragmas[lineno] = rules
        return pragmas

    @staticmethod
    def _type_checking_import_lines(tree: ast.Module) -> Set[int]:
        """Line numbers of import statements guarded by ``if TYPE_CHECKING:``.

        Those imports never execute, so they are exempt from the layering
        and clock rules (they exist purely for annotations).
        """
        lines: Set[int] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
                isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
            )
            if not is_tc:
                continue
            for child in ast.walk(node):
                if isinstance(child, (ast.Import, ast.ImportFrom)):
                    lines.add(child.lineno)
        return lines

    def suppressed(self, violation: Violation) -> bool:
        rules = self.pragmas.get(violation.line)
        return bool(rules) and ("*" in rules or violation.rule in rules)

    def resolve_relative(self, level: int, target: Optional[str]) -> Optional[str]:
        """Resolve a relative import to an absolute dotted module name."""
        parts = self.module.split(".")
        # The anchor package: for ``repro.net.udp`` it is ``repro.net``;
        # package __init__ modules are addressed by their package name, so
        # their anchor is the module itself.
        anchor = parts if self.is_package else parts[:-1]
        if level - 1 > len(anchor):
            return None
        base = anchor[: len(anchor) - (level - 1)]
        if target:
            base = base + target.split(".")
        return ".".join(base) if base else None

    @property
    def is_package(self) -> bool:
        return self.path.endswith("__init__.py")

    def __repr__(self) -> str:
        return f"SourceFile({self.module})"


class Rule:
    """Base class for lint rules.

    ``name`` identifies the rule family; the ids attached to emitted
    violations (``ids``) are what pragmas and the baseline refer to.
    """

    name = "rule"
    ids: Tuple[str, ...] = ()
    description = ""

    def check_file(self, source: SourceFile) -> Iterable[Violation]:
        return ()

    def check_project(self, files: Sequence[SourceFile]) -> Iterable[Violation]:
        return ()


def default_rules() -> List[Rule]:
    """The repo-specific rule families, in reporting order."""
    from .clocks import ClockDisciplineRule
    from .fswrites import FileWriteRule
    from .hygiene import ExceptionHygieneRule, PrintRule
    from .layers import LayeringRule
    from .metric_names import MetricNameRule
    from .parsers import ParserSafetyRule
    from .trace_events import TraceEventRule

    return [
        LayeringRule(),
        ClockDisciplineRule(),
        ParserSafetyRule(),
        ExceptionHygieneRule(),
        PrintRule(),
        MetricNameRule(),
        TraceEventRule(),
        FileWriteRule(),
    ]


def discover_files(package_root: Path, display_root: Optional[Path] = None) -> List[SourceFile]:
    """Walk ``package_root`` (the ``repro`` package directory) into SourceFiles.

    ``display_root`` is the directory violations' paths are shown relative
    to (the repo root); defaults to the package root's grandparent, which
    is the repository root in the ``src/`` layout.
    """
    package_root = package_root.resolve()
    if display_root is None:
        display_root = package_root.parent.parent
    files: List[SourceFile] = []
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(package_root)
        parts = (package_root.name,) + rel.parts
        if parts[-1] == "__init__.py":
            module = ".".join(parts[:-1])
        else:
            module = ".".join(parts)[: -len(".py")]
        try:
            display = path.relative_to(display_root).as_posix()
        except ValueError:
            display = path.as_posix()
        files.append(SourceFile.from_path(path, module, display))
    return files


def run_rules(
    files: Sequence[SourceFile],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Set[str]] = None,
) -> List[Violation]:
    """Run rules over the files; returns pragma-filtered, sorted findings."""
    if rules is None:
        rules = default_rules()
    by_path = {f.path: f for f in files}
    violations: List[Violation] = []
    for rule in rules:
        if select is not None and not (set(rule.ids) & select):
            continue
        for source in files:
            violations.extend(rule.check_file(source))
        violations.extend(rule.check_project(files))
    kept = []
    for violation in violations:
        if select is not None and violation.rule not in select:
            continue
        source = by_path.get(violation.path)
        if source is not None and source.suppressed(violation):
            continue
        kept.append(violation)
    return sorted(set(kept), key=_sort_key)


# ----------------------------------------------------------------------
# Baseline: CI fails only on *new* violations
# ----------------------------------------------------------------------


def violation_counts(violations: Iterable[Violation]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.key] = counts.get(violation.key, 0) + 1
    return counts


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file; missing file means an empty baseline."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    counts = data.get("counts", {}) if isinstance(data, dict) else {}
    return {str(k): int(v) for k, v in counts.items()}


def write_baseline(
    path: Path,
    violations: Iterable[Violation],
    ran_rule_ids: Optional[Iterable[str]] = None,
) -> Dict[str, int]:
    """Write the baseline; returns the counts written.

    With ``ran_rule_ids``, entries for rules that did *not* run this
    invocation are carried over from the existing file — a shallow-only
    run must not clobber the deep rules' entries, and vice versa.
    Without it, the file is replaced outright.
    """
    counts = violation_counts(violations)
    if ran_rule_ids is not None:
        ran = set(ran_rule_ids)
        for key, allowed in load_baseline(path).items():
            if key.rsplit("::", 1)[-1] not in ran:
                counts.setdefault(key, allowed)
    payload = {
        "comment": (
            "repro-lint baseline: pre-existing violations tolerated by CI. "
            "Regenerate with `python -m repro lint --write-baseline`; "
            "burn it down, never grow it."
        ),
        "counts": dict(sorted(counts.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return counts


@dataclass
class BaselineDiff:
    """Current findings split against the committed baseline."""

    new: List[Violation] = field(default_factory=list)
    baselined: List[Violation] = field(default_factory=list)
    fixed_keys: List[str] = field(default_factory=list)


def diff_baseline(violations: Sequence[Violation], baseline: Dict[str, int]) -> BaselineDiff:
    """Split findings into new vs. baselined, count-keyed by path::rule.

    If a key has more findings than the baseline allows, the excess (the
    last ones in line order) count as new.  Keys whose findings dropped
    below the baseline are reported as fixed so the baseline can be
    regenerated smaller.
    """
    diff = BaselineDiff()
    seen: Dict[str, int] = {}
    for violation in violations:
        seen[violation.key] = seen.get(violation.key, 0) + 1
        if seen[violation.key] <= baseline.get(violation.key, 0):
            diff.baselined.append(violation)
        else:
            diff.new.append(violation)
    for key, allowed in sorted(baseline.items()):
        if seen.get(key, 0) < allowed:
            diff.fixed_keys.append(key)
    return diff


def iter_function_defs(tree: ast.AST) -> Iterator[ast.AST]:
    """Yield every function/method definition in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
