"""Exception and output hygiene rules.

``except-swallow`` — a bare ``except:`` anywhere, or a broad
``except Exception`` whose handler neither logs, nor increments a
metric, nor re-raises.  Broad catches are legitimate at fault barriers
(the NOX dispatch loop, the RPC server, the event bus) *provided* the
failure is observable; silently eating everything is not.

``print-call`` — ``print()`` in library code.  Everything under
``src/repro`` must report through module-level ``logging`` loggers so
output is routable and silenceable; the CLI configures logging once
(see ``python -m repro --verbose``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .core import Rule, SourceFile, Violation

BROAD_NAMES = {"Exception", "BaseException"}

#: Method names that make a handler observable.
LOG_METHODS = {"debug", "info", "warning", "error", "exception", "critical", "log"}
METRIC_METHODS = {"inc", "dec", "observe", "set"}


def _is_broad(handler_type: ast.AST) -> bool:
    if isinstance(handler_type, ast.Name):
        return handler_type.id in BROAD_NAMES
    if isinstance(handler_type, ast.Attribute):
        return handler_type.attr in BROAD_NAMES
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(elt) for elt in handler_type.elts)
    return False


def _handler_is_observable(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in LOG_METHODS or node.func.attr in METRIC_METHODS:
                return True
    return False


class ExceptionHygieneRule(Rule):
    name = "hygiene"
    ids = ("except-swallow",)
    description = "broad exception handlers that swallow silently"

    def check_file(self, source: SourceFile) -> Iterable[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                violations.append(
                    Violation(
                        path=source.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule="except-swallow",
                        message=(
                            "bare except: catches SystemExit/KeyboardInterrupt; "
                            "catch a specific exception type"
                        ),
                    )
                )
            elif _is_broad(node.type) and not _handler_is_observable(node):
                violations.append(
                    Violation(
                        path=source.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule="except-swallow",
                        message=(
                            "broad except swallows silently; log it, count it "
                            "(obs error counter), re-raise, or narrow the type"
                        ),
                    )
                )
        return violations


class PrintRule(Rule):
    name = "print"
    ids = ("print-call",)
    description = "print() in library code; use module-level logging"

    def check_file(self, source: SourceFile) -> Iterable[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                violations.append(
                    Violation(
                        path=source.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule="print-call",
                        message=(
                            "print() in library code; use a module-level "
                            "logging logger (the CLI configures handlers once)"
                        ),
                    )
                )
        return violations
