"""Trace-event discipline: the flight recorder's closed vocabulary.

Hop records are written from every layer of the stack but rendered,
queried and grepped as one ``trace.<component>.<verb>`` namespace, so
the literals passed to ``TraceContext.hop()`` / ``.finish()`` are
load-bearing the same way metric names are:

* the **component** must come from ``repro.net.trace.TRACE_COMPONENTS``
  — an unregistered component silently forks the vocabulary and breaks
  every ``WHERE component = ...`` query written against the Traces
  table;
* the **verb** must be kebab-free snake_case (``flow_install``, not
  ``flow-install``), matching the registry conventions the metrics rule
  enforces.

Dynamic arguments (f-strings, variables) are skipped — only literal
call sites can be checked statically.  Calls whose first two positional
arguments are not both string literals are ignored entirely, which also
keeps unrelated ``.finish()`` methods (e.g. a runner sealing its trace)
out of scope.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List

from ..net.trace import TRACE_COMPONENTS
from .core import Rule, SourceFile, Violation

HOP_METHODS = {"hop", "finish"}

VERB_RE = re.compile(r"^[a-z][a-z0-9_]*$")


class TraceEventRule(Rule):
    name = "trace_events"
    ids = ("trace-event",)
    description = "hop/finish literals use registered components and snake_case verbs"

    def check_file(self, source: SourceFile) -> Iterable[Violation]:
        if source.module.startswith("repro.analysis"):
            return ()
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in HOP_METHODS or len(node.args) < 2:
                continue
            component, verb = node.args[0], node.args[1]
            if not (
                isinstance(component, ast.Constant)
                and isinstance(component.value, str)
                and isinstance(verb, ast.Constant)
                and isinstance(verb.value, str)
            ):
                continue
            if component.value not in TRACE_COMPONENTS:
                violations.append(
                    Violation(
                        path=source.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule="trace-event",
                        message=(
                            f"trace component {component.value!r} is not in "
                            f"TRACE_COMPONENTS (repro.net.trace); register it "
                            f"or use one of the existing components"
                        ),
                    )
                )
            if not VERB_RE.match(verb.value):
                violations.append(
                    Violation(
                        path=source.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule="trace-event",
                        message=(
                            f"trace verb {verb.value!r} breaks the event "
                            f"convention: kebab-free snake_case "
                            f"(e.g. 'flow_install')"
                        ),
                    )
                )
        return violations
