"""``python -m repro lint`` — run the repo-specific rules, gate on the baseline.

Exit status: 0 when there are no findings beyond the committed baseline,
1 when new findings exist (CI fails), 2 on usage errors or tool crashes
(so CI can tell "the code has findings" from "the linter fell over").

``--deep`` adds the interprocedural pass (:mod:`repro.analysis.deep`):
whole-program call graph + dataflow behind the deep-* rule families.
Selecting any ``deep-*`` id via ``--select`` enables it implicitly.

Output is one ``path:line:col: rule message`` line per finding (or a JSON
document with ``--json`` for tooling).  The tool writes to stdout via
``sys.stdout`` directly: it *is* a CLI, but it is also library code under
``src/`` where the print rule applies — and lint tools get no exemptions
from their own rules.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from .core import (
    default_rules,
    diff_baseline,
    discover_files,
    load_baseline,
    run_rules,
    violation_counts,
    write_baseline,
)

#: src/repro/analysis/cli.py -> repro package dir, src/, repo root.
PACKAGE_ROOT = Path(__file__).resolve().parents[1]
REPO_ROOT = PACKAGE_ROOT.parents[1]
DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="repro-lint: AST-based architecture, determinism and parser-safety checks",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="package directories to lint (default: the installed repro package)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable JSON output")
    parser.add_argument(
        "--deep",
        action="store_true",
        help="also run the interprocedural deep-* rule families",
    )
    parser.add_argument(
        "--deep-json",
        action="store_true",
        help="implies --deep --json and adds call-graph stats to the payload",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <repo>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report and fail on every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _emit(text: str) -> None:
    sys.stdout.write(text + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    from .deep import DeepContext, deep_rules

    if args.list_rules:
        for rule in default_rules():
            _emit(f"{', '.join(rule.ids):<28} {rule.description}")
        for rule in deep_rules():
            _emit(f"{', '.join(rule.ids):<28} [deep] {rule.description}")
        return 0

    select = None
    if args.select:
        select = {part.strip() for part in args.select.split(",") if part.strip()}
    want_json = args.json or args.deep_json
    want_deep = (
        args.deep
        or args.deep_json
        or bool(select and any(part.startswith("deep-") for part in select))
    )

    started = time.monotonic()  # repro: ignore[clock] - CLI wall-time report
    roots = [Path(p) for p in args.paths] if args.paths else [PACKAGE_ROOT]
    for root in roots:
        if not root.is_dir():
            _emit(f"error: not a directory: {root}")
            return 2

    try:
        files = []
        for root in roots:
            files.extend(discover_files(root))

        rules = list(default_rules())
        context = None
        if want_deep:
            context = DeepContext()
            rules.extend(deep_rules(context))
        violations = run_rules(files, rules=rules, select=select)
    except Exception as exc:  # repro: ignore[except-swallow] - reported, exits 2
        _emit(f"error: repro-lint crashed: {type(exc).__name__}: {exc}")
        return 2

    ran_ids = [i for rule in rules for i in rule.ids if select is None or i in select]
    baseline_path = Path(args.baseline) if args.baseline else REPO_ROOT / DEFAULT_BASELINE
    if args.write_baseline:
        counts = write_baseline(baseline_path, violations, ran_rule_ids=ran_ids)
        _emit(
            f"wrote baseline with {len(violations)} finding(s) "
            f"({len(counts)} key(s)) to {baseline_path}"
        )
        return 0

    baseline = {} if args.no_baseline else load_baseline(baseline_path)
    diff = diff_baseline(violations, baseline)
    elapsed = time.monotonic() - started  # repro: ignore[clock] - CLI wall-time report

    if want_json:
        payload = {
            "files": len(files),
            "elapsed_seconds": round(elapsed, 3),
            "violations": [v.to_dict() for v in violations],
            "new": [v.to_dict() for v in diff.new],
            "baselined": len(diff.baselined),
            "fixed_keys": diff.fixed_keys,
            "counts": violation_counts(violations),
        }
        if args.deep_json and context is not None:
            payload["callgraph"] = context.graph(files).stats()
        _emit(json.dumps(payload, indent=2))
        return 1 if diff.new else 0

    for violation in diff.new:
        _emit(violation.render())
    label = "repro-lint (deep)" if want_deep else "repro-lint"
    summary = (
        f"{label}: {len(files)} files, {len(violations)} finding(s) "
        f"({len(diff.new)} new, {len(diff.baselined)} baselined) in {elapsed:.2f}s"
    )
    _emit(summary)
    if diff.fixed_keys:
        _emit(
            "baseline is stale (violations fixed — regenerate with --write-baseline): "
            + ", ".join(diff.fixed_keys)
        )
    return 1 if diff.new else 0


if __name__ == "__main__":
    sys.exit(main())
