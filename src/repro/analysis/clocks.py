"""The clock-discipline rule: all time flows through the injected clock.

The whole router runs under the discrete-event simulator; a stray
``time.time()`` (or ``datetime.now()``, ``perf_counter()``...) makes a
run non-deterministic and invisible to simulated time.  Components must
read time through the injected ``Clock``/``now()`` (or, for wall-clock
latency instrumentation, through ``MetricsRegistry.clock``, which is
itself injectable).

Allowlisted modules — the two places wall-clock access is the point:

* ``repro.core.clock`` defines :class:`WallClock`, the abstraction;
* ``repro.obs.metrics`` defaults its registry clock to real time.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from .core import Rule, SourceFile, Violation

ALLOWLIST: Set[str] = {"repro.core.clock", "repro.obs.metrics"}

#: Wall-clock primitives in the ``time`` module.
TIME_FUNCS: Set[str] = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "sleep",
}

#: Non-deterministic constructors on ``datetime``/``date`` classes.
DATETIME_FUNCS: Set[str] = {"now", "utcnow", "today"}


class ClockDisciplineRule(Rule):
    name = "clock"
    ids = ("clock",)
    description = "wall-clock reads outside the injected-clock abstraction"

    def check_file(self, source: SourceFile) -> Iterable[Violation]:
        if source.module in ALLOWLIST:
            return []
        violations: List[Violation] = []
        time_aliases: Set[str] = set()
        datetime_module_aliases: Set[str] = set()
        datetime_class_aliases: Set[str] = set()

        def flag(node: ast.AST, what: str) -> None:
            violations.append(
                Violation(
                    path=source.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule="clock",
                    message=(
                        f"{what} bypasses the injected clock; use the component's "
                        f"now()/Clock (or MetricsRegistry.clock for latency timing)"
                    ),
                )
            )

        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or alias.name)
                    elif alias.name == "datetime":
                        datetime_module_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.lineno in source.type_checking_lines:
                    continue
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in TIME_FUNCS:
                            flag(node, f"importing time.{alias.name}")
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_class_aliases.add(alias.asname or alias.name)

        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            value = func.value
            # time.<func>() via a module alias
            if (
                isinstance(value, ast.Name)
                and value.id in time_aliases
                and func.attr in TIME_FUNCS
            ):
                flag(node, f"call to time.{func.attr}()")
            # datetime.now() via an imported class alias
            elif (
                isinstance(value, ast.Name)
                and value.id in datetime_class_aliases
                and func.attr in DATETIME_FUNCS
            ):
                flag(node, f"call to datetime.{func.attr}()")
            # datetime.datetime.now() via the module alias
            elif (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id in datetime_module_aliases
                and value.attr in ("datetime", "date")
                and func.attr in DATETIME_FUNCS
            ):
                flag(node, f"call to datetime.{value.attr}.{func.attr}()")
        return violations
