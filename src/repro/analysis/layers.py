"""The layering rule: the declared layer DAG, enforced on the import graph.

The contract (low to high; a module may import its own layer or below,
never above):

====== =====================================================
 0      kernel — ``core.clock``, ``core.errors``, ``core.events``,
        ``core.logging_setup`` (stdlib-only logging config)
 1      ``net`` (+ ``core.config``, shared config vocabulary)
 2      ``openflow``
 3      ``hwdb``
 4      ``query`` + ``store`` — both compile against hwdb's tables and
        attach through duck-typed hooks (``set_query_engine`` /
        ``set_store``), so hwdb never imports either; they also never
        import each other
 5      ``nox``
 6      ``services``
 7      ``policy``
 8      ``measurement``
 9      ``obs``
 10     ``sim``
 11     app — ``ui``, ``core.router``, the package roots, ``analysis``,
        ``check`` (the fuzzer drives the whole stack)
 12     ``fleet`` + ``bench`` + ``__main__`` — multi-household
        orchestration and the perf harness drive whole routers; the CLI
        dispatcher sits here because it (lazily) imports every
        subcommand, fleet and bench included
====== =====================================================

Imports guarded by ``if TYPE_CHECKING:`` are exempt (they never execute).
Function-scoped (lazy) imports still count for the upward check — they
are real runtime dependencies — but not for cycle detection, because a
deferred import is exactly how a module-level cycle is legitimately
broken.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .core import Rule, SourceFile, Violation

#: Layer table: (level, module prefix).  Resolution picks the longest
#: matching prefix, so ``repro.core.clock`` lands in the kernel even
#: though ``repro.core`` itself is an app-level module.
LAYER_PREFIXES: Tuple[Tuple[int, str], ...] = (
    (0, "repro.core.clock"),
    (0, "repro.core.errors"),
    (0, "repro.core.events"),
    (0, "repro.core.logging_setup"),
    (1, "repro.net"),
    (1, "repro.core.config"),
    (2, "repro.openflow"),
    (3, "repro.hwdb"),
    (4, "repro.query"),
    (4, "repro.store"),
    (5, "repro.nox"),
    (6, "repro.services"),
    (7, "repro.policy"),
    (8, "repro.measurement"),
    (9, "repro.obs"),
    (10, "repro.sim"),
    (11, "repro.ui"),
    (11, "repro.core.router"),
    (11, "repro.core"),
    (11, "repro.analysis"),
    (11, "repro.check"),
    (12, "repro.fleet"),
    (12, "repro.bench"),
    (12, "repro.__main__"),
    (11, "repro"),
)

LAYER_NAMES: Dict[int, str] = {
    0: "kernel",
    1: "net",
    2: "openflow",
    3: "hwdb",
    4: "query/store",
    5: "nox",
    6: "services",
    7: "policy",
    8: "measurement",
    9: "obs",
    10: "sim",
    11: "app",
    12: "fleet",
}


def layer_of(module: str) -> Optional[int]:
    """The layer of a dotted module name, by longest declared prefix."""
    best: Optional[Tuple[int, int]] = None  # (prefix length, layer)
    for level, prefix in LAYER_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            if best is None or len(prefix) > best[0]:
                best = (len(prefix), level)
    return None if best is None else best[1]


class _ImportEdge:
    __slots__ = ("target", "line", "col", "lazy", "type_checking")

    def __init__(self, target: str, line: int, col: int, lazy: bool, type_checking: bool):
        self.target = target
        self.line = line
        self.col = col
        self.lazy = lazy
        self.type_checking = type_checking


def _iter_imports(source: SourceFile) -> Iterable[_ImportEdge]:
    """Every intra-``repro`` import in the file, resolved to module names."""
    lazy_ranges: List[Tuple[int, int]] = []
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            lazy_ranges.append((node.lineno, end))

    def is_lazy(lineno: int) -> bool:
        return any(start <= lineno <= end for start, end in lazy_ranges)

    for node in ast.walk(source.tree):
        type_checking = False
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            type_checking = node.lineno in source.type_checking_lines
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                if name == "repro" or name.startswith("repro."):
                    yield _ImportEdge(
                        name, node.lineno, node.col_offset, is_lazy(node.lineno), type_checking
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = source.resolve_relative(node.level, node.module)
            else:
                base = node.module
            if base is None or not (base == "repro" or base.startswith("repro.")):
                continue
            for alias in node.names:
                # ``from X import Y``: Y may be a submodule of X — resolve
                # the longest name so ``from ..core import clock`` lands on
                # the kernel, not on app-level ``repro.core``.
                yield _ImportEdge(
                    f"{base}.{alias.name}",
                    node.lineno,
                    node.col_offset,
                    is_lazy(node.lineno),
                    type_checking,
                )


class LayeringRule(Rule):
    name = "layering"
    ids = ("layering", "layering-cycle")
    description = "enforce the declared layer DAG on the import graph"

    def check_project(self, files: Sequence[SourceFile]) -> Iterable[Violation]:
        known_modules = {f.module for f in files}
        graph: Dict[str, Set[str]] = {f.module: set() for f in files}
        violations: List[Violation] = []
        for source in files:
            own_layer = layer_of(source.module)
            if own_layer is None:
                continue
            for edge in _iter_imports(source):
                if edge.type_checking:
                    continue
                target_layer = layer_of(edge.target)
                if target_layer is not None and target_layer > own_layer:
                    violations.append(
                        Violation(
                            path=source.path,
                            line=edge.line,
                            col=edge.col + 1,
                            rule="layering",
                            message=(
                                f"{source.module} ({LAYER_NAMES[own_layer]}) imports "
                                f"{edge.target} ({LAYER_NAMES[target_layer]}): lower "
                                f"layers must never import upper ones"
                            ),
                        )
                    )
                if not edge.lazy:
                    # Module-level edge for cycle detection; resolve
                    # ``from X import symbol`` down to module X.
                    target = edge.target
                    while target not in known_modules and "." in target:
                        target = target.rsplit(".", 1)[0]
                    if target in known_modules and target != source.module:
                        graph[source.module].add(target)
        violations.extend(self._cycles(graph, {f.module: f for f in files}))
        return violations

    @staticmethod
    def _cycles(
        graph: Dict[str, Set[str]], by_module: Dict[str, SourceFile]
    ) -> Iterable[Violation]:
        """Strongly-connected components of the module-level import graph."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(graph.get(root, ()))))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(graph.get(succ, ())))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component))

        for module in sorted(graph):
            if module not in index:
                strongconnect(module)

        for component in sccs:
            anchor = by_module[component[0]]
            yield Violation(
                path=anchor.path,
                line=1,
                col=1,
                rule="layering-cycle",
                message="module-level import cycle: " + " -> ".join(component + [component[0]]),
            )
