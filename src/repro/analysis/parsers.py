"""The parser-safety rule: bounds-check before you slice.

Scope: :mod:`repro.net` — the packet parsers that consume bytes straight
off the (simulated) wire.  The idiom the codebase follows is::

    @classmethod
    def unpack(cls, data: bytes) -> "UDP":
        if len(data) < _HEADER_LEN:
            raise PacketError(...)
        sport = int.from_bytes(data[0:2], "big")   # now safe

The rule flags, inside any function in ``repro.net``:

* an *index* subscript of a bytes-like parameter (``data[0]`` raises
  ``IndexError`` on a short buffer), or
* passing a bytes-like parameter — whole or sliced — to
  ``int.from_bytes``/``struct.unpack*`` (``struct`` raises on a short
  read; ``int.from_bytes`` silently mis-parses one)

with no earlier ``len(<param>)`` evaluation in the same function.  A
standalone slice (``data[:28]``) is *not* flagged: Python truncation
slices never raise, so they are safe without a guard.  The
``len()`` heuristic accepts any appearance (an ``if`` guard, a ``while
offset < len(data)`` loop bound, a ``range(0, len(data))``) — the point
is that the author measured the buffer before trusting offsets into it.

A parameter counts as bytes-like when its annotation mentions ``bytes``
or ``memoryview``, or — unannotated — when it uses one of the
conventional buffer names (``data``, ``raw``, ``payload``...).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from .core import Rule, SourceFile, Violation, iter_function_defs

PACKAGE_PREFIX = "repro.net"

#: Conventional buffer parameter names, for unannotated signatures.
BUFFER_NAMES: Set[str] = {"data", "raw", "payload", "frame", "buf", "buffer", "wire"}


def _bytes_like_params(fn: ast.AST) -> Set[str]:
    params: Set[str] = set()
    args = fn.args  # type: ignore[attr-defined]
    all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    for arg in all_args:
        if arg.arg in ("self", "cls"):
            continue
        if arg.annotation is not None:
            rendered = ast.unparse(arg.annotation)
            if "bytes" in rendered or "memoryview" in rendered:
                params.add(arg.arg)
        elif arg.arg in BUFFER_NAMES:
            params.add(arg.arg)
    return params


def _is_len_of(node: ast.AST, params: Set[str]) -> Tuple[bool, str]:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "len"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Name)
        and node.args[0].id in params
    ):
        return True, node.args[0].id
    return False, ""


class ParserSafetyRule(Rule):
    name = "parser"
    ids = ("parser-bounds",)
    description = "byte slices and unpacks without a preceding length guard"

    def check_file(self, source: SourceFile) -> Iterable[Violation]:
        if not (
            source.module == PACKAGE_PREFIX or source.module.startswith(PACKAGE_PREFIX + ".")
        ):
            return []
        violations: List[Violation] = []
        for fn in iter_function_defs(source.tree):
            params = _bytes_like_params(fn)
            if not params:
                continue
            violations.extend(self._check_function(source, fn, params))
        return violations

    @staticmethod
    def _check_function(
        source: SourceFile, fn: ast.AST, params: Set[str]
    ) -> Iterable[Violation]:
        guards: List[Tuple[int, str]] = []  # (line, param)
        uses: List[Tuple[int, int, str, str]] = []  # (line, col, param, what)
        for node in ast.walk(fn):
            is_len, param = _is_len_of(node, params)
            if is_len:
                guards.append((node.lineno, param))
                continue
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id in params
                and not isinstance(node.slice, ast.Slice)
            ):
                # An index read raises IndexError on a short buffer; a
                # standalone slice merely truncates and is always safe.
                uses.append(
                    (node.lineno, node.col_offset, node.value.id, f"index into {node.value.id!r}")
                )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                func = node.func
                from_bytes = (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "int"
                    and func.attr == "from_bytes"
                )
                struct_unpack = (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "struct"
                    and func.attr.startswith("unpack")
                )
                if not (from_bytes or struct_unpack):
                    continue
                for arg in node.args:
                    target = None
                    if isinstance(arg, ast.Name) and arg.id in params:
                        target = arg.id
                    elif (
                        isinstance(arg, ast.Subscript)
                        and isinstance(arg.value, ast.Name)
                        and arg.value.id in params
                    ):
                        target = arg.value.id
                    if target is not None:
                        uses.append(
                            (
                                node.lineno,
                                node.col_offset,
                                target,
                                f"{ast.unparse(func)}() on {target!r}",
                            )
                        )
        for line, col, param, what in sorted(uses):
            guarded = any(g_line <= line and g_param == param for g_line, g_param in guards)
            if guarded:
                continue
            yield Violation(
                path=source.path,
                line=line,
                col=col + 1,
                rule="parser-bounds",
                message=(
                    f"{what} with no preceding len({param}) bounds check in this "
                    f"function; guard before slicing untrusted payloads"
                ),
            )
