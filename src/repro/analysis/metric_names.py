"""Metric-name discipline: the ``repro.obs`` registry conventions.

Metric and span names are string literals scattered across every
subsystem, but they meet in one registry and one hwdb ``Metrics`` table,
so the conventions from the telemetry PR are load-bearing:

* ``metric-name`` — a literal passed to ``.counter()``/``.gauge()``/
  ``.histogram()``/``.span()``/``.timed()`` must be dotted lowercase
  (``<subsystem>.<metric>``): a namespace prefix plus snake_case parts.
* ``metric-kind`` — the same name must not be registered with two
  different instrument kinds anywhere in the project (the registry would
  raise at runtime on the second call; the lint catches it statically).
  A span named ``x`` implicitly owns the histogram ``span.x``.

Dynamic names (f-strings, variables) are skipped — they cannot be
checked statically.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Sequence, Tuple

from .core import Rule, SourceFile, Violation

NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

KIND_METHODS = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
}
SPAN_METHODS = {"span", "timed"}


class MetricNameRule(Rule):
    name = "metrics"
    ids = ("metric-name", "metric-kind")
    description = "metric/span literals follow registry naming conventions"

    def check_project(self, files: Sequence[SourceFile]) -> Iterable[Violation]:
        violations: List[Violation] = []
        # name -> (kind, path, line) of first registration
        registered: Dict[str, Tuple[str, str, int]] = {}
        sites: List[Tuple[str, str, SourceFile, ast.Call]] = []  # (name, kind, file, node)
        for source in files:
            if source.module.startswith("repro.analysis"):
                continue
            for node in ast.walk(source.tree):
                if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                    continue
                method = node.func.attr
                if method not in KIND_METHODS and method not in SPAN_METHODS:
                    continue
                if not (
                    node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    continue
                name = node.args[0].value
                if method in SPAN_METHODS:
                    if not NAME_RE.match(name):
                        violations.append(self._name_violation(source, node, name, method))
                    sites.append((f"span.{name}", "histogram", source, node))
                else:
                    if not NAME_RE.match(name):
                        violations.append(self._name_violation(source, node, name, method))
                    sites.append((name, KIND_METHODS[method], source, node))
        for name, kind, source, node in sites:
            first = registered.get(name)
            if first is None:
                registered[name] = (kind, source.path, node.lineno)
            elif first[0] != kind:
                violations.append(
                    Violation(
                        path=source.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule="metric-kind",
                        message=(
                            f"metric {name!r} registered as {kind} here but as "
                            f"{first[0]} at {first[1]}:{first[2]}; one name, one kind"
                        ),
                    )
                )
        return violations

    @staticmethod
    def _name_violation(
        source: SourceFile, node: ast.Call, name: str, method: str
    ) -> Violation:
        return Violation(
            path=source.path,
            line=node.lineno,
            col=node.col_offset + 1,
            rule="metric-name",
            message=(
                f"{method}() name {name!r} breaks the registry convention: "
                f"dotted lowercase '<subsystem>.<metric>' (e.g. 'hwdb.insert_total')"
            ),
        )
