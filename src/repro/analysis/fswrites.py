"""The durable-write rule: filesystem writes go through the storage layer.

The repo's durability story lives in exactly three places — the
``repro.store`` tier (WAL + segments, crash-safe by construction), the
``repro.hwdb.persist`` sinks (rotating exports) and the bench harness
(result files).  A raw ``open(path, "w")`` anywhere else is a bug
factory: it bypasses atomic-rename discipline, escapes the torn-write
fault model the fuzzer exercises, and silently widens the set of files a
crashed process can leave half-written.

The rule flags calls to the ``open`` builtin whose mode creates,
truncates or appends (first mode character ``w``, ``a`` or ``x``),
whether the mode is the second positional argument or a ``mode=``
keyword.  Read modes — including ``r+`` in-place patching, which the
fuzzer's fault injector uses deliberately — pass.  Calls where the mode
is not a string literal are ignored: this is a convention check, not a
dataflow analysis.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import ast

from .core import Rule, SourceFile, Violation

#: Module prefixes allowed to create/truncate/append files directly.
ALLOWED_PREFIXES: Tuple[str, ...] = (
    "repro.store",
    "repro.hwdb.persist",
    "repro.bench",
)


def _is_allowed(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in ALLOWED_PREFIXES
    )


def _literal_mode(call: ast.Call) -> Optional[str]:
    """The mode string of an ``open()`` call, if literally present."""
    for keyword in call.keywords:
        if keyword.arg == "mode":
            if isinstance(keyword.value, ast.Constant) and isinstance(
                keyword.value.value, str
            ):
                return keyword.value.value
            return None
    if len(call.args) >= 2:
        arg = call.args[1]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return None
    return None  # defaulted mode is "r"


def _is_write_mode(mode: str) -> bool:
    return bool(mode) and mode[0] in "wax"


class FileWriteRule(Rule):
    name = "fswrites"
    ids = ("fs-write",)
    description = "file creation/append only inside the durable-storage layer"

    def check_file(self, source: SourceFile) -> Iterable[Violation]:
        if _is_allowed(source.module):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Name) and func.id == "open"):
                continue
            mode = _literal_mode(node)
            if mode is None or not _is_write_mode(mode):
                continue
            yield Violation(
                path=source.path,
                line=node.lineno,
                col=node.col_offset + 1,
                rule="fs-write",
                message=(
                    f"open(..., {mode!r}) outside the storage layer: route "
                    f"durable writes through repro.store / repro.hwdb.persist "
                    f"(allowed prefixes: {', '.join(ALLOWED_PREFIXES)})"
                ),
            )
