"""Execute a scenario against a fresh router and check invariants.

The runner owns the only mutable world: it builds a
:class:`~repro.core.router.HomeworkRouter` from the scenario's config,
applies each operation at its scheduled simulated time, evaluates the
invariant catalogue after every operation (and over the quiet tail), and
folds a one-line digest per operation into the *event trace*.  The trace
contains only order-independent quantities (simulated time and monotonic
subsystem counters), so its SHA-256 is identical across processes
regardless of ``PYTHONHASHSEED`` — the determinism contract
``python -m repro fuzz --seed N`` is judged by.

Operations referencing state that does not exist (a device never added,
a key never inserted) are *skipped deterministically* rather than
rejected: shrinking deletes arbitrary subsets of operations, and a
skip is the well-defined meaning of the resulting scenario.
"""

from __future__ import annotations

import hashlib
import logging
import os
import shutil
import tempfile
from typing import Dict, List, Optional

from ..core.clock import SimulatedClock
from ..core.config import RouterConfig
from ..core.router import HomeworkRouter
from ..hwdb.database import HomeworkDatabase
from ..hwdb.snapshot import database_digests
from ..net.addresses import MACAddress
from ..services.udev.usbkey import UsbKey
from ..sim.simulator import Simulator
from ..store.archive import WAL_NAME
from ..store.recover import recover_store
from .faults import LinkFault, inject_torn_tail
from .invariants import CheckContext, InvariantViolation, check_all
from .scenario import Op, Scenario

logger = logging.getLogger(__name__)

#: MAC planted by the test-only ``corrupt_flows`` op — deliberately not
#: part of any scenario's device pool, so ``hwdb-flows-known`` fires.
BOGUS_MAC = "02:de:ad:be:ef:99"

#: Checkpoints over the quiet tail after the last operation, so expiry
#: paths (leases, NAT idle, flow timeouts) run under observation.
TAIL_CHECKPOINTS = 4

#: Packet lineages attached to a violating run (most recent drops last).
LINEAGE_LIMIT = 5


class Violation:
    """An invariant failure pinned to the operation that surfaced it."""

    __slots__ = ("invariant", "message", "op_index", "t")

    def __init__(self, invariant: str, message: str, op_index: int, t: float):
        self.invariant = invariant
        self.message = message
        self.op_index = op_index
        self.t = t

    def to_dict(self) -> Dict[str, object]:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "op_index": self.op_index,
            "t": self.t,
        }

    def __repr__(self) -> str:
        return f"Violation({self.invariant} at op {self.op_index}, t={self.t}: {self.message})"


class RunResult:
    """Everything one scenario execution produced."""

    __slots__ = ("scenario", "trace", "trace_hash", "violation", "skipped", "events", "lineage")

    def __init__(
        self,
        scenario: Scenario,
        trace: List[str],
        trace_hash: str,
        violation: Optional[Violation],
        skipped: int,
        events: int,
        lineage: Optional[List[dict]] = None,
    ):
        self.scenario = scenario
        self.trace = trace
        self.trace_hash = trace_hash
        self.violation = violation
        self.skipped = skipped
        self.events = events
        #: Recent dropped/denied packet lineages at the moment the
        #: violation surfaced — the flight recorder's contribution to
        #: the repro file ("why did my packet do that?").
        self.lineage = lineage if lineage is not None else []

    @property
    def ok(self) -> bool:
        return self.violation is None


class ScenarioRunner:
    """One scenario, one fresh world, one verdict.

    :meth:`run` executes the whole scenario in one call.  The phases are
    also public — :meth:`start`, :meth:`run_ops` (which accepts a stop
    index), :meth:`finish` — so a caller can pause a household mid-day,
    serialize its state (``repro.fleet`` checkpoints) and continue later;
    the trace, and therefore the hash, is identical either way.
    """

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        self.sim = Simulator(seed=scenario.seed)
        self.router = HomeworkRouter(self.sim, RouterConfig(**scenario.config))
        # The flight recorder rides along in-memory and publish-free:
        # sample=0.0 means only dropped/denied packets keep lineages
        # (those are force-published), and publish=False keeps hwdb
        # insert counts — hence run digests — exactly as without it.
        self.router.tracer.enable(sample=0.0, publish=False)
        self.ctx = CheckContext()
        self.ctx.extra_macs = {
            str(self.router.config.router_mac),
            str(self.router.cloud.mac),
            "02:00:00:00:00:02",  # the hwdbd management station
        }
        self._slots: Dict[int, int] = {}  # policy slot -> installed policy id
        self._keys: Dict[str, UsbKey] = {}
        self._dns_answers = 0
        self._dns_failures = 0
        self.skipped = 0
        self.trace: List[str] = []
        self.violation: Optional[Violation] = None
        self.next_op = 0
        self._started = False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        self.start()
        self.run_ops()
        return self.finish()

    def start(self) -> None:
        """Boot the router and open the trace (idempotent)."""
        if self._started:
            return
        self._started = True
        self.router.start()
        self.trace.append(
            f"scenario seed={self.scenario.seed} ops={len(self.scenario.ops)}"
        )

    def run_ops(self, stop_before: Optional[int] = None) -> Optional[Violation]:
        """Execute ops from where we left off up to ``stop_before``.

        ``stop_before`` is an exclusive op index (default: all remaining
        ops).  Stops early on the first invariant violation; returns it.
        """
        self.start()
        ops = self.scenario.ops
        bound = len(ops) if stop_before is None else min(stop_before, len(ops))
        while self.next_op < bound and self.violation is None:
            index = self.next_op
            op = ops[index]
            self.next_op = index + 1
            try:
                self.sim.run_until(max(op.t, self.sim.now))
                status = self._apply(op)
            except Exception as exc:
                # A scenario that crashes the simulated world is itself a
                # finding — report it as the implicit no-crash invariant
                # so it shrinks and replays like any other violation.
                logger.debug("scenario seed=%d crashed at op %d", self.scenario.seed, index, exc_info=True)
                self.violation = Violation("no-crash", repr(exc), index, self.sim.now)
                self.trace.append(f"{index} t={self.sim.now:.6f} {op.kind} crash {self._digest()}")
                break
            self.trace.append(f"{index} t={self.sim.now:.6f} {op.kind} {status} {self._digest()}")
            failure = check_all(self.router, self.ctx)
            if failure is not None and self.violation is None:
                self.violation = Violation(failure.invariant, failure.message, index, self.sim.now)
        return self.violation

    def finish(self) -> RunResult:
        """Run the quiet tail, seal the trace, return the verdict."""
        if self.violation is None:
            self.violation = self._run_tail(self.trace)
        self.trace.append(f"end t={self.sim.now:.6f} {self._digest()}")
        digest = hashlib.sha256("\n".join(self.trace).encode()).hexdigest()
        lineage: List[dict] = []
        if self.violation is not None:
            lineage = [
                ctx.to_dict() for ctx in self.router.tracer.drops(LINEAGE_LIMIT)
            ]
        return RunResult(
            self.scenario,
            self.trace,
            digest,
            self.violation,
            self.skipped,
            self.sim.events_executed,
            lineage,
        )

    def _run_tail(self, trace: List[str]) -> Optional[Violation]:
        """Run out the scenario's quiet tail with periodic checks."""
        last_index = len(self.scenario.ops) - 1
        remaining = self.scenario.duration - self.sim.now
        if remaining <= 0:
            return None
        step = remaining / TAIL_CHECKPOINTS
        for checkpoint in range(TAIL_CHECKPOINTS):
            try:
                self.sim.run_until(self.sim.now + step)
            except Exception as exc:
                logger.debug("scenario seed=%d crashed in tail", self.scenario.seed, exc_info=True)
                trace.append(f"tail{checkpoint} t={self.sim.now:.6f} crash {self._digest()}")
                return Violation("no-crash", repr(exc), last_index, self.sim.now)
            trace.append(f"tail{checkpoint} t={self.sim.now:.6f} {self._digest()}")
            failure = check_all(self.router, self.ctx)
            if failure is not None:
                return Violation(failure.invariant, failure.message, last_index, self.sim.now)
        return None

    def _digest(self) -> str:
        """Order-independent state fingerprint for the event trace."""
        router = self.router
        parts = (
            f"{self.sim.now:.6f}",
            self.sim.events_executed,
            len(router.datapath.table),
            router.datapath.cache_hits + router.datapath.table_hits,
            router.dhcp.discovers,
            router.dhcp.offers,
            router.dhcp.acks,
            router.dhcp.naks,
            len(router.dhcp.leases),
            router.dns_proxy.queries_seen,
            router.dns_proxy.queries_blocked,
            router.router_core.flows_installed,
            router.router_core.flows_blocked,
            router.db.inserts,
            router.policy_engine.enforcements,
            len(router.policy_engine.policies()),
            router.channel.disconnects,
            router.channel.reconnects,
            self._dns_answers,
            self._dns_failures,
            self.skipped,
        )
        return ":".join(str(part) for part in parts)

    # ------------------------------------------------------------------
    # Operation dispatch
    # ------------------------------------------------------------------

    def _apply(self, op: Op) -> str:
        handler = getattr(self, "_op_" + op.kind)
        return handler(op.args)

    def _skip(self, reason: str) -> str:
        self.skipped += 1
        return f"skip:{reason}"

    def _host(self, args):
        return self.ctx.hosts.get(str(args.get("device")))

    def _op_add_device(self, args) -> str:
        name = str(args["name"])
        if name in self.ctx.hosts:
            return self._skip("duplicate-device")
        position = args.get("position") or (5.0, 5.0)
        host = self.router.add_device(
            name,
            str(args["mac"]),
            wireless=bool(args.get("wireless", False)),
            position=(float(position[0]), float(position[1])),
            device_class=str(args.get("device_class", "generic")),
        )
        self.ctx.hosts[name] = host
        return "ok"

    def _op_start_dhcp(self, args) -> str:
        host = self._host(args)
        if host is None:
            return self._skip("no-device")
        host.start_dhcp()
        return "ok"

    def _op_permit(self, args) -> str:
        host = self._host(args)
        if host is None:
            return self._skip("no-device")
        self.router.permit(host)
        return "ok"

    def _op_deny(self, args) -> str:
        host = self._host(args)
        if host is None:
            return self._skip("no-device")
        self.router.deny(host)
        return "ok"

    def _op_release(self, args) -> str:
        host = self._host(args)
        if host is None:
            return self._skip("no-device")
        host.release_dhcp()
        return "ok"

    def _op_dns_lookup(self, args) -> str:
        host = self._host(args)
        if host is None:
            return self._skip("no-device")
        if host.ip is None or host.dns_server is None:
            return self._skip("not-bound")

        def on_answer(address, rcode) -> None:
            if address is not None:
                self._dns_answers += 1
            else:
                self._dns_failures += 1

        host.resolve(str(args["name"]), on_answer)
        return "ok"

    def _op_tcp_flow(self, args) -> str:
        host = self._host(args)
        if host is None:
            return self._skip("no-device")
        if host.ip is None or host.gateway is None:
            return self._skip("not-bound")
        ip = self.router.cloud.lookup(str(args["name"]))
        if ip is None:
            return self._skip("no-such-site")
        nbytes = int(args.get("nbytes", 1024))
        conn = host.tcp_connect(ip, 80)
        conn.on_connect = lambda: conn.send(f"GET {nbytes} /fuzz".encode())

        def close_later() -> None:
            if host.ip is not None:
                conn.close()

        self.sim.schedule(20.0, close_later)
        return "ok"

    def _op_udp_flow(self, args) -> str:
        host = self._host(args)
        if host is None:
            return self._skip("no-device")
        if host.ip is None or host.gateway is None:
            return self._skip("not-bound")
        host.udp_send(self.router.config.upstream_ip, int(args["port"]), b"fuzz-datagram")
        return "ok"

    def _op_ping(self, args) -> str:
        host = self._host(args)
        if host is None:
            return self._skip("no-device")
        if host.ip is None or host.gateway is None:
            return self._skip("not-bound")
        host.ping(self.router.config.upstream_ip, lambda ok, rtt: None)
        return "ok"

    def _op_policy_install(self, args) -> str:
        slot = int(args["slot"])
        response = self.router.control_api.request(
            "POST", "/policies", dict(args["document"])
        )
        if response.status != 201:
            return self._skip("policy-rejected")
        self._slots[slot] = int(response.json()["id"])
        return "ok"

    def _op_policy_remove(self, args) -> str:
        policy_id = self._slots.pop(int(args["slot"]), None)
        if policy_id is None:
            return self._skip("no-policy")
        self.router.control_api.request("DELETE", f"/policies/{policy_id}")
        return "ok"

    def _op_usb_insert(self, args) -> str:
        label = str(args["label"])
        if label in self._keys:
            return self._skip("key-present")
        if str(args.get("key_kind", "unlock")) == "policy":
            key = UsbKey.policy_key(
                str(args["key_id"]), dict(args["document"]), label=label
            )
        else:
            key = UsbKey.unlock_key(str(args["key_id"]), label=label)
        self._keys[label] = key
        self.router.udev.insert(key)
        return "ok"

    def _op_usb_remove(self, args) -> str:
        label = str(args["label"])
        if label not in self._keys:
            return self._skip("no-key")
        del self._keys[label]
        self.router.udev.remove(label)
        return "ok"

    def _op_link_fault(self, args) -> str:
        name = str(args.get("device"))
        if name not in self.ctx.hosts:
            return self._skip("no-device")
        link = self.router.device_link(name)
        link.fault = LinkFault(
            drop=float(args.get("drop", 0.0)),
            duplicate=float(args.get("duplicate", 0.0)),
            reorder=float(args.get("reorder", 0.0)),
            delay=float(args.get("delay", 0.01)),
            until=self.sim.now + float(args.get("duration", 5.0)),
        )
        return "ok"

    def _op_channel_down(self, args) -> str:
        self.router.channel.disconnect()
        self.sim.schedule(float(args.get("duration", 1.0)), self.router.channel.reconnect)
        return "ok"

    def _op_time_warp(self, args) -> str:
        self.sim.run_until(self.sim.now + float(args.get("delta", 10.0)))
        return "ok"

    def _op_hwdb_pressure(self, args) -> str:
        rows = int(args.get("rows", 100))
        router_ip = self.router.config.router_ip
        router_mac = self.router.config.router_mac
        for index in range(rows):
            self.router.db.insert(
                "flows",
                {
                    "src_ip": router_ip,
                    "dst_ip": router_ip,
                    "proto": 17,
                    "src_port": 1024 + (index % 40000),
                    "dst_port": 9,
                    "src_mac": router_mac,
                    "packets": 1,
                    "bytes": 64,
                },
            )
        return "ok"

    def _op_hwdb_crash(self, args) -> str:
        """Simulated power cut: copy the store image, mangle, recover.

        The live router keeps running (the rest of the scenario is
        undisturbed); recovery is exercised on a copy of the on-disk
        state.  Without a torn tail the recovered database must be
        digest-identical to the live rings.  With one it must still
        recover *cleanly* — a torn final write loses whole batches,
        never crashes and never invents rows.
        """
        store = self.router.store
        if store is None:
            return self._skip("no-store")
        store.flush()
        torn_mode = args.get("torn")
        image = tempfile.mkdtemp(prefix="repro-crash-")
        try:
            shutil.rmtree(image)
            shutil.copytree(store.root, image)
            torn = False
            if torn_mode is not None:
                torn = inject_torn_tail(
                    os.path.join(image, WAL_NAME),
                    mode=str(torn_mode),
                    amount=int(args.get("amount", 1)),
                )
            scratch = HomeworkDatabase(SimulatedClock())
            recovered = recover_store(image, scratch)
            try:
                if not torn:
                    live = {
                        name: digest
                        for name, digest in database_digests(self.router.db).items()
                        if name in store.tiers
                    }
                    rebuilt = database_digests(scratch)
                    if rebuilt != live:
                        differing = sorted(
                            name
                            for name in set(live) | set(rebuilt)
                            if live.get(name) != rebuilt.get(name)
                        )
                        self.violation = Violation(
                            "store-recover-digest",
                            f"crash recovery diverged from live rings on "
                            f"tables {differing}",
                            self.next_op - 1,
                            self.sim.now,
                        )
                        return "violation"
                else:
                    # A torn tail may lose flushed batches (or, if the
                    # cut lands exactly on a frame boundary, nothing at
                    # all) — recovery must yield a strict *prefix* of
                    # the live history, never invented rows.
                    for name in sorted(store.tiers):
                        live_total = self.router.db.table(name).total_inserted
                        rebuilt_total = scratch.table(name).total_inserted
                        if rebuilt_total > live_total:
                            self.violation = Violation(
                                "store-recover-digest",
                                f"torn-tail recovery of {name!r} invented "
                                f"rows: {rebuilt_total} > live {live_total}",
                                self.next_op - 1,
                                self.sim.now,
                            )
                            return "violation"
            finally:
                recovered.store.close()
        finally:
            shutil.rmtree(image, ignore_errors=True)
        return "ok:torn" if torn_mode is not None and torn else "ok"

    def _op_corrupt_flows(self, args) -> str:
        self.router.db.insert(
            "flows",
            {
                "src_ip": self.router.config.router_ip,
                "dst_ip": self.router.config.router_ip,
                "proto": 17,
                "src_port": 6666,
                "dst_port": 6666,
                "src_mac": MACAddress(BOGUS_MAC),
                "packets": 1,
                "bytes": 1,
            },
        )
        return "ok"


def run_scenario(scenario: Scenario) -> RunResult:
    """Convenience: build a runner, run it, return the result."""
    return ScenarioRunner(scenario).run()


__all__ = [
    "BOGUS_MAC",
    "LINEAGE_LIMIT",
    "InvariantViolation",
    "RunResult",
    "ScenarioRunner",
    "Violation",
    "run_scenario",
]
