"""repro.check — deterministic simulation testing for the whole router.

FoundationDB-style scenario fuzzing on top of :mod:`repro.sim`: a seeded
generator composes random households (devices joining and leaving, DHCP
churn, DNS lookups, TCP/UDP flows, policies installed and revoked
mid-run, USB-key events) and a fault layer perturbs the world (frames
dropped/duplicated/reordered on links, the OpenFlow channel flapping,
time warps, hwdb ring pressure).  After every scenario operation a
catalogue of router-wide invariants is evaluated; the first violation
stops the run, the failing scenario is greedily shrunk to a minimal
reproduction, and the result is written as a replayable JSON file.

Everything runs in simulated time from one seed: the same seed always
produces the byte-identical event trace, so every failure is a
one-command reproduction (``python -m repro fuzz --replay FILE``).
"""

from .faults import LinkFault
from .invariants import INVARIANTS, InvariantViolation
from .runner import RunResult, ScenarioRunner
from .scenario import Op, Scenario, generate_scenario
from .shrink import shrink_scenario

__all__ = [
    "INVARIANTS",
    "InvariantViolation",
    "LinkFault",
    "Op",
    "RunResult",
    "Scenario",
    "ScenarioRunner",
    "generate_scenario",
    "shrink_scenario",
]
