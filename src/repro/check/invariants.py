"""Router-wide invariant checkers.

Each checker is a pure read of router state — ``fn(router, ctx) ->
Optional[str]`` returning a violation message or None.  The runner
evaluates the full catalogue after every scenario operation; checkers
must therefore be cheap, side-effect-free, and tolerant of the moments
*between* protocol steps (a host may believe it is BOUND for the instant
its renewal is in flight — checkers assert properties that hold at
every operation boundary, not mid-handshake fictions).

``ctx`` (:class:`CheckContext`) carries the ground truth the scenario
runner accumulated — which hosts exist, which MACs are legitimate — plus
the previous observation for monotonicity checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..net.addresses import MACAddress
from ..openflow.flow_table import _overlaps
from ..policy.model import DNS_ALL, DNS_BLOCK, DNS_ONLY
from ..services.dnsproxy.filter import MODE_ALLOW, MODE_DENY
from ..sim.host import DHCP_BOUND

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.router import HomeworkRouter
    from ..sim.host import Host


class InvariantViolation(Exception):
    """One invariant failed: carries the invariant name and evidence."""

    def __init__(self, invariant: str, message: str):
        super().__init__(f"{invariant}: {message}")
        self.invariant = invariant
        self.message = message


class CheckContext:
    """Ground truth + previous observation, owned by the runner."""

    def __init__(self) -> None:
        self.hosts: Dict[str, "Host"] = {}  # scenario device name -> Host
        self.extra_macs: set = set()  # infrastructure MACs (router, cloud...)
        self.prev_counters: Dict[str, float] = {}
        self.prev_now = 0.0
        self.prev_events = 0

    def known_macs(self) -> set:
        macs = {str(host.mac) for host in self.hosts.values()}
        macs.update(str(mac) for mac in self.extra_macs)
        return macs


Checker = Callable[["HomeworkRouter", CheckContext], Optional[str]]


def _column_index(table, name: str) -> int:
    for index, column in enumerate(table.columns):
        if column.name == name:
            return index
    raise KeyError(name)


def check_lease_unique_ip(router: "HomeworkRouter", ctx: CheckContext) -> Optional[str]:
    """No two active leases share an IP; every lease IP is plausible."""
    now = router.sim.now
    seen: Dict[str, str] = {}
    for lease in router.dhcp.leases.all():
        if not lease.active(now):
            continue
        ip = str(lease.ip)
        if ip in seen:
            return f"active leases for {seen[ip]} and {lease.mac} both hold {ip}"
        seen[ip] = str(lease.mac)
        if lease.ip not in router.config.subnet:
            return f"lease {ip} for {lease.mac} outside subnet {router.config.subnet}"
        if lease.ip == router.config.router_ip:
            return f"lease for {lease.mac} collides with the router's own IP {ip}"
    return None


def check_flow_no_overlap(router: "HomeworkRouter", ctx: CheckContext) -> Optional[str]:
    """No two same-priority flow entries can match a common packet."""
    by_priority: Dict[int, List] = {}
    for entry in router.datapath.table.entries():
        by_priority.setdefault(entry.priority, []).append(entry)
    for priority, group in by_priority.items():
        # Pairwise; bounded so a pathological table cannot stall the run.
        group = group[:150]
        for i, a in enumerate(group):
            for b in group[i + 1 :]:
                if a.match.same_pattern(b.match):
                    return f"duplicate entries at priority {priority}: {a.match}"
                if _overlaps(a.match, b.match):
                    return (
                        f"ambiguous overlap at priority {priority}: "
                        f"{a.match} vs {b.match}"
                    )
    return None


def check_nat_bijective(router: "HomeworkRouter", ctx: CheckContext) -> Optional[str]:
    """The NAT's private and external maps are mirror images."""
    nat = router.router_core.nat
    if nat is None:
        return None
    if len(nat._by_private) != len(nat._by_external):
        return (
            f"NAT maps out of sync: {len(nat._by_private)} private keys, "
            f"{len(nat._by_external)} external ports"
        )
    for key, binding in nat._by_private.items():
        mirrored = nat._by_external.get((binding.proto, binding.external_port))
        if mirrored is not binding:
            return f"NAT binding {binding!r} not reachable from its external port"
        if key != (binding.proto, binding.device_ip, binding.device_port):
            return f"NAT binding {binding!r} indexed under wrong private key {key}"
    return None


def check_nat_expiry(router: "HomeworkRouter", ctx: CheckContext) -> Optional[str]:
    """No binding outlives its idle timeout by more than one sweep."""
    nat = router.router_core.nat
    if nat is None:
        return None
    now = router.sim.now
    # The sweeper runs every idle_timeout/2, so worst case a binding is
    # seen 1.5 timeouts after its last use (plus scheduling epsilon).
    bound = nat.idle_timeout * 1.5 + 1.0
    for binding in nat._by_private.values():
        idle = now - binding.last_used
        if idle > bound:
            return f"NAT binding {binding!r} idle for {idle:.1f}s (> {bound:.1f}s)"
    return None


def check_hwdb_leases_agree(router: "HomeworkRouter", ctx: CheckContext) -> Optional[str]:
    """The hwdb Leases stream agrees with the lease database.

    Rows in one table are chronological, so the newest retained row per
    MAC is that device's latest lease event; it must not contradict the
    authoritative lease DB.
    """
    now = router.sim.now
    table = router.db.table("leases")
    mac_col = _column_index(table, "mac")
    ip_col = _column_index(table, "ip")
    action_col = _column_index(table, "action")
    latest: Dict[str, Tuple[str, str]] = {}
    for row in table.rows():
        latest[str(row.values[mac_col])] = (
            str(row.values[action_col]),
            str(row.values[ip_col]),
        )
    for mac, (action, ip) in latest.items():
        lease = router.dhcp.leases.by_mac(mac)
        if action in ("granted", "renewed"):
            if lease is not None and lease.active(now) and str(lease.ip) != ip:
                return (
                    f"hwdb says {mac} last {action} {ip} but lease DB holds "
                    f"{lease.ip}"
                )
        elif action in ("revoked", "released", "expired"):
            if lease is not None and lease.active(now):
                return (
                    f"hwdb says lease for {mac} was {action} but the lease DB "
                    f"still has it active ({lease.ip})"
                )
    return None


def check_hwdb_flows_known(router: "HomeworkRouter", ctx: CheckContext) -> Optional[str]:
    """Every Flows row names a MAC that actually exists in this world."""
    table = router.db.table("flows")
    mac_col = _column_index(table, "src_mac")
    known = ctx.known_macs()
    for row in table.rows():
        mac = row.values[mac_col]
        if mac is None:
            continue
        if str(mac) not in known:
            return f"hwdb Flows row credits unknown device {mac}"
    return None


def check_metrics_monotonic(router: "HomeworkRouter", ctx: CheckContext) -> Optional[str]:
    """Counters and histogram observation counts never go backwards."""
    current: Dict[str, float] = {}
    for metric in router.metrics.metrics():
        if metric.kind == "counter":
            current[metric.name] = metric.value
        elif metric.kind == "histogram":
            current[metric.name + ".count"] = metric.count
    violation = None
    for name, value in current.items():
        previous = ctx.prev_counters.get(name)
        if previous is not None and value < previous and violation is None:
            violation = f"metric {name} went backwards: {previous} -> {value}"
    ctx.prev_counters = current
    return violation


def check_policy_network_agree(router: "HomeworkRouter", ctx: CheckContext) -> Optional[str]:
    """The engine's compiled network verdicts match its applied state."""
    engine = router.policy_engine
    now = router.sim.now
    for host in ctx.hosts.values():
        mac = host.mac
        denied_by_policy = not engine.restrictions_for(mac, now).network_allowed
        applied = mac in engine._policy_denied
        if denied_by_policy != applied:
            return (
                f"policy verdict for {mac}: network_allowed="
                f"{not denied_by_policy} but engine applied denial={applied}"
            )
        if applied and engine.dhcp is not None and engine.dhcp.policy.is_permitted(mac):
            return f"{mac} is policy-denied yet the DHCP store still permits it"
    return None


def check_policy_dns_agree(router: "HomeworkRouter", ctx: CheckContext) -> Optional[str]:
    """Site-filter rules are exactly what the installed policies compile to."""
    engine = router.policy_engine
    site_filter = router.dns_proxy.filter
    now = router.sim.now
    for host in ctx.hosts.values():
        mac = host.mac
        restrictions = engine.restrictions_for(mac, now)
        rule = site_filter._rules.get(MACAddress(mac))
        if restrictions.dns_mode == DNS_ALL:
            if rule is not None:
                return f"{mac} should be unfiltered but has rule {rule!r}"
        elif restrictions.dns_mode == DNS_ONLY:
            if rule is None or rule.mode != MODE_DENY or rule.allowed != set(restrictions.sites):
                return (
                    f"{mac} should be whitelisted to {restrictions.sites} "
                    f"but the filter holds {rule!r}"
                )
        elif restrictions.dns_mode == DNS_BLOCK:
            if rule is None or rule.mode != MODE_ALLOW or rule.blocked != set(restrictions.sites):
                return (
                    f"{mac} should block {restrictions.sites} "
                    f"but the filter holds {rule!r}"
                )
    return None


def check_host_lease_agree(router: "HomeworkRouter", ctx: CheckContext) -> Optional[str]:
    """A bound host's address matches the server's lease for its MAC."""
    ips: Dict[str, str] = {}
    for name, host in ctx.hosts.items():
        if host.dhcp_state != DHCP_BOUND or host.ip is None:
            continue
        ip = str(host.ip)
        if ip in ips:
            return f"hosts {ips[ip]} and {name} both believe they own {ip}"
        ips[ip] = name
        lease = router.dhcp.leases.by_mac(host.mac)
        if lease is None:
            return f"{name} is BOUND to {ip} but the server has no lease for it"
        if str(lease.ip) != ip:
            return f"{name} is BOUND to {ip} but the server leased it {lease.ip}"
    return None


def check_dhcp_client_liveness(router: "HomeworkRouter", ctx: CheckContext) -> Optional[str]:
    """An active DHCP client always has a future timer pending.

    This is the property that catches stuck state machines: whatever
    packets were lost, a client that has not been deliberately stopped
    must have *some* retry/renewal wakeup scheduled, or it is wedged
    forever.
    """
    now = router.sim.now
    for name, host in ctx.hosts.items():
        if not host.dhcp_active or host._dhcp_retry_interval <= 0:
            continue
        if not host.dhcp_timer_pending(now):
            return (
                f"{name} is wedged in {host.dhcp_state} with no pending "
                f"DHCP timer"
            )
    return None


def check_hwdb_ring_bounded(router: "HomeworkRouter", ctx: CheckContext) -> Optional[str]:
    """Stream tables never exceed capacity and their counters reconcile."""
    for name in router.db.tables():
        table = router.db.table(name)
        retained = len(table)
        if retained > table.capacity:
            return f"table {name} holds {retained} rows, capacity {table.capacity}"
        if table.total_inserted < retained:
            return (
                f"table {name} claims {table.total_inserted} inserts but "
                f"retains {retained} rows"
            )
    return None


def check_store_archive_agree(router: "HomeworkRouter", ctx: CheckContext) -> Optional[str]:
    """Ring and archive agree on where every evicted row went.

    Every row that ever fell off a durable table's ring is accounted for
    exactly once: sealed into a segment, pending in the WAL tier,
    discarded by ``clear()``, or expired by compaction.  A mismatch
    means rows were double-archived or silently dropped.
    """
    store = getattr(router, "store", None)
    if store is None:
        return None
    for name, tier in sorted(store.tiers.items()):
        table = router.db.table(name)
        accounted = (
            tier.sealed_rows + len(tier.pending) + tier.discarded + tier.expired_rows
        )
        if accounted != table.overwritten:
            return (
                f"durable tier for {name!r} accounts for {accounted} evicted "
                f"rows (sealed={tier.sealed_rows} pending={len(tier.pending)} "
                f"discarded={tier.discarded} expired={tier.expired_rows}) but "
                f"the ring overwrote {table.overwritten}"
            )
    return None


def check_clock_monotonic(router: "HomeworkRouter", ctx: CheckContext) -> Optional[str]:
    """Simulated time and the event counter only move forward."""
    now = router.sim.now
    events = router.sim.events_executed
    violation = None
    if now < ctx.prev_now:
        violation = f"clock went backwards: {ctx.prev_now} -> {now}"
    elif events < ctx.prev_events:
        violation = f"events_executed went backwards: {ctx.prev_events} -> {events}"
    ctx.prev_now = now
    ctx.prev_events = events
    return violation


#: The catalogue, in evaluation order (cheap and fundamental first).
INVARIANTS: Tuple[Tuple[str, Checker], ...] = (
    ("clock-monotonic", check_clock_monotonic),
    ("lease-unique-ip", check_lease_unique_ip),
    ("host-lease-agree", check_host_lease_agree),
    ("dhcp-client-liveness", check_dhcp_client_liveness),
    ("flow-no-overlap", check_flow_no_overlap),
    ("nat-bijective", check_nat_bijective),
    ("nat-expiry", check_nat_expiry),
    ("policy-network-agree", check_policy_network_agree),
    ("policy-dns-agree", check_policy_dns_agree),
    ("hwdb-leases-agree", check_hwdb_leases_agree),
    ("hwdb-flows-known", check_hwdb_flows_known),
    ("hwdb-ring-bounded", check_hwdb_ring_bounded),
    ("store-archive-agree", check_store_archive_agree),
    ("metrics-monotonic", check_metrics_monotonic),
)


def check_all(router: "HomeworkRouter", ctx: CheckContext) -> Optional[InvariantViolation]:
    """Evaluate the catalogue; the first violation wins (or None)."""
    for name, checker in INVARIANTS:
        message = checker(router, ctx)
        if message is not None:
            return InvariantViolation(name, message)
    return None
