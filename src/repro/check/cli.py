"""``python -m repro fuzz`` — drive the scenario fuzzer from the CLI.

Modes::

    python -m repro fuzz --seed 1 --scenarios 100   # a corpus sweep
    python -m repro fuzz --seed 7 --hash-only       # just the trace hash
    python -m repro fuzz --replay repro.json        # re-run a repro file
    python -m repro fuzz --cql-queries 500          # engine vs legacy CQL diff

A corpus sweep runs ``--scenarios`` seeds starting at ``--seed``; every
invariant violation is shrunk to a minimal scenario and written as a
replayable JSON repro file under ``--repro-dir``.  Exit status is the
number of violating seeds capped at 1 — clean corpus exits 0.

Replay mode loads a repro file and reruns it: exit 1 if the recorded
invariant still fires (the bug reproduces), 0 if the run is now clean
(the bug is fixed — which is what the regression suite asserts).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import Dict, Optional

from .runner import RunResult, ScenarioRunner
from .scenario import Scenario, generate_scenario
from .shrink import shrink_scenario

logger = logging.getLogger("repro.cli.fuzz")
say = logger.info


def write_repro(path: Path, result: RunResult) -> None:
    """Persist a violating run as a standalone replayable file."""
    assert result.violation is not None
    payload: Dict[str, object] = {
        "format": "repro.check/1",
        "scenario": result.scenario.to_dict(),
        "violation": result.violation.to_dict(),
        "trace_hash": result.trace_hash,
        # Flight-recorder lineages of recently dropped/denied packets —
        # the causal chains in play when the invariant fired.
        "lineage": result.lineage,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_repro(path: Path) -> tuple:
    """Load ``(scenario, expected_invariant)`` from a repro file."""
    payload = json.loads(path.read_text())
    scenario = Scenario.from_dict(payload["scenario"])
    violation = payload.get("violation") or {}
    return scenario, violation.get("invariant")


def replay(path: Path) -> int:
    scenario, expected = load_repro(path)
    result = ScenarioRunner(scenario).run()
    if result.violation is None:
        say(
            "replay %s: clean (recorded invariant %s no longer fires) hash=%s",
            path,
            expected,
            result.trace_hash,
        )
        return 0
    say(
        "replay %s: REPRODUCED %s at op %d t=%.3f: %s",
        path,
        result.violation.invariant,
        result.violation.op_index,
        result.violation.t,
        result.violation.message,
    )
    return 1


def fuzz_corpus(
    base_seed: int,
    scenarios: int,
    max_ops: int,
    duration: float,
    repro_dir: Path,
    hash_only: bool = False,
    shrink_budget: Optional[int] = None,
    durable_store: bool = False,
) -> int:
    failures = 0
    for offset in range(scenarios):
        seed = base_seed + offset
        scenario = generate_scenario(
            seed, max_ops=max_ops, duration=duration, durable_store=durable_store
        )
        result = ScenarioRunner(scenario).run()
        if hash_only:
            say("seed=%d hash=%s", seed, result.trace_hash)
            continue
        if result.violation is None:
            say(
                "seed=%d ok ops=%d events=%d hash=%s",
                seed,
                len(scenario.ops),
                result.events,
                result.trace_hash,
            )
            continue
        failures += 1
        violation = result.violation
        say(
            "seed=%d VIOLATION %s at op %d t=%.3f: %s",
            seed,
            violation.invariant,
            violation.op_index,
            violation.t,
            violation.message,
        )
        kwargs = {} if shrink_budget is None else {"max_runs": shrink_budget}
        shrunk = shrink_scenario(scenario, violation.invariant, **kwargs)
        path = repro_dir / f"repro-seed{seed}-{violation.invariant}.json"
        write_repro(path, shrunk.result)
        say(
            "  shrunk %d -> %d ops in %d runs; wrote %s",
            len(scenario.ops),
            len(shrunk.scenario.ops),
            shrunk.runs,
            path,
        )
    if not hash_only:
        say(
            "fuzz: %d/%d scenarios clean",
            scenarios - failures,
            scenarios,
        )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Deterministic scenario fuzzing with invariant checking",
    )
    parser.add_argument("--seed", type=int, default=1, help="first scenario seed")
    parser.add_argument(
        "--scenarios", type=int, default=20, help="how many consecutive seeds to run"
    )
    parser.add_argument(
        "--ops", type=int, default=40, help="operations per generated scenario"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=300.0,
        help="simulated seconds per scenario (plus a quiet tail)",
    )
    parser.add_argument(
        "--repro-dir",
        type=Path,
        default=Path("fuzz-repros"),
        help="where shrunken repro files are written",
    )
    parser.add_argument(
        "--replay", type=Path, default=None, help="re-run one repro file and exit"
    )
    parser.add_argument(
        "--hash-only",
        action="store_true",
        help="print only seed/trace-hash lines (determinism checks)",
    )
    parser.add_argument(
        "--shrink-budget",
        type=int,
        default=None,
        help="max scenario re-runs spent shrinking each failure",
    )
    parser.add_argument(
        "--durable-store",
        action="store_true",
        help="give every household a durable hwdb tier and mix in "
        "hwdb_crash ops (simulated power cuts, torn WAL tails)",
    )
    parser.add_argument(
        "--cql-queries",
        type=int,
        default=None,
        help="run N differential CQL queries (query engine vs legacy "
        "executor) instead of scenario fuzzing",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    from ..core.logging_setup import configure_logging

    configure_logging(verbose=args.verbose)

    if args.cql_queries is not None:
        from .cql_fuzz import fuzz_cql

        return fuzz_cql(args.cql_queries, args.seed, say=say)
    if args.replay is not None:
        return replay(args.replay)
    return fuzz_corpus(
        args.seed,
        args.scenarios,
        args.ops,
        args.duration,
        args.repro_dir,
        hash_only=args.hash_only,
        shrink_budget=args.shrink_budget,
        durable_store=args.durable_store,
    )


if __name__ == "__main__":  # pragma: no cover - direct invocation
    sys.exit(main())
