"""Fault models plugged into the simulation.

The only one with state is :class:`LinkFault`, installed on a
:class:`~repro.sim.link.Link` via its ``fault`` hook: for every frame it
returns a *delivery plan* — a tuple of extra-latency offsets, one per
copy to deliver.  ``()`` drops the frame, ``(0.0,)`` delivers normally,
``(0.0, 0.0)`` duplicates, and ``(delta,)`` holds the frame back past
whatever is queued behind it (reordering).  Randomness comes from the
simulation's own seeded stream, so faults are as replayable as
everything else.

Channel flaps and time warps need no model class — the runner drives
``SecureChannel.disconnect``/``reconnect`` and ``Simulator.run_until``
directly.

:func:`inject_torn_tail` is the storage fault model: it mangles the tail
of a write-ahead log copy the way a power cut mid-``write(2)`` would —
either by chopping bytes off the end (a short final frame) or by
flipping one byte inside the last frame (a CRC mismatch).  Recovery must
treat both as "the tail never happened", never as an error.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import Simulator

NORMAL: Tuple[float, ...] = (0.0,)

#: Torn-tail modes understood by :func:`inject_torn_tail`.
TORN_MODES = ("truncate", "corrupt")


def inject_torn_tail(path: str, mode: str = "truncate", amount: int = 1) -> bool:
    """Simulate a torn final write on a log file, in place.

    ``truncate`` chops ``amount`` bytes off the end; ``corrupt`` XORs the
    byte ``amount`` positions from the end (so the frame's CRC check
    fails).  Returns False without touching the file when it is too
    short to mangle meaningfully — the caller treats that as "no fault
    injected", not an error, because a freshly-rotated WAL may hold
    nothing but its magic header.
    """
    if mode not in TORN_MODES:
        raise ValueError(f"unknown torn-tail mode {mode!r}")
    amount = max(1, int(amount))
    size = os.path.getsize(path)
    # Never touch the 6-byte magic header: a mangled header is a missing
    # database, not a torn write.
    if size - amount <= 6:
        return False
    if mode == "truncate":
        with open(path, "r+b") as handle:
            handle.truncate(size - amount)
        return True
    with open(path, "r+b") as handle:
        handle.seek(size - amount)
        original = handle.read(1)
        handle.seek(size - amount)
        handle.write(bytes((original[0] ^ 0xFF,)))
    return True


class LinkFault:
    """Probabilistic frame mangling on one link, active until a deadline."""

    __slots__ = ("drop", "duplicate", "reorder", "delay", "until", "drops", "duplicates", "reorders")

    def __init__(
        self,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        delay: float = 0.01,
        until: float = float("inf"),
    ):
        self.drop = float(drop)
        self.duplicate = float(duplicate)
        self.reorder = float(reorder)
        self.delay = float(delay)
        self.until = float(until)
        self.drops = 0
        self.duplicates = 0
        self.reorders = 0

    def plan(self, sim: "Simulator", frame: bytes) -> Tuple[float, ...]:
        """The delivery plan for one frame (consumes ``sim.random``)."""
        if sim.now >= self.until:
            return NORMAL
        roll = sim.random.random()
        if roll < self.drop:
            self.drops += 1
            return ()
        if roll < self.drop + self.duplicate:
            self.duplicates += 1
            return (0.0, 0.0)
        if roll < self.drop + self.duplicate + self.reorder:
            self.reorders += 1
            return (self.delay,)
        return NORMAL

    def __repr__(self) -> str:
        return (
            f"LinkFault(drop={self.drop}, duplicate={self.duplicate}, "
            f"reorder={self.reorder}, until={self.until})"
        )
