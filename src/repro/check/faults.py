"""Fault models plugged into the simulation.

The only one with state is :class:`LinkFault`, installed on a
:class:`~repro.sim.link.Link` via its ``fault`` hook: for every frame it
returns a *delivery plan* — a tuple of extra-latency offsets, one per
copy to deliver.  ``()`` drops the frame, ``(0.0,)`` delivers normally,
``(0.0, 0.0)`` duplicates, and ``(delta,)`` holds the frame back past
whatever is queued behind it (reordering).  Randomness comes from the
simulation's own seeded stream, so faults are as replayable as
everything else.

Channel flaps and time warps need no model class — the runner drives
``SecureChannel.disconnect``/``reconnect`` and ``Simulator.run_until``
directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import Simulator

NORMAL: Tuple[float, ...] = (0.0,)


class LinkFault:
    """Probabilistic frame mangling on one link, active until a deadline."""

    __slots__ = ("drop", "duplicate", "reorder", "delay", "until", "drops", "duplicates", "reorders")

    def __init__(
        self,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        delay: float = 0.01,
        until: float = float("inf"),
    ):
        self.drop = float(drop)
        self.duplicate = float(duplicate)
        self.reorder = float(reorder)
        self.delay = float(delay)
        self.until = float(until)
        self.drops = 0
        self.duplicates = 0
        self.reorders = 0

    def plan(self, sim: "Simulator", frame: bytes) -> Tuple[float, ...]:
        """The delivery plan for one frame (consumes ``sim.random``)."""
        if sim.now >= self.until:
            return NORMAL
        roll = sim.random.random()
        if roll < self.drop:
            self.drops += 1
            return ()
        if roll < self.drop + self.duplicate:
            self.duplicates += 1
            return (0.0, 0.0)
        if roll < self.drop + self.duplicate + self.reorder:
            self.reorders += 1
            return (self.delay,)
        return NORMAL

    def __repr__(self) -> str:
        return (
            f"LinkFault(drop={self.drop}, duplicate={self.duplicate}, "
            f"reorder={self.reorder}, until={self.until})"
        )
