"""Differential CQL fuzzing: the query engine vs the legacy executor.

The engine's core promise is *bit-identical* results — any query, any
tier (incremental / plan / legacy fallback), any ring state.  This
module checks that promise the FoundationDB way: a seeded generator
produces random-but-valid CQL SELECTs over two small ring tables, the
rings churn between ticks (small capacities force wrap-around and
overwrite of unconsumed rows), and after every tick the same statement
is executed by both paths at the same clock reading.  Results must
match column-for-column and value-for-value *including Python types*
(``2`` is not ``2.0`` on the wire); errors must match type and message.

The generator is type-aware by construction — ``sum()`` only over
numeric columns, comparisons only between compatible types, ``HAVING``
only over aggregate expressions — so every generated query is one the
legacy executor accepts.  Determinism: one ``random.Random(seed)``
drives everything, so a failing seed is a one-command reproduction.
"""

from __future__ import annotations

import logging
import random
from typing import List, Optional, Tuple

from ..core.clock import SimulatedClock
from ..core.errors import HwdbError
from ..hwdb.cql.executor import ResultSet, execute_select
from ..hwdb.cql.parser import parse
from ..hwdb.database import HomeworkDatabase
from ..query.engine import QueryEngine

logger = logging.getLogger(__name__)

#: Schema the generator draws from: table -> (varchar, integer, boolean)
#: column pools.  Capacities are tiny on purpose — a few dozen inserts
#: wrap the ring, so windows routinely span the wrap point.
SCHEMA = {
    "readings": (("device",), ("value",), ("ok",)),
    "flows": (("device", "protocol"), ("bytes",), ()),
}
CAPACITIES = {"readings": 32, "flows": 48}
DEVICES = ("dev0", "dev1", "dev2", "dev3", "dev4")
PROTOCOLS = ("tcp", "udp", "icmp")

NUMERIC_AGGREGATES = ("sum", "avg", "min", "max", "stddev")
ANY_AGGREGATES = ("count", "first", "last")


class Mismatch:
    """One divergence between the engine and the legacy executor."""

    def __init__(self, query: str, tick: int, detail: str):
        self.query = query
        self.tick = tick
        self.detail = detail

    def __repr__(self) -> str:
        return f"Mismatch(tick={self.tick}, query={self.query!r}, {self.detail})"


def _fingerprint(result: ResultSet) -> Tuple:
    """Type-exact digest: ``2`` and ``2.0`` compare equal, so hash the
    type name alongside the repr."""
    return (
        tuple(result.columns),
        tuple(
            tuple((type(v).__name__, repr(v)) for v in row) for row in result.rows
        ),
        result.executed_at,
    )


class _QueryGen:
    """Type-aware random SELECT builder over :data:`SCHEMA`."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def build(self) -> str:
        rng = self.rng
        if rng.random() < 0.12:
            return self._join_query()
        table = rng.choice(sorted(SCHEMA))
        aggregated = rng.random() < 0.55
        window = self._window()
        where = self._where(table) if rng.random() < 0.6 else ""
        if aggregated:
            return self._aggregate_query(table, window, where)
        return self._plain_query(table, window, where)

    # -- clauses -------------------------------------------------------

    def _window(self) -> str:
        rng = self.rng
        kind = rng.randrange(5)
        if kind == 0:
            return ""
        if kind == 1:
            return " [NOW]"
        if kind == 2:
            return f" [ROWS {rng.randrange(1, 60)}]"
        if kind == 3:
            return f" [RANGE {rng.randrange(1, 50)} SECONDS]"
        return f" [SINCE {rng.uniform(0.0, 120.0):.1f}]"

    def _conjunct(self, table: str, alias: str = "") -> str:
        rng = self.rng
        varchars, integers, booleans = SCHEMA[table]
        prefix = f"{alias}." if alias else ""
        choices = ["numeric", "string", "timestamp"]
        if booleans:
            choices.append("boolean")
        kind = rng.choice(choices)
        if kind == "numeric":
            col = rng.choice(integers)
            op = rng.choice(("<", "<=", ">", ">=", "=", "!="))
            return f"{prefix}{col} {op} {rng.randrange(0, 2000)}"
        if kind == "string":
            col = rng.choice(varchars)
            pool = PROTOCOLS if col == "protocol" else DEVICES
            if rng.random() < 0.3:
                values = ", ".join(f"'{v}'" for v in rng.sample(pool, 2))
                return f"{prefix}{col} IN ({values})"
            return f"{prefix}{col} = '{rng.choice(pool)}'"
        if kind == "boolean":
            col = rng.choice(booleans)
            return rng.choice((f"{prefix}{col}", f"{prefix}{col} = TRUE"))
        op = rng.choice((">=", ">"))
        return f"{prefix}timestamp {op} {rng.uniform(0.0, 100.0):.1f}"

    def _where(self, table: str, alias: str = "") -> str:
        parts = [self._conjunct(table, alias)]
        while self.rng.random() < 0.35 and len(parts) < 3:
            parts.append(self._conjunct(table, alias))
        glue = " OR " if self.rng.random() < 0.2 and len(parts) > 1 else " AND "
        return " WHERE " + glue.join(parts)

    def _aggregate_exprs(self, table: str, count: int) -> List[str]:
        rng = self.rng
        varchars, integers, booleans = SCHEMA[table]
        out = []
        for _ in range(count):
            roll = rng.random()
            if roll < 0.15:
                out.append("count(*)")
            elif roll < 0.7:
                fn = rng.choice(NUMERIC_AGGREGATES)
                out.append(f"{fn}({rng.choice(integers)})")
            else:
                fn = rng.choice(ANY_AGGREGATES)
                col = rng.choice(varchars + integers + booleans)
                out.append(f"{fn}({col})")
        return out

    def _aggregate_query(self, table: str, window: str, where: str) -> str:
        rng = self.rng
        varchars, _integers, _booleans = SCHEMA[table]
        group_cols = []
        if rng.random() < 0.75:
            group_cols = list(
                rng.sample(varchars, rng.randrange(1, len(varchars) + 1))
            )
        aggs = self._aggregate_exprs(table, rng.randrange(1, 4))
        projections = group_cols + [
            f"{expr} AS a{i}" for i, expr in enumerate(aggs)
        ]
        text = (
            f"SELECT {', '.join(projections)} FROM {table}{window}{where}"
        )
        if group_cols:
            text += f" GROUP BY {', '.join(group_cols)}"
        if rng.random() < 0.3:
            _varchars, integers, _ = SCHEMA[table]
            fn = rng.choice(("sum", "count", "avg"))
            text += f" HAVING {fn}({rng.choice(integers)}) > {rng.randrange(0, 3000)}"
        if rng.random() < 0.5:
            key = rng.choice([f"a{i}" for i in range(len(aggs))] + group_cols)
            text += f" ORDER BY {key} {rng.choice(('ASC', 'DESC'))}"
        if rng.random() < 0.4:
            text += f" LIMIT {rng.randrange(1, 8)}"
        return text

    def _plain_query(self, table: str, window: str, where: str) -> str:
        rng = self.rng
        varchars, integers, booleans = SCHEMA[table]
        columns = varchars + integers + booleans
        if rng.random() < 0.3:
            select = "*"
            order_pool: Tuple[str, ...] = columns
        else:
            picked = rng.sample(columns, rng.randrange(1, len(columns) + 1))
            select = ", ".join(picked)
            order_pool = tuple(picked)
        distinct = "DISTINCT " if rng.random() < 0.15 else ""
        text = f"SELECT {distinct}{select} FROM {table}{window}{where}"
        if rng.random() < 0.5:
            text += f" ORDER BY {rng.choice(order_pool)} {rng.choice(('ASC', 'DESC'))}"
        if rng.random() < 0.4:
            text += f" LIMIT {rng.randrange(1, 10)}"
        return text

    def _join_query(self) -> str:
        rng = self.rng
        window = self._window()
        where = self._where("flows", alias="f") if rng.random() < 0.7 else ""
        join_pred = "r.device = f.device"
        where = (
            where + f" AND {join_pred}" if where else f" WHERE {join_pred}"
        )
        text = (
            f"SELECT r.device, sum(f.bytes) AS bytes FROM readings{window} r,"
            f" flows{window} f{where} GROUP BY r.device"
        )
        if rng.random() < 0.5:
            text += " ORDER BY bytes DESC"
        return text


def _build_db(rng: random.Random) -> Tuple[HomeworkDatabase, SimulatedClock]:
    clock = SimulatedClock(start=rng.uniform(0.0, 20.0))
    db = HomeworkDatabase(clock)
    for table, (varchars, integers, booleans) in sorted(SCHEMA.items()):
        columns = (
            [(c, "varchar") for c in varchars]
            + [(c, "integer") for c in integers]
            + [(c, "boolean") for c in booleans]
        )
        db.create_table(table, columns, capacity=CAPACITIES[table])
    return db, clock


def _churn(db: HomeworkDatabase, rng: random.Random) -> None:
    """Insert a random batch into both tables."""
    for _ in range(rng.randrange(0, 14)):
        db.insert(
            "readings",
            {
                "device": rng.choice(DEVICES),
                "value": rng.randrange(0, 500),
                "ok": rng.random() < 0.8,
            },
        )
    for _ in range(rng.randrange(0, 18)):
        db.insert(
            "flows",
            {
                "device": rng.choice(DEVICES),
                "protocol": rng.choice(PROTOCOLS),
                "bytes": rng.randrange(0, 5000),
            },
        )


def _outcome(fn) -> Tuple[str, object]:
    """Run ``fn`` and normalise to (kind, payload) for comparison."""
    try:
        return ("ok", _fingerprint(fn()))
    except HwdbError as exc:
        return ("error", (type(exc).__name__, str(exc)))


def run_differential(
    queries: int = 500, seed: int = 1, ticks: int = 4
) -> List[Mismatch]:
    """Replay ``queries`` generated SELECTs, ``ticks`` churn rounds each.

    Every query is executed repeatedly against a mutating ring — that is
    what makes the *incremental* tier earn its keep: the engine carries
    per-group state between calls while the legacy executor recomputes
    from scratch, and the two must never be told apart.
    """
    rng = random.Random(seed)
    db, clock = _build_db(rng)
    engine = QueryEngine(db)
    gen = _QueryGen(rng)
    mismatches: List[Mismatch] = []
    for index in range(queries):
        text = gen.build()
        try:
            statement = parse(text)
        except HwdbError:  # pragma: no cover - generator bug, not engine
            raise AssertionError(f"generator produced unparseable CQL: {text}")
        for tick in range(ticks):
            _churn(db, rng)
            clock.advance(rng.uniform(0.5, 5.0))
            now = db.now
            expected = _outcome(lambda: execute_select(statement, db._tables, now))
            actual = _outcome(
                lambda: engine.execute_select(statement, db._tables, now)
            )
            if expected != actual:
                mismatches.append(
                    Mismatch(text, tick, f"legacy={expected!r} engine={actual!r}")
                )
                logger.error(
                    "cql-fuzz mismatch (query %d tick %d): %s", index, tick, text
                )
                break
    return mismatches


def fuzz_cql(queries: int, seed: int, say=logger.info) -> int:
    """CLI entry: run the differential sweep, log a summary, exit code."""
    mismatches = run_differential(queries=queries, seed=seed)
    if mismatches:
        for miss in mismatches[:10]:
            say("MISMATCH tick=%d: %s\n  %s", miss.tick, miss.query, miss.detail)
        say("cql-fuzz: %d/%d queries diverged", len(mismatches), queries)
        return 1
    say("cql-fuzz: %d queries, engine == legacy executor on every tick", queries)
    return 0


#: Re-exported for the property-based regression test.
__all__ = ["Mismatch", "run_differential", "fuzz_cql"]
