"""Scenario model and seeded generator.

A scenario is a seed, a router configuration, and a time-ordered list of
operations — the household's "day": devices appear, acquire addresses,
browse, get policies slapped on them, keys come and go, links misbehave.
Scenarios serialise to JSON so a failing one can be checked in verbatim
and replayed forever.

The generator is pure: it draws only from its own ``random.Random`` (the
simulation's randomness is a separate stream owned by the runner), so
``generate_scenario(seed)`` is reproducible regardless of what any
simulation did before or after.
"""

from __future__ import annotations

import json
import random
from typing import Dict, Iterable, List, Optional

#: Hostnames the simulated internet resolves (mirrors the cloud's
#: built-in zone; kept literal so scenarios are self-describing).
ZONE_NAMES = (
    "facebook.com",
    "www.facebook.com",
    "youtube.com",
    "www.youtube.com",
    "bbc.co.uk",
    "www.bbc.co.uk",
    "mail.example.org",
    "www.example.org",
    "homework.example.net",
    "updates.example.io",
    "cdn.example.io",
    "iot.example.io",
)

#: Domain suffixes policies restrict (each matches some ZONE_NAMES entry).
POLICY_SITES = (
    "facebook.com",
    "youtube.com",
    "bbc.co.uk",
    "example.org",
    "example.io",
)

DEVICE_CLASSES = ("laptop", "phone", "tablet", "tv", "iot", "generic")

#: Every operation kind the runner understands.  ``corrupt_flows`` is a
#: test-only chaos op (never generated) that plants a bogus hwdb row so
#: the shrinking/replay machinery can be exercised on a known failure.
OP_KINDS = (
    "add_device",
    "start_dhcp",
    "permit",
    "deny",
    "release",
    "dns_lookup",
    "tcp_flow",
    "udp_flow",
    "ping",
    "policy_install",
    "policy_remove",
    "usb_insert",
    "usb_remove",
    "link_fault",
    "channel_down",
    "time_warp",
    "hwdb_pressure",
    "hwdb_crash",
    "corrupt_flows",
)


class Op:
    """One timed operation: ``(t, kind, args)``."""

    __slots__ = ("t", "kind", "args")

    def __init__(self, t: float, kind: str, args: Optional[Dict[str, object]] = None):
        if kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {kind!r}")
        self.t = round(float(t), 6)
        self.kind = kind
        self.args: Dict[str, object] = dict(args or {})

    def to_dict(self) -> Dict[str, object]:
        return {"t": self.t, "kind": self.kind, "args": self.args}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Op":
        return cls(float(data["t"]), str(data["kind"]), dict(data.get("args") or {}))  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return f"Op(t={self.t}, {self.kind}, {self.args})"


class Scenario:
    """A complete, replayable fuzz input."""

    __slots__ = ("seed", "config", "ops", "duration")

    def __init__(
        self,
        seed: int,
        config: Dict[str, object],
        ops: Iterable[Op],
        duration: float,
    ):
        self.seed = int(seed)
        self.config = dict(config)
        self.ops = sorted(ops, key=lambda op: op.t)
        self.duration = round(float(duration), 6)

    def replace_ops(self, ops: Iterable[Op]) -> "Scenario":
        """A copy with a different op list (same seed/config/duration)."""
        return Scenario(self.seed, self.config, list(ops), self.duration)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "config": self.config,
            "duration": self.duration,
            "ops": [op.to_dict() for op in self.ops],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        return cls(
            seed=int(data["seed"]),  # type: ignore[arg-type]
            config=dict(data.get("config") or {}),  # type: ignore[arg-type]
            ops=[Op.from_dict(op) for op in data.get("ops") or []],  # type: ignore[union-attr]
            duration=float(data.get("duration", 0.0)),  # type: ignore[arg-type]
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        return f"Scenario(seed={self.seed}, ops={len(self.ops)}, duration={self.duration})"


def _device_name(index: int) -> str:
    return f"dev{index:02d}"


def _device_mac(index: int) -> str:
    return f"02:f2:00:00:{(index >> 8) & 0xFF:02x}:{index & 0xFF:02x}"


class _GenState:
    """Mutable generator bookkeeping: what exists so ops stay coherent."""

    def __init__(self) -> None:
        self.devices: List[str] = []  # names, in creation order
        self.macs: Dict[str, str] = {}
        self.started: List[str] = []
        self.next_device = 0
        self.next_policy_slot = 0
        self.active_slots: List[int] = []
        self.gated_key_ids: List[str] = []
        self.next_key = 0
        self.inserted_labels: List[str] = []


def _gen_add_device(rng: random.Random, state: _GenState) -> Dict[str, object]:
    index = state.next_device
    state.next_device += 1
    name = _device_name(index)
    mac = _device_mac(index)
    state.devices.append(name)
    state.macs[name] = mac
    return {
        "name": name,
        "mac": mac,
        "wireless": rng.random() < 0.5,
        "device_class": rng.choice(DEVICE_CLASSES),
        "position": [round(rng.uniform(1.0, 20.0), 2), round(rng.uniform(1.0, 20.0), 2)],
    }


def _gen_policy_doc(rng: random.Random, state: _GenState, slot: int) -> Dict[str, object]:
    targets = rng.sample(state.devices, k=min(len(state.devices), rng.choice((1, 1, 2))))
    network = "deny" if rng.random() < 0.3 else "allow"
    dns_mode = rng.choice(("all", "block", "block", "only"))
    sites = sorted(rng.sample(POLICY_SITES, k=rng.randrange(1, 3))) if dns_mode != "all" else []
    document: Dict[str, object] = {
        "name": f"pol{slot}",
        "targets": [state.macs[t] for t in targets],
        "network": network,
        "dns_mode": dns_mode,
        "sites": sites,
    }
    if rng.random() < 0.35:
        key_id = f"key{len(state.gated_key_ids)}"
        state.gated_key_ids.append(key_id)
        document["usb_gated"] = True
        document["unlock_key_id"] = key_id
    return document


def generate_scenario(
    seed: int,
    max_ops: int = 40,
    duration: float = 300.0,
    lease_time: Optional[float] = None,
    durable_store: bool = False,
) -> Scenario:
    """A random household day, fully determined by ``seed``.

    ``durable_store`` gives the household a durable hwdb tier and mixes
    in ``hwdb_crash`` ops (simulated power cuts with optional torn WAL
    tails).  All store-related randomness comes from a rng *derived*
    from the seed, so the scenario a plain ``generate_scenario(seed)``
    produces is byte-identical whether or not this feature exists.
    """
    rng = random.Random(seed)
    state = _GenState()
    ops: List[Op] = []
    t = 0.5

    lease = lease_time if lease_time is not None else rng.choice((45.0, 90.0, 180.0, 600.0))
    config: Dict[str, object] = {
        "lease_time": lease,
        "nat_enabled": True,
        "nat_idle_timeout": rng.choice((30.0, 60.0, 120.0)),
        "hwdb_buffer_rows": rng.choice((128, 256, 512)),
        "default_permit": False,
    }

    def emit(kind: str, args: Dict[str, object], gap: float) -> None:
        nonlocal t
        ops.append(Op(t, kind, args))
        t = round(t + gap, 6)

    # Bootstrap: a small household joins and (mostly) gets permitted.
    for _ in range(rng.randrange(2, 5)):
        args = _gen_add_device(rng, state)
        name = str(args["name"])
        emit("add_device", args, rng.uniform(0.1, 0.5))
        emit("start_dhcp", {"device": name}, rng.uniform(0.1, 0.5))
        state.started.append(name)
        if rng.random() < 0.85:
            emit("permit", {"device": name}, rng.uniform(0.2, 1.0))

    weighted = (
        ("dns_lookup", 16),
        ("tcp_flow", 11),
        ("udp_flow", 7),
        ("ping", 5),
        ("permit", 7),
        ("deny", 4),
        ("start_dhcp", 4),
        ("release", 3),
        ("add_device", 4),
        ("policy_install", 6),
        ("policy_remove", 4),
        ("usb_insert", 4),
        ("usb_remove", 3),
        ("link_fault", 6),
        ("channel_down", 3),
        ("time_warp", 4),
        ("hwdb_pressure", 3),
    )
    kinds = [kind for kind, weight in weighted for _ in range(weight)]

    while len(ops) < max_ops and t < duration:
        kind = rng.choice(kinds)
        gap = rng.uniform(0.2, duration / max(max_ops, 1))
        if kind == "add_device":
            args = _gen_add_device(rng, state)
            emit("add_device", args, gap)
        elif kind in ("start_dhcp", "permit", "deny", "release", "ping"):
            device = rng.choice(state.devices)
            if kind == "start_dhcp" and device not in state.started:
                state.started.append(device)
            emit(kind, {"device": device}, gap)
        elif kind == "dns_lookup":
            emit(
                kind,
                {"device": rng.choice(state.devices), "name": rng.choice(ZONE_NAMES)},
                gap,
            )
        elif kind == "tcp_flow":
            emit(
                kind,
                {
                    "device": rng.choice(state.devices),
                    "name": rng.choice(ZONE_NAMES),
                    "nbytes": rng.choice((256, 2048, 16384)),
                },
                gap,
            )
        elif kind == "udp_flow":
            emit(
                kind,
                {"device": rng.choice(state.devices), "port": rng.randrange(1024, 40000)},
                gap,
            )
        elif kind == "policy_install":
            slot = state.next_policy_slot
            state.next_policy_slot += 1
            state.active_slots.append(slot)
            emit(kind, {"slot": slot, "document": _gen_policy_doc(rng, state, slot)}, gap)
        elif kind == "policy_remove":
            if not state.active_slots:
                continue
            slot = rng.choice(state.active_slots)
            state.active_slots.remove(slot)
            emit(kind, {"slot": slot}, gap)
        elif kind == "usb_insert":
            label = f"usb{state.next_key}"
            state.next_key += 1
            state.inserted_labels.append(label)
            if state.gated_key_ids and rng.random() < 0.7:
                args = {
                    "label": label,
                    "key_kind": "unlock",
                    "key_id": rng.choice(state.gated_key_ids),
                }
            else:
                slot = state.next_policy_slot
                state.next_policy_slot += 1
                args = {
                    "label": label,
                    "key_kind": "policy",
                    "key_id": f"carry{label}",
                    "document": _gen_policy_doc(rng, state, slot),
                }
            emit(kind, args, gap)
        elif kind == "usb_remove":
            if not state.inserted_labels:
                continue
            label = rng.choice(state.inserted_labels)
            state.inserted_labels.remove(label)
            emit(kind, {"label": label}, gap)
        elif kind == "link_fault":
            emit(
                kind,
                {
                    "device": rng.choice(state.devices),
                    "drop": round(rng.uniform(0.05, 0.6), 3),
                    "duplicate": round(rng.uniform(0.0, 0.2), 3),
                    "reorder": round(rng.uniform(0.0, 0.3), 3),
                    "delay": round(rng.uniform(0.001, 0.05), 4),
                    "duration": round(rng.uniform(2.0, 12.0), 3),
                },
                gap,
            )
        elif kind == "channel_down":
            emit(kind, {"duration": round(rng.uniform(0.5, 4.0), 3)}, gap)
        elif kind == "time_warp":
            emit(kind, {"delta": round(rng.uniform(5.0, float(lease) * 1.5), 3)}, gap)
        elif kind == "hwdb_pressure":
            emit(kind, {"rows": rng.randrange(50, 400)}, gap)

    if durable_store:
        _add_durable_store(seed, config, ops, t)

    return Scenario(seed=seed, config=config, ops=ops, duration=max(duration, t + 30.0))


def _add_durable_store(
    seed: int, config: Dict[str, object], ops: List[Op], end_t: float
) -> None:
    """Graft store config + crash ops onto a generated scenario.

    Uses its own rng (derived from the seed, a disjoint stream from the
    main generator's) so enabling the store never perturbs the base
    scenario other seeds — and regression corpora — depend on.
    """
    store_rng = random.Random((seed << 16) ^ 0x5708E)
    config["durable_store"] = True
    config["store_segment_rows"] = store_rng.choice((32, 64, 128))
    config["store_group_records"] = store_rng.choice((8, 32, 64))
    for _ in range(store_rng.choice((1, 2))):
        args: Dict[str, object] = {}
        if store_rng.random() < 0.5:
            args["torn"] = store_rng.choice(("truncate", "corrupt"))
            args["amount"] = store_rng.randrange(1, 48)
        # Crashes land in the back half of the day, when rings have
        # wrapped and segments exist — the interesting recovery regime.
        ops.append(Op(round(store_rng.uniform(end_t * 0.5, end_t), 6), "hwdb_crash", args))
