"""Greedy scenario shrinking (delta debugging, ddmin-style).

Given a scenario whose run violated an invariant, repeatedly delete
chunks of operations and re-run; a deletion is kept when the *same*
invariant still fires.  Chunk size halves from len/2 down to single
operations, so the result is 1-minimal up to the run budget: removing
any single remaining operation makes the failure disappear (or the
budget ran out — the partial shrink is still a valid reproduction).

Operation times are preserved verbatim — deleting an op leaves a quiet
gap, which the runner handles naturally.  Ops referencing deleted
prerequisites (a device that is never added) degrade to deterministic
skips inside the runner, so every subset is a well-defined scenario.
"""

from __future__ import annotations

import logging
from typing import List, Optional

from .runner import RunResult, ScenarioRunner
from .scenario import Op, Scenario

logger = logging.getLogger(__name__)

DEFAULT_MAX_RUNS = 120


class ShrinkResult:
    """The minimized scenario plus bookkeeping about the search."""

    __slots__ = ("scenario", "result", "runs", "removed")

    def __init__(self, scenario: Scenario, result: RunResult, runs: int, removed: int):
        self.scenario = scenario
        self.result = result
        self.runs = runs
        self.removed = removed


def shrink_scenario(
    scenario: Scenario,
    invariant: str,
    max_runs: int = DEFAULT_MAX_RUNS,
) -> ShrinkResult:
    """Minimize ``scenario`` while ``invariant`` keeps firing."""
    ops: List[Op] = list(scenario.ops)
    original = len(ops)
    runs = 0
    # The last failing result seen; re-established on every kept deletion.
    best: Optional[RunResult] = None

    def fails(candidate: List[Op]) -> Optional[RunResult]:
        nonlocal runs
        if runs >= max_runs:
            return None
        runs += 1
        result = ScenarioRunner(scenario.replace_ops(candidate)).run()
        if result.violation is not None and result.violation.invariant == invariant:
            return result
        return None

    chunk = max(len(ops) // 2, 1)
    while True:
        index = 0
        while index < len(ops):
            candidate = ops[:index] + ops[index + chunk :]
            if not candidate:
                index += chunk
                continue
            result = fails(candidate)
            if result is not None:
                ops = candidate
                best = result
            else:
                index += chunk
        if chunk == 1 or runs >= max_runs:
            break
        chunk = max(chunk // 2, 1)

    if best is None:
        # Nothing could be removed (or budget 0): re-run the original to
        # hand back a result consistent with the returned scenario.
        best = ScenarioRunner(scenario.replace_ops(ops)).run()
    minimized = scenario.replace_ops(ops)
    logger.debug(
        "shrunk scenario seed=%d from %d to %d ops in %d runs",
        scenario.seed,
        original,
        len(ops),
        runs,
    )
    return ShrinkResult(minimized, best, runs, original - len(ops))
