"""repro — reproduction of the Homework home router (SIGCOMM 2011 demo).

"Supporting Novel Home Network Management Interfaces with OpenFlow and
NOX", Mortier et al.  The package rebuilds the paper's entire stack in
pure Python: an OpenFlow datapath and NOX-style controller, the hwdb
stream database with its CQL variant and RPC, the DHCP server / DNS
proxy / control API modules, the policy engine with USB mediation, and
the four demo user interfaces — all running on a deterministic
discrete-event home-network simulator.

Quick start::

    from repro import Simulator, HomeworkRouter

    sim = Simulator(seed=1)
    router = HomeworkRouter(sim)
    laptop = router.add_device("laptop", "02:aa:00:00:00:01", wireless=True)
    router.start()
    laptop.start_dhcp()
    sim.run_for(2)
    router.permit(laptop)
    sim.run_for(10)
    assert laptop.ip is not None
"""

from .core.config import RouterConfig
from .core.errors import ReproError
from .core.events import Event, EventBus
from .core.router import HomeworkRouter
from .obs import MetricsFlusher, MetricsRegistry
from .sim.simulator import Simulator

__version__ = "1.0.0"

__all__ = [
    "HomeworkRouter",
    "RouterConfig",
    "Simulator",
    "EventBus",
    "Event",
    "MetricsFlusher",
    "MetricsRegistry",
    "ReproError",
    "__version__",
]
