"""Central aggregator: per-household results → one fleet report.

Latency merging is lossless because households ship histogram *bucket
counts* (identical bounds everywhere), not precomputed percentiles —
summing buckets across households and reading p50/p95/p99 off the merged
histogram gives exactly what a single process observing every sample
would report.  Since all three latency instruments observe simulated
seconds, the merged percentiles are a pure function of the fleet seed:
byte-identical at any worker count.

The fleet digest is a SHA-256 over the ordered per-household trace
hashes — one line of JSON diff tells two fleet runs apart.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional

from ..obs.metrics import Histogram
from .household import COUNTER_METRICS, LATENCY_METRICS, HouseholdResult

#: Quantiles reported per latency metric (Histogram.percentile takes 0-1).
PERCENTILES = (0.50, 0.95, 0.99)


def merge_histograms(
    results: List[HouseholdResult],
) -> Dict[str, Histogram]:
    """Sum each latency metric's buckets across every household."""
    merged: Dict[str, Histogram] = {}
    for result in results:
        for name, payload in result.histograms.items():
            incoming = Histogram.from_dict(payload)
            if name in merged:
                merged[name].merge(incoming)
            else:
                merged[name] = incoming
    return merged


def fleet_digest(results: List[HouseholdResult]) -> str:
    """SHA-256 over household ids and trace hashes, in id order."""
    hasher = hashlib.sha256()
    for result in sorted(results, key=lambda r: r.household_id):
        hasher.update(f"{result.household_id}:{result.trace_hash}\n".encode())
    return hasher.hexdigest()


def _latency_summary(hist: Histogram) -> Dict[str, Any]:
    return {
        "count": hist.count,
        "mean": hist.mean,
        **{f"p{round(p * 100):d}": hist.percentile(p) for p in PERCENTILES},
    }


def aggregate(
    results: List[HouseholdResult],
    workers: int,
    wall_seconds: float,
    fleet_seed: int,
) -> Dict[str, Any]:
    """Build the fleet-wide report (the BENCH_FLEET ``run`` record)."""
    results = sorted(results, key=lambda r: r.household_id)
    total_events = sum(r.events for r in results)
    total_ops = sum(r.ops for r in results)
    total_sim = sum(r.sim_seconds for r in results)
    violations = [
        {"household_id": r.household_id, "invariant": r.invariant}
        for r in results
        if not r.ok
    ]
    counters: Dict[str, int] = {name: 0 for name in COUNTER_METRICS}
    for result in results:
        for name, value in result.counters.items():
            counters[name] = counters.get(name, 0) + value
    latencies = {
        name: _latency_summary(hist)
        for name, hist in sorted(merge_histograms(results).items())
    }
    for name in LATENCY_METRICS:
        latencies.setdefault(name, None)
    return {
        "fleet_seed": fleet_seed,
        "workers": workers,
        "households": len(results),
        "wall_seconds": wall_seconds,
        "households_per_sec": len(results) / wall_seconds if wall_seconds else 0.0,
        "events_per_sec": total_events / wall_seconds if wall_seconds else 0.0,
        "events": total_events,
        "ops": total_ops,
        "sim_seconds": total_sim,
        "violations": violations,
        "counters": counters,
        "latencies": latencies,
        "fleet_digest": fleet_digest(results),
        "trace_hashes": {
            str(r.household_id): r.trace_hash for r in results
        },
    }


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of one fleet run."""
    lines = [
        f"fleet: {report['households']} households, "
        f"{report['workers']} worker(s), seed {report['fleet_seed']}",
        f"  wall: {report['wall_seconds']:.2f}s  "
        f"({report['households_per_sec']:.1f} households/s, "
        f"{report['events_per_sec']:.0f} events/s)",
        f"  events: {report['events']}  ops: {report['ops']}  "
        f"sim: {report['sim_seconds']:.0f}s",
        f"  digest: {report['fleet_digest'][:16]}...",
    ]
    if report["violations"]:
        lines.append(f"  VIOLATIONS: {report['violations']}")
    for name, summary in report["latencies"].items():
        if summary is None:
            lines.append(f"  {name}: (no samples)")
        else:
            lines.append(
                f"  {name}: n={summary['count']} "
                f"p50={summary['p50'] * 1e3:.2f}ms "
                f"p95={summary['p95'] * 1e3:.2f}ms "
                f"p99={summary['p99'] * 1e3:.2f}ms"
            )
    return "\n".join(lines)


def scaling_summary(runs: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Speedup table across worker counts (baseline = fewest workers)."""
    if len(runs) < 2:
        return None
    ordered = sorted(runs, key=lambda run: run["workers"])
    baseline = ordered[0]
    return {
        "baseline_workers": baseline["workers"],
        "speedups": {
            str(run["workers"]): (
                run["events_per_sec"] / baseline["events_per_sec"]
                if baseline["events_per_sec"]
                else 0.0
            )
            for run in ordered
        },
        "digests_match": len({run["fleet_digest"] for run in ordered}) == 1,
    }


__all__ = [
    "PERCENTILES",
    "aggregate",
    "fleet_digest",
    "merge_histograms",
    "render_report",
    "scaling_summary",
]
