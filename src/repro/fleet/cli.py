"""``python -m repro fleet`` — run many households, report fleet-wide.

Modes::

    python -m repro fleet --households 64 --workers 8
    python -m repro fleet --households 64 --bench-workers 1,2,4,8
    python -m repro fleet --households 32 --checkpoint fleet.ckpt
    python -m repro fleet --households 32 --checkpoint fleet.ckpt --resume
    python -m repro fleet --households 16 --workers 2 --verify-resume

A plain run shards ``--households`` independent scenario-driven homes
across ``--workers`` processes and prints the aggregate report (events/s,
merged latency percentiles, the fleet digest over all trace hashes).

``--bench-workers`` sweeps a comma-separated list of worker counts over
the *same* fleet seed and writes the scaling curve to ``--out``
(BENCH_FLEET.json); the per-run fleet digests must match — the report
says so explicitly.

``--checkpoint`` saves an atomic fleet checkpoint as each household
completes; ``--resume`` loads it and runs only the remainder.
``--verify-resume`` is the self-test the CI smoke job runs: an
uninterrupted fleet, a checkpointed-and-resumed fleet, and a
mid-scenario household checkpoint/restore must all agree on their
hashes, or the command exits nonzero.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..core.clock import WallClock
from ..core.errors import FleetError
from .aggregate import aggregate, fleet_digest, render_report, scaling_summary
from .checkpoint import (
    checkpoint_household,
    fleet_checkpoint_payload,
    load_fleet_checkpoint,
    resume_household,
    save_checkpoint,
)
from .household import HouseholdResult, HouseholdSpec
from .pool import run_fleet

logger = logging.getLogger("repro.cli.fleet")
say = logger.info


def build_specs(
    households: int, fleet_seed: int, max_ops: int, duration: float
) -> List[HouseholdSpec]:
    return [
        HouseholdSpec(
            household_id=household_id,
            fleet_seed=fleet_seed,
            max_ops=max_ops,
            duration=duration,
        )
        for household_id in range(households)
    ]


def fleet_config(args: argparse.Namespace) -> Dict[str, Any]:
    """The identity of a run — a checkpoint from a different one is refused."""
    return {
        "fleet_seed": args.seed,
        "households": args.households,
        "max_ops": args.ops,
        "duration": args.duration,
    }


def run_once(
    specs: List[HouseholdSpec],
    workers: int,
    fleet_seed: int,
    completed: Optional[Dict[int, HouseholdResult]] = None,
    checkpoint_path: Optional[Path] = None,
    config: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One fleet execution → aggregate report (checkpointing optional)."""
    wall = WallClock()
    started = wall.now()
    done: Dict[int, HouseholdResult] = dict(completed or {})
    remaining = [spec for spec in specs if spec.household_id not in done]
    if completed:
        say("resume: %d households done, %d remaining", len(done), len(remaining))

    def on_result(result: HouseholdResult) -> None:
        done[result.household_id] = result
        if checkpoint_path is not None:
            save_checkpoint(
                checkpoint_path, fleet_checkpoint_payload(config or {}, done)
            )

    run_fleet(remaining, workers=workers, on_result=on_result)
    return aggregate(
        sorted(done.values(), key=lambda r: r.household_id),
        workers=workers,
        wall_seconds=wall.now() - started,
        fleet_seed=fleet_seed,
    )


def verify_resume(specs: List[HouseholdSpec], workers: int, args) -> int:
    """End-to-end determinism check: resumed runs must match uninterrupted.

    Three comparisons, all on trace hashes:

    1. fleet level — run half the households, checkpoint, reload, run the
       rest: the combined digest must equal the uninterrupted run's;
    2. household level — checkpoint one household mid-scenario, resume it
       (replay + state verification + remainder): same trace hash;
    3. worker independence — the uninterrupted run at ``--workers`` and
       the pieces above ran at various worker counts already.
    """
    config = fleet_config(args)
    uninterrupted = run_once(specs, workers, args.seed)
    say("uninterrupted digest: %s", uninterrupted["fleet_digest"])

    # 1. Fleet checkpoint/restore through an actual file.
    checkpoint_path = Path(args.checkpoint or "fleet-verify.ckpt")
    half = specs[: len(specs) // 2]
    first_results = run_fleet(half, workers=workers)
    save_checkpoint(
        checkpoint_path,
        fleet_checkpoint_payload(
            config, {r.household_id: r for r in first_results}
        ),
    )
    completed = load_fleet_checkpoint(checkpoint_path, config)
    resumed = run_once(
        specs, workers, args.seed, completed=completed,
        checkpoint_path=checkpoint_path, config=config,
    )
    say("resumed digest:       %s", resumed["fleet_digest"])
    if resumed["fleet_digest"] != uninterrupted["fleet_digest"]:
        say("FAIL: fleet digest diverged after checkpoint+resume")
        return 1

    # 2. Household-level mid-scenario checkpoint: replay, verify, finish.
    probe = specs[0]
    payload = checkpoint_household(probe, stop_before=probe.max_ops // 2)
    household_path = checkpoint_path.with_suffix(".household.json")
    save_checkpoint(household_path, payload)
    restored = resume_household(json.loads(household_path.read_text()))
    expected = uninterrupted["trace_hashes"][str(probe.household_id)]
    if restored.trace_hash != expected:
        say(
            "FAIL: household %d hash %s != %s after mid-scenario resume",
            probe.household_id,
            restored.trace_hash,
            expected,
        )
        return 1
    say(
        "household %d mid-scenario resume ok (hash %s...)",
        probe.household_id,
        restored.trace_hash[:16],
    )
    say("verify-resume: all hashes match")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="Sharded multi-household fleet runs with snapshot/restore",
    )
    parser.add_argument(
        "--households", type=int, default=16, help="independent homes to simulate"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (<=1 runs inline)"
    )
    parser.add_argument("--seed", type=int, default=1, help="fleet seed")
    parser.add_argument(
        "--ops", type=int, default=40, help="operations per household scenario"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=300.0,
        help="simulated seconds per household (plus a quiet tail)",
    )
    parser.add_argument(
        "--bench-workers",
        default=None,
        help="comma-separated worker counts to sweep (writes the scaling curve)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_FLEET.json"),
        help="where the benchmark report is written",
    )
    parser.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        help="fleet checkpoint file, updated after every household",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="load --checkpoint and run only the remaining households",
    )
    parser.add_argument(
        "--verify-resume",
        action="store_true",
        help="self-test: checkpointed+resumed hashes must match uninterrupted",
    )
    parser.add_argument(
        "--hash-only",
        action="store_true",
        help="print only per-household trace hashes and the fleet digest",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    from ..core.logging_setup import configure_logging

    configure_logging(verbose=args.verbose)

    specs = build_specs(args.households, args.seed, args.ops, args.duration)

    if args.verify_resume:
        return verify_resume(specs, args.workers, args)

    if args.hash_only:
        results = run_fleet(specs, workers=args.workers)
        for result in results:
            say("household=%d hash=%s", result.household_id, result.trace_hash)
        say("fleet digest=%s", fleet_digest(results))
        return 0

    if args.bench_workers:
        worker_counts = [int(part) for part in args.bench_workers.split(",")]
        runs = [
            run_once(specs, count, args.seed) for count in worker_counts
        ]
        for run in runs:
            say("%s", render_report(run))
        report = {
            "experiment": "fleet scaling",
            # Speedup is bounded by the cores actually available; record
            # them so a flat curve on a 1-core box reads as what it is.
            "cpu_count": os.cpu_count(),
            "fleet_seed": args.seed,
            "households": args.households,
            "max_ops": args.ops,
            "duration": args.duration,
            "runs": runs,
            "scaling": scaling_summary(runs),
        }
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        say("wrote %s", args.out)
        scaling = report["scaling"]
        if scaling is not None and not scaling["digests_match"]:
            say("FAIL: fleet digests differ across worker counts")
            return 1
        return 0

    config = fleet_config(args)
    completed: Dict[int, HouseholdResult] = {}
    if args.resume:
        if args.checkpoint is None or not args.checkpoint.exists():
            raise FleetError("--resume needs an existing --checkpoint file")
        completed = load_fleet_checkpoint(args.checkpoint, config)
    report = run_once(
        specs,
        args.workers,
        args.seed,
        completed=completed,
        checkpoint_path=args.checkpoint,
        config=config,
    )
    say("%s", render_report(report))
    if report["violations"]:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - direct invocation
    sys.exit(main())
