"""Versioned snapshot/restore for fleet runs.

Two checkpoint kinds share the ``repro.fleet/1`` format tag:

**Household checkpoints** freeze one household mid-day: the scenario,
how many ops have executed, the trace so far, and the serialized router
state — the full hwdb (via :mod:`repro.hwdb.snapshot`), the DHCP lease
table, the NAT bindings and the policy store.  Restore replays the
executed prefix deterministically (same seed ⇒ same world) and then
*verifies* the rebuilt world against every serialized surface before
continuing; any divergence — a nondeterminism bug, a version skew — is a
:class:`~repro.core.errors.FleetError`, never a silently wrong resume.
The hwdb snapshot is additionally restored into a fresh database and
digest-compared, so the restore path itself is exercised on every
resume.

**Fleet checkpoints** record which households of a run have completed
(with their full results), so a long sweep that dies resumes by running
only the remainder.  Writes are atomic (tmp + rename): a checkpoint file
is either the old state or the new one, never a torn write.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict

from ..core.clock import SimulatedClock, WallClock
from ..core.errors import FleetError
from ..hwdb.database import HomeworkDatabase
from ..hwdb.snapshot import database_digests, restore_database, snapshot_database
from ..check.runner import ScenarioRunner
from ..check.scenario import Scenario
from .household import HouseholdResult, HouseholdSpec, collect_result

#: On-disk format tag shared by both checkpoint kinds; bump on any
#: incompatible change to either payload.
FORMAT = "repro.fleet/1"


# ----------------------------------------------------------------------
# Household checkpoints
# ----------------------------------------------------------------------


def snapshot_runner_state(runner: ScenarioRunner) -> Dict[str, Any]:
    """Serialize every router state surface a resume must reproduce."""
    router = runner.router
    nat = router.router_core.nat
    store = getattr(router, "store", None)
    return {
        "hwdb": snapshot_database(
            router.db, exclude_tables=("metrics",), store=store
        ),
        "hwdb_digests": database_digests(router.db),
        # Segment ids + content digests, never payloads: a replayed
        # household rebuilds the identical archive, and the digests
        # prove it without reading a segment back.
        "store": None if store is None else store.manifest_summary(),
        "leases": router.dhcp.leases.to_snapshot(),
        "nat": None if nat is None else nat.to_snapshot(),
        "policies": router.policy_engine.to_snapshot(),
    }


def checkpoint_household(spec: HouseholdSpec, stop_before: int) -> Dict[str, Any]:
    """Run a household up to op ``stop_before`` and freeze it.

    Returns the JSON-able checkpoint payload.  The partially-run world
    is abandoned — a long-running caller that wants to checkpoint *and*
    keep going simply continues using its own runner.
    """
    runner = ScenarioRunner(spec.scenario())
    runner.start()
    runner.run_ops(stop_before=stop_before)
    return {
        "format": FORMAT,
        "kind": "household",
        "spec": spec.to_dict(),
        "scenario": runner.scenario.to_dict(),
        "ops_done": runner.next_op,
        "sim_now": runner.sim.now,
        "trace": list(runner.trace),
        "violation": None
        if runner.violation is None
        else runner.violation.to_dict(),
        "state": snapshot_runner_state(runner),
    }


def _require_format(payload: Dict[str, Any], kind: str) -> None:
    if payload.get("format") != FORMAT:
        raise FleetError(
            f"unsupported checkpoint format {payload.get('format')!r} "
            f"(expected {FORMAT!r})"
        )
    if payload.get("kind") != kind:
        raise FleetError(
            f"expected a {kind!r} checkpoint, got {payload.get('kind')!r}"
        )


def _strip_policy_ids(policies_snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Policy ids come from a process-global counter; compare without them."""
    stripped = dict(policies_snapshot)
    stripped["policies"] = [
        {key: value for key, value in document.items() if key != "id"}
        for document in policies_snapshot.get("policies", [])
    ]
    return stripped


def _verify_restored(runner: ScenarioRunner, payload: Dict[str, Any]) -> None:
    """Every serialized surface must match the replayed world exactly."""
    state = payload["state"]
    if runner.trace != payload["trace"]:
        raise FleetError(
            f"resume diverged: replayed trace differs from checkpoint "
            f"(household seed {runner.scenario.seed})"
        )
    if runner.sim.now != payload["sim_now"]:
        raise FleetError(
            f"resume diverged: sim time {runner.sim.now} != checkpointed "
            f"{payload['sim_now']}"
        )
    live_digests = database_digests(runner.router.db)
    if live_digests != state["hwdb_digests"]:
        raise FleetError("resume diverged: hwdb table digests differ")
    live_store = getattr(runner.router, "store", None)
    live_summary = None if live_store is None else live_store.manifest_summary()
    if live_summary != state.get("store"):
        raise FleetError("resume diverged: durable store manifest differs")
    # Exercise the snapshot→restore path itself: the serialized database
    # must rebuild to the same digests the live one shows.
    scratch = HomeworkDatabase(SimulatedClock())
    restore_database(scratch, state["hwdb"])
    if database_digests(scratch) != state["hwdb_digests"]:
        raise FleetError("hwdb snapshot does not restore to its own digests")
    if runner.router.dhcp.leases.to_snapshot() != state["leases"]:
        raise FleetError("resume diverged: DHCP lease state differs")
    nat = runner.router.router_core.nat
    live_nat = None if nat is None else nat.to_snapshot()
    if live_nat != state["nat"]:
        raise FleetError("resume diverged: NAT binding state differs")
    if _strip_policy_ids(runner.router.policy_engine.to_snapshot()) != _strip_policy_ids(
        state["policies"]
    ):
        raise FleetError("resume diverged: policy store differs")


def resume_household(payload: Dict[str, Any]) -> HouseholdResult:
    """Bring a checkpointed household back and run it to completion.

    The executed prefix is replayed (deterministically, from the
    scenario seed), verified against the checkpoint's serialized state,
    and the remaining ops plus the quiet tail run as if the household
    had never stopped — the final trace hash is identical to an
    uninterrupted run's.
    """
    _require_format(payload, "household")
    wall = WallClock()
    started = wall.now()
    spec = HouseholdSpec.from_dict(payload["spec"])
    scenario = Scenario.from_dict(payload["scenario"])
    runner = ScenarioRunner(scenario)
    runner.start()
    runner.run_ops(stop_before=int(payload["ops_done"]))
    _verify_restored(runner, payload)
    runner.run_ops()
    run = runner.finish()
    return collect_result(spec, runner, run, wall.now() - started)


# ----------------------------------------------------------------------
# Fleet checkpoints
# ----------------------------------------------------------------------


def fleet_checkpoint_payload(
    fleet_config: Dict[str, Any], completed: Dict[int, HouseholdResult]
) -> Dict[str, Any]:
    return {
        "format": FORMAT,
        "kind": "fleet",
        "fleet": dict(fleet_config),
        "completed": {
            str(household_id): result.to_dict()
            for household_id, result in sorted(completed.items())
        },
    }


def save_checkpoint(path: Path, payload: Dict[str, Any]) -> None:
    """Atomic write: the file is never observed half-written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def load_checkpoint(path: Path) -> Dict[str, Any]:
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != FORMAT:
        raise FleetError(
            f"unsupported checkpoint format {payload.get('format')!r} in {path}"
        )
    return payload


def load_fleet_checkpoint(
    path: Path, expected_config: Dict[str, Any]
) -> Dict[int, HouseholdResult]:
    """Load completed results, refusing a checkpoint from a different run."""
    payload = load_checkpoint(path)
    _require_format(payload, "fleet")
    if payload["fleet"] != expected_config:
        raise FleetError(
            f"checkpoint {path} belongs to a different fleet run: "
            f"{payload['fleet']} != {expected_config}"
        )
    return {
        int(household_id): HouseholdResult.from_dict(result)
        for household_id, result in payload["completed"].items()
    }


__all__ = [
    "FORMAT",
    "checkpoint_household",
    "fleet_checkpoint_payload",
    "load_checkpoint",
    "load_fleet_checkpoint",
    "resume_household",
    "save_checkpoint",
    "snapshot_runner_state",
]
