"""Deterministic per-household seed derivation.

Each household in a fleet run is an independent world; its scenario seed
is derived from the fleet seed and the household id by hashing, never by
arithmetic (``fleet_seed + household_id`` would make household *i* of
fleet *s* collide with household *i-1* of fleet *s+1*, silently running
identical days in overlapping sweeps).

SHA-256 keyed with a namespace string makes the derivation stable across
Python versions and ``PYTHONHASHSEED`` — the same contract the fuzzer's
trace hashes honour — and versioned: a change to the derivation bumps
the namespace so old checkpoints fail loudly instead of replaying wrong.
"""

from __future__ import annotations

import hashlib

#: Derivation namespace; bump when the derivation itself changes.
SEED_NAMESPACE = "repro.fleet/1"

#: Seeds are kept in the non-negative 63-bit range so they survive any
#: JSON round-trip and ``random.Random`` seeding identically everywhere.
_SEED_MASK = 0x7FFF_FFFF_FFFF_FFFF


def household_seed(fleet_seed: int, household_id: int) -> int:
    """The scenario seed for one household of one fleet run."""
    material = f"{SEED_NAMESPACE}:{int(fleet_seed)}:{int(household_id)}"
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK


__all__ = ["SEED_NAMESPACE", "household_seed"]
