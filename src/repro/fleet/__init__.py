"""repro.fleet — sharded multi-household orchestration.

Runs N independent simulated homes (one router, one scenario, one
simulator each) across a shared-nothing worker pool, merges their
metrics into a fleet-wide report, and checkpoints long runs to disk in a
versioned format that resumes with identical trace hashes.

Entry point: ``python -m repro fleet`` (see :mod:`repro.fleet.cli`).
"""

from .aggregate import aggregate, fleet_digest, merge_histograms, render_report
from .checkpoint import (
    checkpoint_household,
    load_checkpoint,
    resume_household,
    save_checkpoint,
)
from .household import HouseholdResult, HouseholdSpec, run_household
from .pool import run_fleet
from .seeds import household_seed

__all__ = [
    "HouseholdResult",
    "HouseholdSpec",
    "aggregate",
    "checkpoint_household",
    "fleet_digest",
    "household_seed",
    "load_checkpoint",
    "merge_histograms",
    "render_report",
    "resume_household",
    "run_fleet",
    "run_household",
    "save_checkpoint",
]
