"""Shared-nothing worker pool for fleet runs.

Households are independent worlds, so parallelism is embarrassing: each
worker process rebuilds a household from its picklable spec, runs it to
completion, and ships back a JSON-able result dict.  Nothing is shared —
no sockets, no locks, no common simulator — which is exactly why the
per-household trace hashes cannot depend on the worker count or on
completion order.

``fork`` is preferred where available (workers inherit the imported
modules; startup is milliseconds); ``spawn`` is the fallback elsewhere.
``workers <= 1`` bypasses multiprocessing entirely and runs inline,
which keeps single-worker benchmarks honest (no pool overhead) and makes
debugging a misbehaving household trivial.
"""

from __future__ import annotations

import logging
import multiprocessing
from typing import Any, Callable, Dict, Iterable, List, Optional

from .household import HouseholdResult, HouseholdSpec, run_household

log = logging.getLogger("repro.fleet.pool")

#: Specs handed to each worker per pickup.  1 maximises load balancing;
#: households are coarse enough (tens of ms) that the IPC cost is noise.
CHUNK_SIZE = 1


def _run_household_task(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: dict in, dict out (both picklable)."""
    spec = HouseholdSpec.from_dict(spec_dict)
    return run_household(spec).to_dict()


def _pool_context() -> multiprocessing.context.BaseContext:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context("spawn")


def run_fleet(
    specs: Iterable[HouseholdSpec],
    workers: int = 1,
    on_result: Optional[Callable[[HouseholdResult], None]] = None,
) -> List[HouseholdResult]:
    """Run every household and return results sorted by household id.

    ``on_result`` fires as each household completes (in completion
    order, in the parent process) — the hook the CLI uses to write
    incremental fleet checkpoints.
    """
    pending = list(specs)
    results: List[HouseholdResult] = []

    def _accept(result_dict: Dict[str, Any]) -> None:
        result = HouseholdResult.from_dict(result_dict)
        results.append(result)
        if on_result is not None:
            on_result(result)

    if workers <= 1 or len(pending) <= 1:
        for spec in pending:
            _accept(_run_household_task(spec.to_dict()))
    else:
        context = _pool_context()
        processes = min(workers, len(pending))
        log.info(
            "fleet pool: %d households across %d workers (%s)",
            len(pending),
            processes,
            context.get_start_method(),
        )
        with context.Pool(processes=processes) as pool:
            spec_dicts = [spec.to_dict() for spec in pending]
            for result_dict in pool.imap_unordered(
                _run_household_task, spec_dicts, chunksize=CHUNK_SIZE
            ):
                _accept(result_dict)
    results.sort(key=lambda result: result.household_id)
    return results


__all__ = ["CHUNK_SIZE", "run_fleet"]
