"""One household of a fleet run: spec in, result out.

A household is one scenario (from the ``repro.check`` generator, seeded
via :func:`repro.fleet.seeds.household_seed`) executed against its own
fresh router on its own simulator — shared-nothing, so households run in
any process in any order with identical traces.

The result is a plain JSON-able record: the trace hash (the determinism
contract), event/op counts, the router's latency histograms in their
*mergeable* wire form (bucket counts, not percentiles — the aggregator
sums them losslessly) and per-table hwdb digests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.clock import WallClock
from ..hwdb.snapshot import database_digests
from ..obs.metrics import Histogram
from ..check.runner import RunResult, ScenarioRunner
from ..check.scenario import Scenario, generate_scenario
from .seeds import household_seed

#: Latency instruments shipped per household and merged fleet-wide.
#: All three observe *simulated* seconds, so merged percentiles are
#: deterministic for a given fleet seed regardless of worker count.
LATENCY_METRICS = (
    "openflow.flow_setup_sim_seconds",
    "dhcp.discover_to_ack_sim_seconds",
    "dnsproxy.upstream_sim_seconds",
)

#: Counters summed into the fleet report.
COUNTER_METRICS = (
    "hwdb.insert_total",
    "openflow.packet_in_total",
    "openflow.flow_mod_total",
    "dhcp.ack_total",
    "dnsproxy.query_total",
    "query.incremental_tick_total",
    "query.full_tick_total",
    "query.fallback_total",
)


class HouseholdSpec:
    """Everything needed to (re)run one household, JSON-able."""

    __slots__ = ("household_id", "fleet_seed", "max_ops", "duration")

    def __init__(
        self,
        household_id: int,
        fleet_seed: int,
        max_ops: int = 40,
        duration: float = 300.0,
    ):
        self.household_id = int(household_id)
        self.fleet_seed = int(fleet_seed)
        self.max_ops = int(max_ops)
        self.duration = float(duration)

    @property
    def seed(self) -> int:
        return household_seed(self.fleet_seed, self.household_id)

    def scenario(self) -> Scenario:
        return generate_scenario(
            self.seed, max_ops=self.max_ops, duration=self.duration
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "household_id": self.household_id,
            "fleet_seed": self.fleet_seed,
            "max_ops": self.max_ops,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HouseholdSpec":
        return cls(
            household_id=int(data["household_id"]),
            fleet_seed=int(data["fleet_seed"]),
            max_ops=int(data.get("max_ops", 40)),
            duration=float(data.get("duration", 300.0)),
        )

    def __repr__(self) -> str:
        return (
            f"HouseholdSpec(id={self.household_id}, fleet_seed={self.fleet_seed}, "
            f"seed={self.seed})"
        )


class HouseholdResult:
    """What one household contributes to the fleet report (JSON-able)."""

    __slots__ = (
        "household_id",
        "seed",
        "trace_hash",
        "invariant",
        "events",
        "ops",
        "skipped",
        "sim_seconds",
        "wall_seconds",
        "counters",
        "histograms",
        "hwdb_digests",
    )

    def __init__(
        self,
        household_id: int,
        seed: int,
        trace_hash: str,
        invariant: Optional[str],
        events: int,
        ops: int,
        skipped: int,
        sim_seconds: float,
        wall_seconds: float,
        counters: Dict[str, int],
        histograms: Dict[str, Dict[str, Any]],
        hwdb_digests: Dict[str, str],
    ):
        self.household_id = household_id
        self.seed = seed
        self.trace_hash = trace_hash
        self.invariant = invariant
        self.events = events
        self.ops = ops
        self.skipped = skipped
        self.sim_seconds = sim_seconds
        self.wall_seconds = wall_seconds
        self.counters = counters
        self.histograms = histograms
        self.hwdb_digests = hwdb_digests

    @property
    def ok(self) -> bool:
        return self.invariant is None

    def to_dict(self) -> Dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HouseholdResult":
        return cls(
            household_id=int(data["household_id"]),
            seed=int(data["seed"]),
            trace_hash=str(data["trace_hash"]),
            invariant=data.get("invariant"),
            events=int(data["events"]),
            ops=int(data["ops"]),
            skipped=int(data["skipped"]),
            sim_seconds=float(data["sim_seconds"]),
            wall_seconds=float(data["wall_seconds"]),
            counters={str(k): int(v) for k, v in data["counters"].items()},
            histograms=dict(data["histograms"]),
            hwdb_digests={str(k): str(v) for k, v in data["hwdb_digests"].items()},
        )

    def __repr__(self) -> str:
        verdict = "ok" if self.ok else f"VIOLATION:{self.invariant}"
        return (
            f"HouseholdResult(id={self.household_id}, {verdict}, "
            f"events={self.events}, hash={self.trace_hash[:12]}...)"
        )


def collect_result(
    spec: HouseholdSpec, runner: ScenarioRunner, run: RunResult, wall_seconds: float
) -> HouseholdResult:
    """Fold a finished runner into the fleet's wire-format record."""
    registry = runner.router.metrics
    histograms: Dict[str, Dict[str, Any]] = {}
    for name in LATENCY_METRICS:
        metric = registry.get(name)
        if isinstance(metric, Histogram):
            histograms[name] = metric.to_dict()
    counters: Dict[str, int] = {}
    for name in COUNTER_METRICS:
        metric = registry.get(name)
        if metric is not None:
            counters[name] = int(metric.value)
    return HouseholdResult(
        household_id=spec.household_id,
        seed=spec.seed,
        trace_hash=run.trace_hash,
        invariant=None if run.violation is None else run.violation.invariant,
        events=run.events,
        ops=len(run.scenario.ops),
        skipped=run.skipped,
        sim_seconds=runner.sim.now,
        wall_seconds=wall_seconds,
        counters=counters,
        histograms=histograms,
        # The metrics table is excluded: its rows carry wall-clock
        # latencies, which can never reproduce bit-identically.
        hwdb_digests=database_digests(runner.router.db),
    )


def run_household(spec: HouseholdSpec) -> HouseholdResult:
    """Execute one household start to finish and package the result."""
    wall = WallClock()
    started = wall.now()
    runner = ScenarioRunner(spec.scenario())
    run = runner.run()
    return collect_result(spec, runner, run, wall.now() - started)


__all__ = [
    "COUNTER_METRICS",
    "LATENCY_METRICS",
    "HouseholdResult",
    "HouseholdSpec",
    "collect_result",
    "run_household",
]
