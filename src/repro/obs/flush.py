"""Dogfooded metric export: snapshots published into hwdb.

The paper's thesis is that visibility flows through hwdb — UIs subscribe
to ``Flows``/``Links``/``Leases`` and render whatever arrives.  The
router's own telemetry takes the same road: a periodic flusher writes
each registry snapshot into the ``Metrics`` stream table, so operational
counters and latency percentiles are queryable over CQL and
subscribable over the UDP RPC exactly like measurement data::

    QUERY SELECT name, field, value FROM Metrics [RANGE 10 SECONDS]
    SUBSCRIBE 5 SELECT * FROM Metrics [RANGE 5 SECONDS]

Being a ring buffer, the table bounds memory no matter how long the
router runs; old snapshots fall off the end.
"""

from __future__ import annotations

import logging
from typing import Callable, List, Optional, TYPE_CHECKING

from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hwdb.database import HomeworkDatabase
    from ..sim.simulator import Simulator

logger = logging.getLogger(__name__)

#: hwdb table the flusher publishes into (created by the standard schema).
METRICS_TABLE = "metrics"


class MetricsFlusher:
    """Periodically publishes registry snapshots into hwdb ``Metrics``.

    ``collectors`` are callables run just before each snapshot; they let
    pull-style sources (per-port byte totals, datapath cache occupancy)
    refresh their gauges without paying anything on the hot path.
    """

    def __init__(
        self,
        db: "HomeworkDatabase",
        registry: MetricsRegistry,
        interval: float = 5.0,
        table: str = METRICS_TABLE,
    ):
        if interval <= 0:
            raise ValueError(f"flush interval must be positive: {interval}")
        self.db = db
        self.registry = registry
        self.interval = interval
        self.table = table
        self.flushes = 0
        self.rows_published = 0
        self._collectors: List[Callable[[], None]] = []
        self._timer = None

    def add_collector(self, collector: Callable[[], None]) -> None:
        self._collectors.append(collector)

    def start(self, sim: "Simulator") -> None:
        if self._timer is not None:
            self._timer.cancel()
        self._timer = sim.schedule_periodic(self.interval, self.flush)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def flush(self) -> int:
        """Publish one snapshot; returns the number of rows written."""
        for collector in self._collectors:
            try:
                collector()
            except Exception:  # noqa: BLE001 - a bad collector must not stop export
                logger.exception("metrics collector failed")
                self.registry.counter("obs.collector_errors").inc()
        if not self.db.has_table(self.table):
            return 0
        rows = self.registry.snapshot()
        for name, kind, field, value in rows:
            self.db.insert(
                self.table,
                {"name": name, "kind": kind, "field": field, "value": value},
            )
        self.flushes += 1
        self.rows_published += len(rows)
        return len(rows)

    def __repr__(self) -> str:
        return (
            f"MetricsFlusher(interval={self.interval}, flushes={self.flushes}, "
            f"rows={self.rows_published})"
        )
