"""The metrics registry: counters, gauges and fixed-bucket histograms.

Every subsystem of the router reports through one
:class:`MetricsRegistry` (the router owns it; standalone objects may
also share the module-level :data:`REGISTRY`).  The design constraints
come from where the instruments sit:

* the hwdb append path and the datapath receive path run per-packet, so
  a counter increment is one attribute add and a histogram observation
  is one ``bisect`` into precomputed bucket bounds — no locks, no
  allocation (the whole router is a single-threaded event loop);
* latency histograms use **fixed buckets** so a snapshot is a handful of
  numbers regardless of how many events were observed, which is what
  lets the flusher publish them into hwdb's ring-buffer tables.

Instruments are unit-agnostic: hwdb and controller timings observe
wall-clock seconds (``time.perf_counter``), protocol round-trips
(DHCP DISCOVER→ACK, DNS upstream) observe *simulated* seconds.  The
metric name records which (``*_seconds`` wall time, ``*_sim_seconds``
simulated time).
"""

from __future__ import annotations

import functools
import time
from bisect import bisect_right
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "REGISTRY",
    "DEFAULT_BUCKETS",
]

#: Default latency buckets: 1µs .. 10s in a 1-2.5-5 ladder.  The upper
#: bound of the last finite bucket doubles as the +Inf bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def fields(self) -> List[Tuple[str, float]]:
        return [("value", float(self.value))]

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that goes up and down (queue depth, port byte total...)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def fields(self) -> List[Tuple[str, float]]:
        return [("value", float(self.value))]

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram of observations (latencies, sizes).

    Observation is O(log buckets) via bisect into the precomputed bound
    list; a snapshot exposes count/sum/min/max and bucket-interpolated
    percentiles, so exporting never walks raw samples (none are kept).
    """

    kind = "histogram"
    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets or DEFAULT_BUCKETS))
        # One overflow slot past the last bound (the +Inf bucket).
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-quantile (0 < p <= 1) from the bucket counts.

        Returns the upper bound of the bucket holding the p-th
        observation, clamped to the observed max — the standard
        fixed-bucket estimate (pessimistic by at most one bucket width).
        """
        if self.count == 0:
            return 0.0
        rank = p * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            cumulative += n
            if cumulative >= rank:
                bound = self.bounds[i] if i < len(self.bounds) else self.max
                return min(bound, self.max)
        return self.max

    def fields(self) -> List[Tuple[str, float]]:
        if self.count == 0:
            return [("count", 0.0), ("sum", 0.0)]
        return [
            ("count", float(self.count)),
            ("sum", self.sum),
            ("min", self.min),
            ("max", self.max),
            ("p50", self.percentile(0.50)),
            ("p95", self.percentile(0.95)),
            ("p99", self.percentile(0.99)),
        ]

    def to_dict(self) -> Dict[str, Any]:
        """Mergeable wire form: bounds + bucket counts + running stats.

        Unlike :meth:`fields` (which collapses to percentiles), this
        keeps the raw bucket counts, so histograms from many processes
        can be summed losslessly — the fleet aggregator's merge path.
        """
        return {
            "name": self.name,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        hist = cls(str(data["name"]), buckets=data["bounds"])
        hist.bucket_counts = [int(n) for n in data["bucket_counts"]]
        hist.count = int(data["count"])
        hist.sum = float(data["sum"])
        hist.min = float("inf") if data.get("min") is None else float(data["min"])
        hist.max = float("-inf") if data.get("max") is None else float(data["max"])
        return hist

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one (same bucket bounds)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge {other.name!r} into {self.name!r}: "
                f"bucket bounds differ"
            )
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


class Span:
    """One tracing span: a named, tagged interval with parent/child links."""

    __slots__ = ("name", "tags", "parent", "depth", "start", "end", "children")

    def __init__(self, name: str, tags: Dict[str, Any], parent: Optional["Span"], start: float):
        self.name = name
        self.tags = tags
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.start = start
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        if parent is not None:
            parent.children.append(self)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "parent": self.parent.name if self.parent else None,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, depth={self.depth}, dur={self.duration:.3g})"


class MetricsRegistry:
    """Process-wide instrument registry + tracing context.

    ``clock`` provides span timing and defaults to wall time; pass the
    simulator clock to trace in simulated seconds instead.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_finished_spans: int = 256,
    ):
        self.clock = clock
        self._metrics: Dict[str, Any] = {}
        self._span_stack: List[Span] = []
        self.finished_spans: deque = deque(maxlen=max_finished_spans)

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create, memoized by name)
    # ------------------------------------------------------------------

    def _get(self, name: str, factory: Callable[[], Any], kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, not {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), "gauge")

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get(name, lambda: Histogram(name, buckets), "histogram")

    def metrics(self) -> List[Any]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def reset(self) -> None:
        self._metrics.clear()
        self._span_stack.clear()
        self.finished_spans.clear()

    # ------------------------------------------------------------------
    # Tracing spans
    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **tags) -> Iterator[Span]:
        """Open a span; nests under the currently open span.

        The duration lands in the histogram ``span.<name>`` and the
        finished span (with its tags and parentage) is retained in a
        small ring for inspection.
        """
        parent = self._span_stack[-1] if self._span_stack else None
        span = Span(name, dict(tags), parent, self.clock())
        self._span_stack.append(span)
        try:
            yield span
        finally:
            span.end = self.clock()
            self._span_stack.pop()
            self.histogram(f"span.{name}").observe(span.duration)
            if (
                self.finished_spans.maxlen is not None
                and len(self.finished_spans) == self.finished_spans.maxlen
            ):
                # The ring is full: this append evicts the oldest span.
                self.counter("obs.spans_dropped").inc()
            self.finished_spans.append(span)

    def current_span(self) -> Optional[Span]:
        return self._span_stack[-1] if self._span_stack else None

    def timed(self, name: str, **tags) -> Callable:
        """Decorator form of :meth:`span`."""

        def decorator(fn: Callable) -> Callable:
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(name, **tags):
                    return fn(*args, **kwargs)

            return wrapper

        return decorator

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> List[Tuple[str, str, str, float]]:
        """Flatten every instrument to ``(name, kind, field, value)`` rows.

        This is exactly the row shape of the hwdb ``Metrics`` table, so
        the flusher publishes snapshots verbatim.
        """
        rows: List[Tuple[str, str, str, float]] = []
        for metric in self.metrics():
            for field, value in metric.fields():
                rows.append((metric.name, metric.kind, field, value))
        return rows

    def render_text(self) -> str:
        """Text exposition format (Prometheus-style name/value lines)."""
        lines: List[str] = []
        for metric in self.metrics():
            base = _sanitize(metric.name)
            lines.append(f"# TYPE {base} {metric.kind}")
            for field, value in metric.fields():
                name = base if field == "value" else f"{base}_{field}"
                lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def render_pretty(self) -> str:
        """Aligned human-readable snapshot (the ``repro metrics`` CLI)."""
        rows = self.snapshot()
        if not rows:
            return "(no metrics recorded)"
        width = max(len(name) for name, _k, _f, _v in rows)
        lines = []
        last = None
        for name, kind, field, value in rows:
            label = name if name != last else ""
            last = name
            lines.append(f"{label:<{width}}  {kind:<9} {field:<6} {value:.6g}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


#: Module-level default registry for standalone use (a router creates
#: its own so parallel simulations never share instruments).
REGISTRY = MetricsRegistry()
