"""The flight recorder: mints trace contexts and publishes lineages.

The :class:`Tracer` owns policy — whether tracing is on, which packets
are sampled, how many finished lineages stay resident — while the
per-packet mechanics (hop records, the ``trace`` field on frame bytes)
live in :mod:`repro.net.trace`.  Three consumers share its output:

* the hwdb ``Traces`` stream table, fed through the metrics flusher's
  collector road so lineage is queryable over CQL and subscribable over
  UDP RPC like every other table;
* ``python -m repro trace`` (``last`` / ``explain`` / ``drops``), the
  human-readable causal-chain CLI;
* the fuzzer, which runs an in-memory, publish-free tracer so invariant
  failures can attach the offending packet's lineage to ddmin repro
  files without perturbing hwdb insert counts (and hence run digests).

Sampling is a deterministic modulo counter, *not* an RNG draw: enabling
tracing must never advance ``sim.random``, or the 50-seed golden-trace
digests of PR 8 would move.  Dropped/denied packets bypass sampling
entirely — their contexts are force-published from the decision point
(DESIGN.md §16, "always trace the bad news").
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, List, Optional

from ..net.trace import TraceContext

#: hwdb stream table receiving one row per hop (see hwdb.schema).
TRACES_TABLE = "traces"


class Tracer:
    """Mints trace ids, samples deterministically, retains lineages."""

    def __init__(
        self,
        clock: Callable[[], float],
        sample: float = 0.01,
        enabled: bool = False,
        buffer: int = 256,
        registry=None,
    ):
        self.clock = clock
        self.enabled = enabled
        self.publish_enabled = True
        self.sample = 0.0
        self._period = 0
        self.set_sample(sample)
        self.finished: deque = deque(maxlen=buffer)
        self._seq = 0
        self._started_synced = 0
        self._finish_ordinal = 0
        self._export_cursor = 0
        if registry is None:
            self._m_started = None
            self._m_published = None
            self._m_evicted = None
        else:
            self._m_started = registry.counter("trace.contexts_started_total")
            self._m_published = registry.counter("trace.lineages_published_total")
            self._m_evicted = registry.counter("trace.lineages_evicted_total")

    # ------------------------------------------------------------------
    # Policy knobs
    # ------------------------------------------------------------------

    def set_sample(self, sample: float) -> None:
        """Sampling rate in [0, 1]; 1/N packets get a full lineage."""
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"trace_sample must be within [0, 1]: {sample}")
        self.sample = sample
        # Deterministic counter sampling: every Nth mint is sampled.
        self._period = 0 if sample <= 0.0 else max(1, round(1.0 / sample))

    def enable(self, sample: Optional[float] = None, publish: bool = True) -> None:
        """Turn tracing on (the fuzzer passes ``publish=False``)."""
        self.enabled = True
        self.publish_enabled = publish
        if sample is not None:
            self.set_sample(sample)

    # ------------------------------------------------------------------
    # Mint / collect
    # ------------------------------------------------------------------

    def begin(self) -> Optional[TraceContext]:
        """A fresh context for a packet entering the network, or None.

        This is hot-path work (one mint per packet while tracing), so it
        does the minimum: bump the mint counter, decide sampling, build
        the context.  The id string is formatted lazily and the started
        metric is synced in batches by :meth:`_sync_metrics`.
        """
        if not self.enabled:
            return None
        self._seq += 1
        sampled = self._period > 0 and self._seq % self._period == 0
        return TraceContext(
            mint=self._seq, sampled=sampled, clock=self.clock, tracer=self
        )

    def _sync_metrics(self) -> None:
        """Fold mints since the last sync into the started counter."""
        if self._m_started is not None and self._seq != self._started_synced:
            self._m_started.inc(self._seq - self._started_synced)
            self._started_synced = self._seq

    def publish(self, ctx: TraceContext) -> None:
        """Called by ``TraceContext.finish`` for sampled/forced lineages."""
        if self.finished.maxlen is not None and len(self.finished) == self.finished.maxlen:
            if self._m_evicted is not None:
                self._m_evicted.inc()
        ctx.ordinal = self._finish_ordinal
        self._finish_ordinal += 1
        self.finished.append(ctx)
        if self._m_published is not None:
            self._m_published.inc()

    # ------------------------------------------------------------------
    # Consumers
    # ------------------------------------------------------------------

    def recent(self, limit: int = 10) -> List[TraceContext]:
        """Most recently finished lineages, newest last."""
        self._sync_metrics()
        items = list(self.finished)
        return items[-limit:]

    def drops(self, limit: int = 10) -> List[TraceContext]:
        """Most recent dropped/denied/blocked lineages, newest last."""
        bad = [ctx for ctx in self.finished if ctx.forced]
        return bad[-limit:]

    def export_rows(self) -> List[dict]:
        """Hop rows finished since the last export (the flusher road).

        The cursor walks finish ordinals so a lineage is exported once
        even though the retention deque also serves the CLI; lineages
        evicted before a flush are simply lost, like any bounded stream.
        """
        self._sync_metrics()
        rows: List[dict] = []
        for ctx in self.finished:
            if ctx.ordinal < self._export_cursor:
                continue
            for h in ctx.hops:
                rows.append(
                    {
                        "trace_id": ctx.trace_id,
                        "seq": h.seq,
                        "parent": -1 if h.parent is None else h.parent,
                        "component": h.component,
                        "verb": h.verb,
                        "decision": h.decision,
                        "cause": h.cause,
                        "t": h.t,
                    }
                )
        self._export_cursor = self._finish_ordinal
        return rows


# ----------------------------------------------------------------------
# Rendering (shared by the CLI and the fuzzer's repro files)
# ----------------------------------------------------------------------


def render_lineage(trace_id: str, rows: Iterable[dict]) -> str:
    """A human-readable causal chain from hop rows (dicts or CQL rows).

    Accepts the dict shape produced by :meth:`Tracer.export_rows` /
    ``TraceHop.to_dict``; rows are sorted by ``seq`` so CQL result
    ordering does not matter.
    """
    hops = sorted(rows, key=lambda r: r["seq"])
    if not hops:
        return f"trace {trace_id}: no hop records"
    last = hops[-1]
    outcome = last.get("decision") or "in-flight"
    lines = [f"trace {trace_id} — {len(hops)} hops, outcome: {outcome}"]
    for h in hops:
        event = f"{h['component']}.{h['verb']}"
        detail = " ".join(p for p in (h.get("decision"), h.get("cause")) if p)
        lines.append(f"  [{h['seq']:>2}] t={h['t']:>10.6f}  {event:<22} {detail}".rstrip())
    return "\n".join(lines)


def render_context(ctx: TraceContext) -> str:
    """Render a live :class:`TraceContext` (in-memory consumers)."""
    return render_lineage(ctx.trace_id, [h.to_dict() for h in ctx.hops])
