"""obs — the router-wide telemetry subsystem.

Counters, gauges and fixed-bucket latency histograms in a
:class:`MetricsRegistry`; tracing spans with parent/child nesting; and a
:class:`MetricsFlusher` that dogfoods export by publishing snapshots
into the hwdb ``Metrics`` stream table.  See DESIGN.md §8.
"""

from .flush import METRICS_TABLE, MetricsFlusher
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    Span,
)
from .trace import TRACES_TABLE, Tracer, render_context, render_lineage

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "METRICS_TABLE",
    "MetricsFlusher",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TRACES_TABLE",
    "Tracer",
    "render_context",
    "render_lineage",
]
