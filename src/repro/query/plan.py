"""Operator-DAG plans for CQL SELECT statements.

``compile_select`` turns a parsed :class:`Select` into a small tree of
operators (scan -> join -> filter -> aggregate/project -> distinct ->
sort -> limit) with the optimizer's rewrites baked in.  The operators
reuse the legacy executor's row model (:class:`Binding`), grouping,
ordering and expression evaluation wholesale, so for any query the
planner accepts, plan execution is provably row-for-row identical to
:func:`repro.hwdb.cql.executor.execute_select`.

The one thing the planner must *never* do is change which errors a
query raises.  The legacy executor surfaces most errors data-
dependently — an unknown column only raises once a row exists to
resolve it against, ``sum()`` without arguments only raises when a
group is evaluated, HAVING is silently ignored on non-aggregated
queries.  The planner therefore enforces a ``resolvable_all``
precondition: every column reference must resolve statically, every
function must be known, every aggregate well-formed.  Anything short of
that raises :class:`PlanNotSupported` at compile time and the engine
runs the query on the legacy executor, which reproduces the quirky
behaviour by construction.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import QueryError
from ..hwdb.cql.ast_nodes import (
    Binary,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    Literal,
    OrderItem,
    Projection,
    Select,
    TableRef,
    Unary,
    W_ALL,
    W_NOW,
    W_RANGE,
    W_ROWS,
    W_SINCE,
    Window,
)
from ..hwdb.cql.executor import (
    Binding,
    Evaluator,
    ResultSet,
    apply_window_ex,
    group_bindings,
    has_aggregate,
    order_rows,
    projection_name,
    star_projections,
    truthy,
)
from ..hwdb.cql.parser import AGGREGATE_FUNCTIONS, SCALAR_FUNCTIONS
from ..hwdb.cql.unparse import unparse, unparse_expr
from ..hwdb.table import StreamTable, TS_COLUMN
from .optimize import (
    alias_normalised_key,
    and_chain,
    needed_columns,
    rewrite_where,
)
from .share import ShareCache
from .stats import OperatorStats

_WINDOW_KINDS = (W_ALL, W_NOW, W_RANGE, W_ROWS, W_SINCE)


class PlanNotSupported(Exception):
    """The planner cannot prove this SELECT error-free; run it on the
    legacy executor instead.  Not an error — a routing decision."""


class ExecContext:
    """Everything one plan execution needs, bundled for the operators."""

    __slots__ = ("tables", "now", "evaluator", "stats", "share", "timer")

    def __init__(
        self,
        tables: Dict[str, StreamTable],
        now: float,
        stats: OperatorStats,
        share: Optional[ShareCache] = None,
        timer: Optional[Callable[[], float]] = None,
    ):
        self.tables = tables
        self.now = now
        self.evaluator = Evaluator(now)
        self.stats = stats
        self.share = share
        self.timer = timer


class PlanNode:
    """Base operator.  ``run`` produces output; ``execute`` adds stats.

    Recorded time is cumulative — it includes the node's children,
    since each node pulls its inputs by calling ``child.execute``.
    EXPLAIN ANALYZE presents it that way.
    """

    kind = "node"

    def __init__(self, children: Tuple["PlanNode", ...] = ()):
        self.children: List[PlanNode] = list(children)
        self.node_id = -1  # assigned by Plan

    def describe(self) -> str:
        return self.kind

    def run(self, ctx: ExecContext) -> List:
        raise NotImplementedError

    def execute(self, ctx: ExecContext) -> List:
        timer = ctx.timer
        if timer is None:
            out = self.run(ctx)
            ctx.stats.record(self.node_id, len(out), 0.0)
            return out
        started = timer()
        out = self.run(ctx)
        ctx.stats.record(self.node_id, len(out), timer() - started)
        return out


def _window_text(window: Window) -> str:
    if window.kind == W_ALL:
        return ""
    if window.kind == W_NOW:
        return " [NOW]"
    if window.kind == W_RANGE:
        return f" [RANGE {window.value!r} SECONDS]"
    if window.kind == W_ROWS:
        return f" [ROWS {int(window.value)}]"
    return f" [SINCE {window.value!r}]"


class ScanOp(PlanNode):
    """Windowed table scan with an optional pushed-down predicate.

    Output rows (before binding) are published to the tick's
    :class:`ShareCache` so sibling subscriptions watching the same
    table/window/predicate reuse them.
    """

    kind = "scan"

    def __init__(
        self,
        ref: TableRef,
        predicate: Optional[Expr],
        predicate_key: Optional[str],
        needed: Tuple[str, ...],
    ):
        super().__init__()
        self.ref = ref
        self.predicate = predicate
        self.predicate_key = predicate_key
        self.needed = needed
        self.last_archive = None  # ArchiveScanInfo from the latest run

    def describe(self) -> str:
        text = f"Scan {self.ref.table}{_window_text(self.ref.window)}"
        if self.ref.alias != self.ref.table:
            text += f" AS {self.ref.alias}"
        if self.predicate is not None:
            text += f" filter=({unparse_expr(self.predicate)})"
        if self.needed:
            text += f" columns=[{', '.join(self.needed)}]"
        info = self.last_archive
        if info is not None:
            text += (
                f" archive[segments={info.segments_scanned}/{info.segments_total}"
                f" pruned={info.segments_pruned} rows={info.rows}]"
            )
        return text

    def run(self, ctx: ExecContext) -> List[Binding]:
        table = ctx.tables.get(self.ref.table)
        if table is None:
            raise QueryError(f"no such table {self.ref.table!r}")
        key = None
        if ctx.share is not None:
            key = (
                self.ref.table,
                id(table),
                self.ref.window.kind,
                self.ref.window.value,
                table.total_inserted,
                self.predicate_key,
            )
            shared = ctx.share.get(key)
            if shared is not None:
                alias = self.ref.alias
                return [Binding({alias: (table, row)}) for row in shared]
        rows, self.last_archive = apply_window_ex(table, self.ref, ctx.now)
        alias = self.ref.alias
        bindings = [Binding({alias: (table, row)}) for row in rows]
        if self.predicate is not None:
            evaluator = ctx.evaluator
            kept = [
                (row, binding)
                for row, binding in zip(rows, bindings)
                if truthy(evaluator.scalar(self.predicate, binding))
            ]
            rows = [row for row, _ in kept]
            bindings = [binding for _, binding in kept]
        if key is not None:
            ctx.share.put(key, rows)
        return bindings


class JoinOp(PlanNode):
    """Cartesian product of the children, in source order — exactly the
    join the legacy executor forms (its WHERE then filters; here the
    single-source conjuncts already ran at the scans)."""

    kind = "join"

    def describe(self) -> str:
        return f"Join sources={len(self.children)}"

    def run(self, ctx: ExecContext) -> List[Binding]:
        child_outputs = [child.execute(ctx) for child in self.children]
        out = []
        for combo in itertools.product(*child_outputs):
            merged: Dict[str, tuple] = {}
            for binding in combo:
                merged.update(binding.sources)
            out.append(Binding(merged))
        return out


class FilterOp(PlanNode):
    """Residual WHERE conjuncts (multi-source or alias-free)."""

    kind = "filter"

    def __init__(self, child: PlanNode, predicate: Expr):
        super().__init__((child,))
        self.predicate = predicate

    def describe(self) -> str:
        return f"Filter ({unparse_expr(self.predicate)})"

    def run(self, ctx: ExecContext) -> List[Binding]:
        evaluator = ctx.evaluator
        return [
            binding
            for binding in self.children[0].execute(ctx)
            if truthy(evaluator.scalar(self.predicate, binding))
        ]


class AggregateOp(PlanNode):
    """Group + HAVING + aggregate projection, via the executor's own
    grouping and aggregate evaluation."""

    kind = "aggregate"

    def __init__(
        self,
        child: PlanNode,
        group_by: List[Expr],
        projections: List[Projection],
        having: Optional[Expr],
    ):
        super().__init__((child,))
        self.group_by = group_by
        self.projections = projections
        self.having = having

    def describe(self) -> str:
        text = "Aggregate"
        if self.group_by:
            keys = ", ".join(unparse_expr(e) for e in self.group_by)
            text += f" group_by=[{keys}]"
        if self.having is not None:
            text += f" having=({unparse_expr(self.having)})"
        return text

    def run(self, ctx: ExecContext) -> List[Tuple]:
        evaluator = ctx.evaluator
        bindings = self.children[0].execute(ctx)
        out: List[Tuple] = []
        for group in group_bindings(bindings, self.group_by, evaluator):
            if self.having is not None and not truthy(
                evaluator.aggregate(self.having, group)
            ):
                continue
            out.append(
                tuple(evaluator.aggregate(p.expr, group) for p in self.projections)
            )
        return out


class ProjectOp(PlanNode):
    """Row-wise projection for non-aggregated queries.  HAVING, if
    present, is dropped at compile time — the legacy executor ignores it
    on this branch and the plan must match."""

    kind = "project"

    def __init__(self, child: PlanNode, projections: List[Projection]):
        super().__init__((child,))
        self.projections = projections

    def describe(self) -> str:
        exprs = ", ".join(unparse_expr(p.expr) for p in self.projections)
        return f"Project [{exprs}]"

    def run(self, ctx: ExecContext) -> List[Tuple]:
        evaluator = ctx.evaluator
        return [
            tuple(evaluator.scalar(p.expr, binding) for p in self.projections)
            for binding in self.children[0].execute(ctx)
        ]


class DistinctOp(PlanNode):
    kind = "distinct"

    def __init__(self, child: PlanNode):
        super().__init__((child,))

    def describe(self) -> str:
        return "Distinct"

    def run(self, ctx: ExecContext) -> List[Tuple]:
        seen = set()
        unique: List[Tuple] = []
        for row in self.children[0].execute(ctx):
            if row not in seen:
                seen.add(row)
                unique.append(row)
        return unique


class SortOp(PlanNode):
    kind = "sort"

    def __init__(
        self,
        child: PlanNode,
        order_by: List[OrderItem],
        projections: List[Projection],
        columns: List[str],
    ):
        super().__init__((child,))
        self.order_by = order_by
        self.projections = projections
        self.columns = columns

    def describe(self) -> str:
        keys = ", ".join(
            unparse_expr(i.expr) + (" DESC" if i.descending else "")
            for i in self.order_by
        )
        return f"Sort [{keys}]"

    def run(self, ctx: ExecContext) -> List[Tuple]:
        return order_rows(
            self.children[0].execute(ctx),
            self.order_by,
            self.projections,
            self.columns,
            ctx.evaluator,
        )


class LimitOp(PlanNode):
    kind = "limit"

    def __init__(self, child: PlanNode, limit: int):
        super().__init__((child,))
        self.limit = limit

    def describe(self) -> str:
        return f"Limit {self.limit}"

    def run(self, ctx: ExecContext) -> List[Tuple]:
        return self.children[0].execute(ctx)[: self.limit]


class Plan:
    """A compiled SELECT: the operator tree plus everything EXPLAIN and
    the engine need (effective projections, output columns, optimizer
    notes, accumulated per-operator stats)."""

    def __init__(
        self,
        select: Select,
        root: PlanNode,
        projections: List[Projection],
        columns: List[str],
        aggregated: bool,
        notes: List[str],
    ):
        self.select = select
        self.text = unparse(select)
        self.root = root
        self.projections = projections
        self.columns = columns
        self.aggregated = aggregated
        self.notes = notes
        self.stats = OperatorStats()
        self.nodes: List[Tuple[int, PlanNode]] = []  # (depth, node) preorder
        self._number(root, 0)

    def _number(self, node: PlanNode, depth: int) -> None:
        node.node_id = len(self.nodes)
        self.nodes.append((depth, node))
        for child in node.children:
            self._number(child, depth + 1)

    def execute(
        self,
        tables: Dict[str, StreamTable],
        now: float,
        share: Optional[ShareCache] = None,
        timer: Optional[Callable[[], float]] = None,
    ) -> ResultSet:
        ctx = ExecContext(tables, now, self.stats, share=share, timer=timer)
        rows = self.root.execute(ctx)
        return ResultSet(self.columns, rows, executed_at=now)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------

def make_resolver(
    aliases: Dict[str, StreamTable],
) -> Callable[[ColumnRef], Optional[str]]:
    """Static version of ``Binding.resolve``: maps a reference to its
    owning alias, or None wherever the runtime resolution would be
    data-dependent (unknown or non-TS-ambiguous columns)."""

    def resolve(ref: ColumnRef) -> Optional[str]:
        if ref.table is not None:
            table = aliases.get(ref.table)
            if table is None:
                return None
            return ref.table if table.has_column(ref.name) else None
        matches = [a for a, t in aliases.items() if t.has_column(ref.name)]
        if not matches:
            return None
        if len(matches) > 1 and ref.name != TS_COLUMN:
            return None
        return matches[0]

    return resolve


def _check_expr(
    expr: Expr,
    resolve: Callable[[ColumnRef], Optional[str]],
    allow_aggregate: bool,
    inside_aggregate: bool = False,
) -> None:
    """Enforce resolvable_all: raise PlanNotSupported on anything whose
    legacy evaluation could raise (or quirkily not raise)."""
    if isinstance(expr, Literal):
        return
    if isinstance(expr, ColumnRef):
        if resolve(expr) is None:
            raise PlanNotSupported(
                f"column {unparse_expr(expr)!r} does not resolve statically"
            )
        return
    if isinstance(expr, Unary):
        _check_expr(expr.operand, resolve, allow_aggregate, inside_aggregate)
        return
    if isinstance(expr, Binary):
        _check_expr(expr.left, resolve, allow_aggregate, inside_aggregate)
        _check_expr(expr.right, resolve, allow_aggregate, inside_aggregate)
        return
    if isinstance(expr, InList):
        _check_expr(expr.needle, resolve, allow_aggregate, inside_aggregate)
        for item in expr.haystack:
            _check_expr(item, resolve, allow_aggregate, inside_aggregate)
        return
    if isinstance(expr, FunctionCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            if not allow_aggregate:
                raise PlanNotSupported(f"aggregate {expr.name}() in row context")
            if inside_aggregate:
                raise PlanNotSupported(f"nested aggregate {expr.name}()")
            if not expr.star and not expr.args:
                raise PlanNotSupported(f"{expr.name}() without an argument")
            for arg in expr.args:
                _check_expr(arg, resolve, allow_aggregate, inside_aggregate=True)
            return
        if expr.name == "now" or expr.name in SCALAR_FUNCTIONS:
            for arg in expr.args:
                _check_expr(arg, resolve, allow_aggregate, inside_aggregate)
            return
        raise PlanNotSupported(f"unknown function {expr.name!r}")
    raise PlanNotSupported(f"unsupported expression {expr!r}")


def _check_order_by(order_by: List[OrderItem], columns: List[str]) -> None:
    for item in order_by:
        expr = item.expr
        if (
            isinstance(expr, ColumnRef)
            and expr.table is None
            and expr.name in columns
        ):
            continue
        if (
            isinstance(expr, Literal)
            and isinstance(expr.value, int)
            and not isinstance(expr.value, bool)
            and 1 <= expr.value <= len(columns)
        ):
            continue
        raise PlanNotSupported("ORDER BY term not statically resolvable")


def compile_select(select: Select, tables: Dict[str, StreamTable]) -> Plan:
    """Compile ``select`` against the current schema, or raise
    :class:`PlanNotSupported` when the legacy executor must run it."""
    aliases: Dict[str, StreamTable] = {}
    for ref in select.sources:
        table = tables.get(ref.table)
        if table is None:
            raise PlanNotSupported(f"unknown table {ref.table!r}")
        if ref.alias in aliases:
            raise PlanNotSupported(f"duplicate table alias {ref.alias!r}")
        if ref.window.kind not in _WINDOW_KINDS:
            raise PlanNotSupported(f"window kind {ref.window.kind!r}")
        aliases[ref.alias] = table

    if select.star:
        projections = star_projections(
            [(alias, table, None) for alias, table in aliases.items()],
            len(aliases) > 1,
        )
    else:
        projections = select.projections
    aggregated = bool(select.group_by) or any(
        has_aggregate(p.expr) for p in projections
    )
    columns = [projection_name(p, i) for i, p in enumerate(projections)]

    resolve = make_resolver(aliases)
    if select.where is not None:
        _check_expr(select.where, resolve, allow_aggregate=False)
    for expr in select.group_by:
        _check_expr(expr, resolve, allow_aggregate=False)
    for projection in projections:
        _check_expr(projection.expr, resolve, allow_aggregate=aggregated)
    if select.having is not None and aggregated:
        _check_expr(select.having, resolve, allow_aggregate=True)
    _check_order_by(select.order_by, columns)

    rewrite = rewrite_where(select.where, select.sources, resolve)
    pruning_exprs: List[Expr] = [p.expr for p in projections]
    if select.where is not None:
        pruning_exprs.append(select.where)
    pruning_exprs.extend(select.group_by)
    if select.having is not None and aggregated:
        pruning_exprs.append(select.having)
    needed = needed_columns(pruning_exprs, list(aliases), resolve)

    scans: List[PlanNode] = []
    for ref in select.sources:
        predicate = and_chain(rewrite.scan_predicates.get(ref.alias, []))
        scan_ref = TableRef(ref.table, rewrite.windows[ref.alias], ref.alias)
        scans.append(
            ScanOp(
                scan_ref,
                predicate,
                alias_normalised_key(predicate, ref.alias),
                needed.get(ref.alias, ()),
            )
        )
    node: PlanNode = scans[0] if len(scans) == 1 else JoinOp(tuple(scans))
    residual = and_chain(rewrite.residual)
    if residual is not None:
        node = FilterOp(node, residual)
    if aggregated:
        node = AggregateOp(node, select.group_by, projections, select.having)
    else:
        node = ProjectOp(node, projections)
    if select.distinct:
        node = DistinctOp(node)
    if select.order_by:
        node = SortOp(node, select.order_by, projections, columns)
    if select.limit is not None:
        node = LimitOp(node, select.limit)
    return Plan(select, node, projections, columns, aggregated, rewrite.notes)
