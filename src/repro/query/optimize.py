"""Rule-based rewrites applied while compiling a SELECT into a plan.

Four rules, all proven behaviour-preserving *given* the planner's
``resolvable_all`` precondition (every expression statically resolves
and every function is known, so evaluation cannot raise):

* **constant folding** — literal-only pure subtrees collapse to their
  value; ``now()`` never folds, and a subtree whose evaluation errors
  is simply left alone.
* **predicate pushdown** — the WHERE clause splits on top-level AND;
  conjuncts touching exactly one source filter at that source's scan,
  *before* the join product is formed.  Alias-free conjuncts and
  multi-source conjuncts stay in a residual filter above the join,
  rebuilt in original order.
* **window tightening** — a pushed ``timestamp >= C`` merges into the
  scan's window (ALL becomes SINCE C; SINCE v becomes SINCE max(v, C))
  because ``rows_since`` keeps exactly the rows with ``ts >= bound``.
  For a strict ``>`` the window tightens but the conjunct stays.
* **projection pruning** — each scan is annotated with the columns the
  query actually reads.  Plan-tier scans still bind whole rows (rows
  are preallocated tuples; slicing them would cost more than it saves)
  so this is informational there, but the incremental tier stores only
  these values per window entry.

Everything here is a pure AST-in/AST-out utility: this module never
imports :mod:`.plan`, and never mutates the input AST — callers keep
the original ``Select`` pristine for the legacy fallback path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import QueryError
from ..hwdb.cql.ast_nodes import (
    Binary,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    Literal,
    TableRef,
    Unary,
    W_ALL,
    W_SINCE,
    Window,
)
from ..hwdb.cql.executor import Evaluator, truthy
from ..hwdb.cql.parser import SCALAR_FUNCTIONS
from ..hwdb.cql.unparse import unparse_expr
from ..hwdb.table import TS_COLUMN

#: Resolves a column reference to the owning source alias, or None when
#: the reference does not resolve statically (the planner rejects such
#: queries before any rewrite runs, so None here means "leave it be").
Resolver = Callable[[ColumnRef], Optional[str]]


# ----------------------------------------------------------------------
# AST plumbing
# ----------------------------------------------------------------------

def clone_expr(expr: Expr) -> Expr:
    """Deep-copy an expression tree (shared Literals are fine; nodes not)."""
    if isinstance(expr, Literal):
        return Literal(expr.value)
    if isinstance(expr, ColumnRef):
        return ColumnRef(expr.name, expr.table)
    if isinstance(expr, Unary):
        return Unary(expr.op, clone_expr(expr.operand))
    if isinstance(expr, Binary):
        return Binary(expr.op, clone_expr(expr.left), clone_expr(expr.right))
    if isinstance(expr, InList):
        return InList(
            clone_expr(expr.needle),
            [clone_expr(item) for item in expr.haystack],
            expr.negated,
        )
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            expr.name, [clone_expr(a) for a in expr.args], star=expr.star
        )
    return expr


def split_conjuncts(expr: Expr) -> List[Expr]:
    """Flatten a top-level AND tree into its conjuncts, left to right."""
    if isinstance(expr, Binary) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def and_chain(conjuncts: List[Expr]) -> Optional[Expr]:
    """Rebuild a left-associated AND tree; None for an empty list."""
    if not conjuncts:
        return None
    out = conjuncts[0]
    for conjunct in conjuncts[1:]:
        out = Binary("and", out, conjunct)
    return out


def collect_column_refs(expr: Expr, out: Optional[List[ColumnRef]] = None) -> List[ColumnRef]:
    if out is None:
        out = []
    if isinstance(expr, ColumnRef):
        out.append(expr)
    elif isinstance(expr, Unary):
        collect_column_refs(expr.operand, out)
    elif isinstance(expr, Binary):
        collect_column_refs(expr.left, out)
        collect_column_refs(expr.right, out)
    elif isinstance(expr, InList):
        collect_column_refs(expr.needle, out)
        for item in expr.haystack:
            collect_column_refs(item, out)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            collect_column_refs(arg, out)
    return out


# ----------------------------------------------------------------------
# Constant folding
# ----------------------------------------------------------------------

def fold_expr(expr: Expr, evaluator: Evaluator) -> Expr:
    """Fold literal-only subtrees bottom-up.  Never mutates ``expr``."""
    if isinstance(expr, (Literal, ColumnRef)):
        return expr
    if isinstance(expr, Unary):
        return _try_fold(Unary(expr.op, fold_expr(expr.operand, evaluator)), evaluator)
    if isinstance(expr, Binary):
        return _try_fold(
            Binary(
                expr.op,
                fold_expr(expr.left, evaluator),
                fold_expr(expr.right, evaluator),
            ),
            evaluator,
        )
    if isinstance(expr, InList):
        return _try_fold(
            InList(
                fold_expr(expr.needle, evaluator),
                [fold_expr(item, evaluator) for item in expr.haystack],
                expr.negated,
            ),
            evaluator,
        )
    if isinstance(expr, FunctionCall):
        if expr.star:
            return expr
        return _try_fold(
            FunctionCall(expr.name, [fold_expr(a, evaluator) for a in expr.args]),
            evaluator,
        )
    return expr


def _is_literal(expr: Expr) -> bool:
    return isinstance(expr, Literal)


def _try_fold(expr: Expr, evaluator: Evaluator) -> Expr:
    if isinstance(expr, Unary):
        ready = _is_literal(expr.operand)
    elif isinstance(expr, Binary):
        ready = _is_literal(expr.left) and _is_literal(expr.right)
    elif isinstance(expr, InList):
        ready = _is_literal(expr.needle) and all(
            _is_literal(item) for item in expr.haystack
        )
    elif isinstance(expr, FunctionCall):
        # now() is deliberately absent from SCALAR_FUNCTIONS: it must
        # re-evaluate at query time, every tick.
        ready = expr.name in SCALAR_FUNCTIONS and all(
            _is_literal(a) for a in expr.args
        )
    else:
        ready = False
    if not ready:
        return expr
    try:
        return Literal(evaluator.scalar(expr, None))
    except (QueryError, TypeError, ValueError, OverflowError):
        # Evaluation would fail at runtime too (e.g. 'a' + 1); leave the
        # subtree so the executor surfaces it exactly as legacy would.
        return expr


# ----------------------------------------------------------------------
# Pushdown + window tightening
# ----------------------------------------------------------------------

class Rewrite:
    """Outcome of the WHERE-clause rewrite pass."""

    __slots__ = ("scan_predicates", "windows", "residual", "notes")

    def __init__(self) -> None:
        self.scan_predicates: Dict[str, List[Expr]] = {}
        self.windows: Dict[str, Window] = {}
        self.residual: List[Expr] = []
        self.notes: List[str] = []


def rewrite_where(
    where: Optional[Expr],
    sources: List[TableRef],
    resolve: Resolver,
) -> Rewrite:
    """Fold, split, classify and push the WHERE clause.

    Returns cloned windows (possibly tightened), per-alias pushed
    conjunct lists, and the residual conjuncts in their original order.
    """
    rewrite = Rewrite()
    for ref in sources:
        rewrite.windows[ref.alias] = Window(ref.window.kind, ref.window.value)
    if where is None:
        return rewrite

    folded = fold_expr(clone_expr(where), Evaluator(0.0))
    if unparse_expr(folded) != unparse_expr(where):
        rewrite.notes.append("constant folding: simplified WHERE")

    pushed: Dict[str, int] = {}
    for conjunct in split_conjuncts(folded):
        if isinstance(conjunct, Literal):
            if truthy(conjunct.value):
                rewrite.notes.append("dropped constant-true conjunct")
            else:
                rewrite.residual.append(conjunct)
            continue
        owners = set()
        unresolved = False
        for ref in collect_column_refs(conjunct):
            alias = resolve(ref)
            if alias is None:
                unresolved = True
                break
            owners.add(alias)
        if unresolved or len(owners) != 1:
            rewrite.residual.append(conjunct)
            continue
        alias = next(iter(owners))
        tightened = _tighten(rewrite.windows[alias], conjunct, resolve, alias)
        if tightened is not None:
            window, keep_conjunct = tightened
            rewrite.windows[alias] = window
            rewrite.notes.append(
                f"window tightening: {alias} [SINCE {window.value!r}]"
            )
            if not keep_conjunct:
                continue
        rewrite.scan_predicates.setdefault(alias, []).append(conjunct)
        pushed[alias] = pushed.get(alias, 0) + 1
    for alias, count in pushed.items():
        rewrite.notes.append(
            f"predicate pushdown: {count} conjunct(s) -> scan({alias})"
        )
    return rewrite


def _tighten(
    window: Window,
    conjunct: Expr,
    resolve: Resolver,
    alias: str,
) -> Optional[Tuple[Window, bool]]:
    """Merge ``timestamp >= C`` / ``> C`` into ALL or SINCE windows.

    Returns ``(new_window, keep_conjunct)`` or None when the rule does
    not apply.  ``rows_since`` keeps rows with ``ts >= bound``, so for
    ``>=`` the conjunct becomes redundant and drops; for strict ``>``
    the window still tightens but the conjunct must stay to exclude
    rows exactly at the bound.
    """
    if window.kind not in (W_ALL, W_SINCE):
        return None
    if not isinstance(conjunct, Binary) or conjunct.op not in (">", ">="):
        return None
    ref = conjunct.left
    bound = conjunct.right
    if not isinstance(ref, ColumnRef) or ref.name != TS_COLUMN:
        return None
    if resolve(ref) != alias:
        return None
    if not isinstance(bound, Literal):
        return None
    value = bound.value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    lower = float(value)
    if window.kind == W_SINCE:
        lower = max(window.value, lower)
    return Window(W_SINCE, lower), conjunct.op == ">"


# ----------------------------------------------------------------------
# Projection pruning + scan sharing keys
# ----------------------------------------------------------------------

def needed_columns(
    exprs: List[Expr],
    aliases: List[str],
    resolve: Resolver,
) -> Dict[str, Tuple[str, ...]]:
    """Columns each source alias contributes anywhere in the query."""
    need: Dict[str, set] = {alias: set() for alias in aliases}
    for expr in exprs:
        for ref in collect_column_refs(expr):
            owner = resolve(ref)
            if owner is not None:
                need[owner].add(ref.name)
    return {alias: tuple(sorted(names)) for alias, names in need.items()}


def alias_normalised_key(expr: Optional[Expr], alias: str) -> Optional[str]:
    """Scan-predicate cache key: the predicate text with the scan's own
    alias rewritten to ``$`` so equivalent predicates under different
    aliases share (``$`` cannot collide with a parsed identifier)."""
    if expr is None:
        return None
    return unparse_expr(_strip_alias(expr, alias))


def _strip_alias(expr: Expr, alias: str) -> Expr:
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, ColumnRef):
        if expr.table == alias:
            return ColumnRef(expr.name, "$")
        return expr
    if isinstance(expr, Unary):
        return Unary(expr.op, _strip_alias(expr.operand, alias))
    if isinstance(expr, Binary):
        return Binary(
            expr.op,
            _strip_alias(expr.left, alias),
            _strip_alias(expr.right, alias),
        )
    if isinstance(expr, InList):
        return InList(
            _strip_alias(expr.needle, alias),
            [_strip_alias(item, alias) for item in expr.haystack],
            expr.negated,
        )
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            expr.name, [_strip_alias(a, alias) for a in expr.args], star=expr.star
        )
    return expr
