"""Render compiled plans for EXPLAIN / EXPLAIN ANALYZE.

Output is a list of plain-text lines; the database wraps them into a
one-column ``ResultSet(["plan"], ...)`` so EXPLAIN travels the normal
query path — local calls, the UDP RPC gateway and the CLI all get the
same rendering for free.
"""

from __future__ import annotations

from typing import List, Optional

from .incremental import IncrementalState
from .plan import Plan


def render_plan(
    text: str,
    mode: str,
    reason: Optional[str],
    plan: Optional[Plan],
    state: Optional[IncrementalState],
    analyze: bool,
) -> List[str]:
    """Lines describing how the engine runs ``text``.

    ``mode`` is the engine's routing decision (``incremental``,
    ``plan`` or ``legacy``); ``reason`` says why anything short of
    incremental was chosen.  With ``analyze``, per-operator row counts
    and cumulative timings observed so far are appended (the engine runs
    the query once before rendering, so they are never empty).
    """
    lines = [f"Query: {text}", f"Mode: {mode}"]
    if reason:
        lines.append(f"Reason: {reason}")
    if plan is None:
        return lines
    if plan.notes:
        lines.append("Rewrites:")
        for note in plan.notes:
            lines.append(f"  - {note}")
    else:
        lines.append("Rewrites: none")
    lines.append("Plan:")
    for depth, node in plan.nodes:
        line = "  " * (depth + 1) + node.describe()
        if analyze:
            snapshot = plan.stats.snapshot(node.node_id)
            if snapshot is not None:
                rows, batches, seconds = snapshot
                line += (
                    f"  [rows={rows} batches={batches}"
                    f" time={seconds * 1000.0:.3f}ms]"
                )
        lines.append(line)
    if state is not None:
        lines.append(
            "Incremental state:"
            f" groups={state.group_count()}"
            f" entries={state.entry_count()}"
            f" watermark={state.watermark}"
        )
        if analyze:
            lines.append(
                "Incremental activity:"
                f" ticks={state.ticks}"
                f" ingested={state.rows_ingested}"
                f" evicted={state.rows_evicted}"
                f" resets={state.resets}"
            )
    return lines
