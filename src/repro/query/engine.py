"""The continuous-query engine facade.

One :class:`QueryEngine` sits next to a :class:`HomeworkDatabase` (the
router constructs it; the database talks to it only through the
duck-typed ``set_query_engine`` hook, keeping hwdb below this package
in the layer DAG).  Every SELECT the database executes routes here:

1. The plan cache (keyed by the query's *normalized* unparse text, so
   formatting differences share an entry) yields or compiles a cache
   entry in one of three modes:

   * ``incremental`` — windowed-aggregate state maintained across
     ticks (:mod:`.incremental`);
   * ``plan`` — full re-execution of the compiled operator DAG, with
     cross-query scan sharing (:mod:`.plan`, :mod:`.share`);
   * ``legacy`` — the original executor, for anything the planner
     cannot prove it reproduces exactly.

2. If a plan-tier or incremental execution raises anyway, the engine
   answers with the legacy executor.  An :class:`HwdbError` means the
   legacy path raises (or handles) the same condition authoritatively,
   so the entry stays live; any other exception is an engine defect —
   the entry is poisoned to legacy mode, logged, and counted, and the
   caller still gets the legacy answer.  Subscriptions therefore can
   never be broken by the optimizer, only slowed down.

Subscriptions pin their cache entries (``attach_subscription``) so LRU
eviction only ever discards ad-hoc queries; DDL invalidates everything.
"""

from __future__ import annotations

import logging
from contextlib import nullcontext
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..core.errors import HwdbError
from ..hwdb.cql.ast_nodes import Explain, Select
from ..hwdb.cql.executor import ResultSet, execute_select as legacy_execute
from ..hwdb.cql.unparse import unparse
from .explain import render_plan
from .incremental import IncrementalState, NotIncremental, build_incremental
from .plan import Plan, PlanNotSupported, compile_select
from .share import ShareCache
from .stats import EngineMetrics

logger = logging.getLogger(__name__)

#: Unpinned plan-cache entries beyond this are evicted, oldest first.
PLAN_CACHE_SIZE = 256

MODE_INCREMENTAL = "incremental"
MODE_PLAN = "plan"
MODE_LEGACY = "legacy"


class _CacheEntry:
    __slots__ = ("plan", "state", "mode", "reason")

    def __init__(
        self,
        plan: Optional[Plan],
        state: Optional[IncrementalState],
        mode: str,
        reason: Optional[str],
    ):
        self.plan = plan
        self.state = state
        self.mode = mode
        self.reason = reason


class QueryEngine:
    """Compiles, caches, shares and incrementally maintains SELECTs."""

    def __init__(self, db, registry=None):
        self.db = db
        self.metrics = EngineMetrics(registry)
        self.share = ShareCache()
        self._cache: "OrderedDict[str, _CacheEntry]" = OrderedDict()
        self._pins: Dict[str, int] = {}
        self._share_now: Optional[float] = None
        db.set_query_engine(self)

    # -- plan cache ----------------------------------------------------

    def _entry_for(self, select: Select, tables, text: str) -> _CacheEntry:
        entry = self._cache.get(text)
        if entry is not None:
            self.metrics.plan_cache_hit()
            self._cache.move_to_end(text)
            return entry
        self.metrics.plan_cache_miss()
        entry = self._compile(select, tables)
        self._cache[text] = entry
        self._evict_unpinned()
        return entry

    def _compile(self, select: Select, tables) -> _CacheEntry:
        try:
            plan = compile_select(select, tables)
        except PlanNotSupported as exc:
            return _CacheEntry(None, None, MODE_LEGACY, str(exc))
        archived = sorted(
            {
                node.ref.table
                for _depth, node in plan.nodes
                if node.kind == "scan"
                and getattr(tables.get(node.ref.table), "spill", None) is not None
            }
        )
        if archived:
            # Incremental delta maintenance is keyed on ring eviction
            # (seqs <= overwritten are gone); a durable archive makes
            # those rows reachable again, so full re-execution it is.
            return _CacheEntry(
                plan,
                None,
                MODE_PLAN,
                f"durable archive on {', '.join(archived)}: incremental tier is ring-only",
            )
        try:
            state = build_incremental(plan)
        except NotIncremental as exc:
            return _CacheEntry(plan, None, MODE_PLAN, str(exc))
        return _CacheEntry(plan, state, MODE_INCREMENTAL, None)

    def _evict_unpinned(self) -> None:
        excess = len(self._cache) - PLAN_CACHE_SIZE
        if excess <= 0:
            return
        for text in list(self._cache):
            if excess <= 0:
                break
            if text in self._pins:
                continue
            del self._cache[text]
            excess -= 1

    def invalidate(self) -> None:
        """Schema changed: every compiled plan may be stale.  Pins are
        kept — the subscription still exists and recompiles on its next
        fire."""
        self._cache.clear()
        self.share.clear()

    # -- subscription pinning ------------------------------------------

    def attach_subscription(self, select: Select) -> None:
        text = unparse(select)
        self._pins[text] = self._pins.get(text, 0) + 1

    def detach_subscription(self, select: Select) -> None:
        text = unparse(select)
        remaining = self._pins.get(text, 0) - 1
        if remaining > 0:
            self._pins[text] = remaining
        else:
            self._pins.pop(text, None)

    @property
    def pinned_count(self) -> int:
        return len(self._pins)

    # -- execution -----------------------------------------------------

    def execute_select(self, select: Select, tables, now: float) -> ResultSet:
        """Run ``select``; behaviourally identical to the legacy
        :func:`execute_select`, which remains the arbiter on any doubt."""
        text = unparse(select)
        entry = self._entry_for(select, tables, text)
        if entry.mode == MODE_LEGACY:
            self.metrics.fallback()
            return legacy_execute(select, tables, now)
        if self._share_now != now:
            # Scan sharing is only sound within one instant: windows and
            # now() are functions of the clock.
            self.share.clear()
            self._share_now = now
        timer = self.metrics.timer
        started = timer() if timer is not None else None
        registry = self.metrics.registry
        tick_span = (
            registry.span("query.tick", mode=entry.mode)
            if registry is not None
            else nullcontext()
        )
        try:
            with tick_span:
                if entry.mode == MODE_INCREMENTAL:
                    result = entry.state.tick(tables, now)
                    self.metrics.incremental_tick()
                else:
                    result = entry.plan.execute(
                        tables, now, share=self.share, timer=timer
                    )
                    self.metrics.full_tick()
        except HwdbError:
            # Hwdb-level conditions (table dropped mid-tick, ...) are the
            # legacy executor's to answer — same inputs, same outcome.
            self.metrics.fallback()
            return legacy_execute(select, tables, now)
        except Exception:
            logger.warning(
                "query engine failed on %r; poisoning entry to legacy mode",
                text,
                exc_info=True,
            )
            self.metrics.plan_error()
            entry.mode = MODE_LEGACY
            entry.reason = "runtime failure; see log"
            entry.state = None
            self.metrics.fallback()
            return legacy_execute(select, tables, now)
        if started is not None:
            self.metrics.observe_tick(timer() - started)
        self._record_share_metrics()
        return result

    def _record_share_metrics(self) -> None:
        self.metrics.share_hit(self.share.hits)
        self.metrics.share_miss(self.share.misses)
        self.share.hits = 0
        self.share.misses = 0

    # -- EXPLAIN -------------------------------------------------------

    def explain(self, statement: Explain, tables, now: float) -> ResultSet:
        select = statement.select
        text = unparse(select)
        entry = self._entry_for(select, tables, text)
        if statement.analyze:
            self.execute_select(select, tables, now)
            # The run may have poisoned (or re-created) the entry.
            entry = self._cache.get(text, entry)
        lines = render_plan(
            text,
            entry.mode,
            entry.reason,
            entry.plan,
            entry.state,
            statement.analyze,
        )
        return ResultSet(["plan"], [(line,) for line in lines], executed_at=now)

    # -- introspection -------------------------------------------------

    def cache_info(self) -> List[Tuple[str, str]]:
        """(query text, mode) pairs, LRU order — for tests and debugging."""
        return [(text, entry.mode) for text, entry in self._cache.items()]
