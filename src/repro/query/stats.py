"""Execution statistics for the query engine.

Two layers of accounting:

* :class:`OperatorStats` — per-operator row counts and cumulative wall
  time for one compiled plan, accumulated across executions.  This is
  what ``EXPLAIN ANALYZE`` renders.
* :class:`EngineMetrics` — engine-wide counters/histograms published to
  the :mod:`repro.obs` registry (``query.*`` namespace).  The registry
  object is injected, never imported, so this package stays below
  ``obs`` in the layer DAG.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class OperatorStats:
    """Rows/batches/seconds per plan-node id, summed over executions."""

    __slots__ = ("_rows", "_batches", "_seconds")

    def __init__(self) -> None:
        self._rows: Dict[int, int] = {}
        self._batches: Dict[int, int] = {}
        self._seconds: Dict[int, float] = {}

    def record(self, node_id: int, rows: int, seconds: float) -> None:
        self._rows[node_id] = self._rows.get(node_id, 0) + rows
        self._batches[node_id] = self._batches.get(node_id, 0) + 1
        self._seconds[node_id] = self._seconds.get(node_id, 0.0) + seconds

    def snapshot(self, node_id: int) -> Optional[Tuple[int, int, float]]:
        """``(rows_out, batches, cumulative_seconds)`` or None if never run."""
        if node_id not in self._batches:
            return None
        return (
            self._rows.get(node_id, 0),
            self._batches[node_id],
            self._seconds.get(node_id, 0.0),
        )

    def clear(self) -> None:
        self._rows.clear()
        self._batches.clear()
        self._seconds.clear()


class EngineMetrics:
    """None-safe wrapper over an injected :class:`MetricsRegistry`.

    Every method is a no-op when no registry is attached, so the engine
    runs identically (and cheaply) in bare databases and tests.
    """

    __slots__ = (
        "registry",
        "_cache_hit",
        "_cache_miss",
        "_incremental",
        "_full",
        "_fallback",
        "_plan_error",
        "_share_hit",
        "_share_miss",
        "_tick_seconds",
    )

    def __init__(self, registry=None) -> None:
        self.registry = registry
        if registry is None:
            self._cache_hit = None
            self._cache_miss = None
            self._incremental = None
            self._full = None
            self._fallback = None
            self._plan_error = None
            self._share_hit = None
            self._share_miss = None
            self._tick_seconds = None
        else:
            self._cache_hit = registry.counter("query.plan_cache_hit_total")
            self._cache_miss = registry.counter("query.plan_cache_miss_total")
            self._incremental = registry.counter("query.incremental_tick_total")
            self._full = registry.counter("query.full_tick_total")
            self._fallback = registry.counter("query.fallback_total")
            self._plan_error = registry.counter("query.plan_error_total")
            self._share_hit = registry.counter("query.share_hit_total")
            self._share_miss = registry.counter("query.share_miss_total")
            self._tick_seconds = registry.histogram("query.tick_seconds")

    @property
    def timer(self):
        """The registry's wall clock, or None when detached."""
        return None if self.registry is None else self.registry.clock

    def plan_cache_hit(self) -> None:
        if self._cache_hit is not None:
            self._cache_hit.inc()

    def plan_cache_miss(self) -> None:
        if self._cache_miss is not None:
            self._cache_miss.inc()

    def incremental_tick(self) -> None:
        if self._incremental is not None:
            self._incremental.inc()

    def full_tick(self) -> None:
        if self._full is not None:
            self._full.inc()

    def fallback(self) -> None:
        if self._fallback is not None:
            self._fallback.inc()

    def plan_error(self) -> None:
        if self._plan_error is not None:
            self._plan_error.inc()

    def share_hit(self, n: int = 1) -> None:
        if self._share_hit is not None and n:
            self._share_hit.inc(n)

    def share_miss(self, n: int = 1) -> None:
        if self._share_miss is not None and n:
            self._share_miss.inc(n)

    def observe_tick(self, seconds: float) -> None:
        if self._tick_seconds is not None:
            self._tick_seconds.observe(seconds)
