"""Incremental maintenance of windowed aggregate subscriptions.

A subscription re-runs its SELECT every interval.  For the common
Figure-1 shape — one table, a trailing window, GROUP BY + aggregates —
re-scanning the whole window each tick does O(window) work to account
for O(new rows) change.  This module keeps the windowed per-group state
*between* ticks instead: each tick ingests only the rows appended since
the last tick (delta scan on the table's append sequence number) and
evicts rows that fell out of the window, then recomputes the aggregates
from the retained per-row values.

Bit-identity with the legacy executor is non-negotiable (the engine's
acceptance tests diff row-for-row), which drives two design rules:

* **No running accumulators.**  A running ``sum += x`` then ``-= x``
  does not reproduce floating point exactly.  Instead each window entry
  stores the *ingest-time argument values* for every aggregate slot,
  and emit recomputes ``sum()/avg()/stddev()...`` with the executor's
  exact formulas over the values in window (sequence) order — the same
  list, in the same order, through the same arithmetic.
* **Evict exactly what a rescan would not see.**  Rows leave the state
  when the ring overwrote them (``seq <= table.overwritten``) or their
  timestamp left the window.  Both are checked on deque fronts only —
  sequence numbers and (clamped-monotone) timestamps are nondecreasing,
  so evictees are always a prefix.

Anything this module cannot maintain exactly — extra sources, ROWS/NOW
windows, DISTINCT, ``now()`` anywhere ingest-time state would capture
it — raises :class:`NotIncremental` at build time, and the engine runs
the compiled plan (or legacy executor) every tick instead.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Tuple

from ..core.errors import QueryError
from ..hwdb.cql.ast_nodes import (
    Binary,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    Literal,
    Projection,
    Unary,
    W_ALL,
    W_RANGE,
    W_SINCE,
)
from ..hwdb.cql.executor import (
    Binding,
    Evaluator,
    ResultSet,
    order_rows,
    truthy,
)
from ..hwdb.cql.parser import AGGREGATE_FUNCTIONS
from ..hwdb.cql.unparse import unparse_expr
from .plan import AggregateOp, DistinctOp, FilterOp, Plan, ScanOp


class NotIncremental(Exception):
    """This plan must be fully re-executed each tick.  Not an error —
    a routing decision, like :class:`~repro.query.plan.PlanNotSupported`."""


def _contains_now(expr: Expr) -> bool:
    if isinstance(expr, FunctionCall):
        if expr.name == "now":
            return True
        return any(_contains_now(a) for a in expr.args)
    if isinstance(expr, Unary):
        return _contains_now(expr.operand)
    if isinstance(expr, Binary):
        return _contains_now(expr.left) or _contains_now(expr.right)
    if isinstance(expr, InList):
        return _contains_now(expr.needle) or any(
            _contains_now(item) for item in expr.haystack
        )
    return False


# ----------------------------------------------------------------------
# Emit-time expression skeletons
# ----------------------------------------------------------------------

class _SlotRef(Expr):
    """Stand-in for an aggregate call: resolves to the slot's recomputed
    value at emit time."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __repr__(self) -> str:
        return f"_SlotRef({self.index})"


class _RepRef(Expr):
    """Stand-in for a bare column in aggregate context: resolves to the
    group's first (front) row's value — what ``group[0].resolve`` gives
    the legacy executor."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __repr__(self) -> str:
        return f"_RepRef({self.index})"


class _EmitEvaluator(Evaluator):
    """The executor's evaluator, with slot/rep markers short-circuited.

    Everything else — scalar functions, arithmetic, ``now()``, HAVING
    truthiness — goes through the inherited implementation, so emit
    arithmetic is the legacy arithmetic.
    """

    def __init__(self, now: float):
        super().__init__(now)
        self.slot_values: Tuple = ()
        self.rep_values: Tuple = ()

    def bind(self, slot_values: Tuple, rep_values: Tuple) -> None:
        self.slot_values = slot_values
        self.rep_values = rep_values

    def aggregate(self, expr: Expr, group) -> object:
        if isinstance(expr, _SlotRef):
            return self.slot_values[expr.index]
        if isinstance(expr, _RepRef):
            return self.rep_values[expr.index]
        return super().aggregate(expr, group)


class _SkeletonBuilder:
    """Rewrites aggregate-context expressions into emit skeletons,
    collecting deduplicated aggregate slots and representative columns."""

    def __init__(self) -> None:
        self.agg_slots: List[Tuple[str, bool, Optional[Expr]]] = []
        self._agg_keys: Dict[Tuple[str, bool, Optional[str]], int] = {}
        self.rep_slots: List[ColumnRef] = []
        self._rep_keys: Dict[str, int] = {}

    def _slot(self, call: FunctionCall) -> _SlotRef:
        arg = call.args[0] if call.args else None
        key = (call.name, call.star, unparse_expr(arg) if arg is not None else None)
        index = self._agg_keys.get(key)
        if index is None:
            index = len(self.agg_slots)
            self._agg_keys[key] = index
            self.agg_slots.append((call.name, call.star, arg))
        return _SlotRef(index)

    def _rep(self, ref: ColumnRef) -> _RepRef:
        key = unparse_expr(ref)
        index = self._rep_keys.get(key)
        if index is None:
            index = len(self.rep_slots)
            self._rep_keys[key] = index
            self.rep_slots.append(ref)
        return _RepRef(index)

    def transform(self, expr: Expr) -> Expr:
        if isinstance(expr, Literal):
            return expr
        if isinstance(expr, ColumnRef):
            return self._rep(expr)
        if isinstance(expr, Unary):
            return Unary(expr.op, self.transform(expr.operand))
        if isinstance(expr, Binary):
            return Binary(expr.op, self.transform(expr.left), self.transform(expr.right))
        if isinstance(expr, InList):
            return InList(
                self.transform(expr.needle),
                [self.transform(item) for item in expr.haystack],
                expr.negated,
            )
        if isinstance(expr, FunctionCall):
            if expr.name in AGGREGATE_FUNCTIONS:
                if expr.args and _contains_now(expr.args[0]):
                    raise NotIncremental(
                        f"now() inside {expr.name}() argument"
                    )
                return self._slot(expr)
            # Scalar call: now() and friends re-evaluate at emit time.
            return FunctionCall(
                expr.name, [self.transform(a) for a in expr.args], star=expr.star
            )
        raise NotIncremental(f"cannot build emit skeleton for {expr!r}")


# ----------------------------------------------------------------------
# The per-subscription state machine
# ----------------------------------------------------------------------

def _slot_value(name: str, star: bool, raw_values: List) -> object:
    """The legacy aggregate formulas, verbatim, over ingest-time values
    in window order (see :meth:`Evaluator._aggregate_function`)."""
    if name == "count":
        if star:
            return len(raw_values)
        return sum(1 for v in raw_values if v is not None)
    values = [v for v in raw_values if v is not None]
    if name == "sum":
        return sum(values) if values else 0
    if name == "avg":
        return sum(values) / len(values) if values else None
    if name == "min":
        return min(values) if values else None
    if name == "max":
        return max(values) if values else None
    if name == "first":
        return values[0] if values else None
    if name == "last":
        return values[-1] if values else None
    # stddev — the planner only emits names from AGGREGATE_FUNCTIONS.
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    total = sum((v - mean) ** 2 for v in values)
    return math.sqrt(total / (len(values) - 1))


class IncrementalState:
    """Materialised per-group window state for one subscription."""

    def __init__(
        self,
        plan: Plan,
        alias: str,
        table_name: str,
        window_kind: str,
        window_value: float,
        predicates: List[Expr],
        group_by: List[Expr],
        proj_skeletons: List[Expr],
        having_skeleton: Optional[Expr],
        agg_slots: List[Tuple[str, bool, Optional[Expr]]],
        rep_slots: List[ColumnRef],
    ):
        self.plan = plan
        self.alias = alias
        self.table_name = table_name
        self.window_kind = window_kind
        self.window_value = window_value
        self.predicates = predicates
        self.group_by = group_by
        self.proj_skeletons = proj_skeletons
        self.having_skeleton = having_skeleton
        self.agg_slots = agg_slots
        self.rep_slots = rep_slots
        # Ingest-time evaluation never touches now() (build_incremental
        # rejects it), so one fixed-clock evaluator serves every tick.
        self._ingest_ev = Evaluator(0.0)
        # Runtime state.
        self._table = None
        self._watermark = 0
        self._last_now = float("-inf")
        self._groups: "Dict[Tuple, deque]" = {}
        # Counters surfaced by EXPLAIN ANALYZE.
        self.ticks = 0
        self.rows_ingested = 0
        self.rows_evicted = 0
        self.resets = 0

    # -- bookkeeping ---------------------------------------------------

    @property
    def watermark(self) -> int:
        return self._watermark

    def entry_count(self) -> int:
        return sum(len(entries) for entries in self._groups.values())

    def group_count(self) -> int:
        return len(self._groups)

    def _reset(self, table) -> None:
        self._table = table
        self._watermark = table.overwritten
        self._groups.clear()
        self.resets += 1

    # -- the tick ------------------------------------------------------

    def tick(self, tables, now: float) -> ResultSet:
        table = tables.get(self.table_name)
        if table is None:
            raise QueryError(f"no such table {self.table_name!r}")
        if (
            table is not self._table
            or now < self._last_now
            or table.total_inserted < self._watermark
        ):
            # New table object, time went backwards, or the ring was
            # cleared/recreated under us: rebuild from what's retained.
            self._reset(table)
        self._last_now = now

        self._ingest(table)
        self._evict(table, now)
        return self._emit(now)

    def _ingest(self, table) -> None:
        evaluator = self._ingest_ev
        alias = self.alias
        predicates = self.predicates
        group_by = self.group_by
        agg_slots = self.agg_slots
        rep_slots = self.rep_slots
        for seq, row in table.rows_with_seq_since(self._watermark):
            binding = Binding({alias: (table, row)})
            keep = True
            for predicate in predicates:
                if not truthy(evaluator.scalar(predicate, binding)):
                    keep = False
                    break
            if not keep:
                continue
            key = tuple(evaluator.scalar(expr, binding) for expr in group_by)
            agg_values = tuple(
                None if arg is None else evaluator.scalar(arg, binding)
                for _name, _star, arg in agg_slots
            )
            rep_values = tuple(binding.resolve(ref) for ref in rep_slots)
            entries = self._groups.get(key)
            if entries is None:
                entries = deque()
                self._groups[key] = entries
            entries.append((seq, row.timestamp, agg_values, rep_values))
            self.rows_ingested += 1
        self._watermark = table.total_inserted

    def _evict(self, table, now: float) -> None:
        min_seq = table.overwritten
        if self.window_kind == W_SINCE:
            lower = self.window_value
        elif self.window_kind == W_RANGE:
            lower = now - self.window_value
        else:  # W_ALL: only ring overwrites evict.
            lower = float("-inf")
        emptied = []
        for key, entries in self._groups.items():
            while entries and (entries[0][0] <= min_seq or entries[0][1] < lower):
                entries.popleft()
                self.rows_evicted += 1
            if not entries:
                emptied.append(key)
        if self.group_by:
            for key in emptied:
                del self._groups[key]
        # Without GROUP BY the single global group legitimately goes
        # empty: the legacy executor still evaluates it (sum -> 0,
        # count(*) -> 0, avg -> None...), so it must survive here too.

    def _emit(self, now: float) -> ResultSet:
        self.ticks += 1
        if self.group_by:
            # Legacy group order is first occurrence in the current
            # window, i.e. ascending front sequence number.  Emptied
            # groups were deleted in _evict, so fronts always exist.
            groups = sorted(
                self._groups.values(), key=lambda entries: entries[0][0]
            )
        else:
            # The single global group survives empty — the legacy
            # executor still evaluates it (count(*) -> 0, sum -> 0...).
            groups = list(self._groups.values()) or [deque()]
        evaluator = _EmitEvaluator(now)
        out_rows: List[Tuple] = []
        for entries in groups:
            slot_values = tuple(
                _slot_value(name, star, [entry[2][i] for entry in entries])
                for i, (name, star, _arg) in enumerate(self.agg_slots)
            )
            if entries:
                rep_values = entries[0][3]
            else:
                rep_values = tuple(None for _ in self.rep_slots)
            evaluator.bind(slot_values, rep_values)
            if self.having_skeleton is not None and not truthy(
                evaluator.aggregate(self.having_skeleton, ())
            ):
                continue
            out_rows.append(
                tuple(
                    evaluator.aggregate(skeleton, ())
                    for skeleton in self.proj_skeletons
                )
            )
        plan = self.plan
        if plan.select.order_by:
            out_rows = order_rows(
                out_rows,
                plan.select.order_by,
                plan.projections,
                plan.columns,
                evaluator,
            )
        if plan.select.limit is not None:
            out_rows = out_rows[: plan.select.limit]
        return ResultSet(plan.columns, out_rows, executed_at=now)


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------

def build_incremental(plan: Plan) -> IncrementalState:
    """Derive incremental state from a compiled plan, or raise
    :class:`NotIncremental`.

    Works off the *optimized* plan so the incremental window is the
    tightened one and pushed predicates are already isolated.
    """
    select = plan.select
    if len(select.sources) != 1:
        raise NotIncremental("joins re-execute fully")
    if select.distinct:
        raise NotIncremental("DISTINCT re-executes fully")
    if not plan.aggregated:
        raise NotIncremental("non-aggregated queries re-execute fully")

    scan: Optional[ScanOp] = None
    predicates: List[Expr] = []
    aggregate: Optional[AggregateOp] = None
    for _depth, node in plan.nodes:
        if isinstance(node, ScanOp):
            scan = node
        elif isinstance(node, FilterOp):
            predicates.append(node.predicate)
        elif isinstance(node, AggregateOp):
            aggregate = node
        elif isinstance(node, DistinctOp):  # pragma: no cover — guarded above
            raise NotIncremental("DISTINCT re-executes fully")
    if scan is None or aggregate is None:
        raise NotIncremental("plan shape is not scan->aggregate")
    if scan.predicate is not None:
        predicates.insert(0, scan.predicate)

    window = scan.ref.window
    if window.kind not in (W_ALL, W_SINCE, W_RANGE):
        raise NotIncremental(f"window kind {window.kind!r} re-executes fully")

    for predicate in predicates:
        if _contains_now(predicate):
            raise NotIncremental("now() in WHERE captures ingest time")
    for expr in select.group_by:
        if _contains_now(expr):
            raise NotIncremental("now() in GROUP BY captures ingest time")

    builder = _SkeletonBuilder()
    proj_skeletons = [builder.transform(p.expr) for p in plan.projections]
    having_skeleton = (
        builder.transform(select.having) if select.having is not None else None
    )

    return IncrementalState(
        plan=plan,
        alias=scan.ref.alias,
        table_name=scan.ref.table,
        window_kind=window.kind,
        window_value=window.value,
        predicates=predicates,
        group_by=select.group_by,
        proj_skeletons=proj_skeletons,
        having_skeleton=having_skeleton,
        agg_slots=builder.agg_slots,
        rep_slots=builder.rep_slots,
    )
