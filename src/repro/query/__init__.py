"""repro.query — incremental continuous-query engine for hwdb.

Compiles CQL SELECTs into operator-DAG plans, maintains windowed
aggregates incrementally between subscription ticks, shares scans
across subscriptions, and falls back to the legacy executor whenever it
cannot prove bit-identical behaviour.  See DESIGN.md §12.
"""

from .engine import QueryEngine
from .incremental import NotIncremental, build_incremental
from .plan import Plan, PlanNotSupported, compile_select

__all__ = [
    "QueryEngine",
    "Plan",
    "PlanNotSupported",
    "compile_select",
    "NotIncremental",
    "build_incremental",
]
