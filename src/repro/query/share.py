"""Cross-subscription scan sharing.

Many UI subscriptions watch the same table through the same window with
the same pushed-down predicate (every per-device bandwidth view asks for
``flows [RANGE w SECONDS]``).  When the engine re-evaluates them in the
same tick, the windowed + filtered row list is identical, so scans
publish their output here and later scans in the tick reuse it.

Correctness hinges on the key: it pins the table *object* (``id``), the
window, the pushed predicate (alias-normalised text), and the table's
append sequence, and the engine clears the whole cache whenever the
query clock moves — so a hit can only ever return exactly the rows the
scan would have produced itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

ShareKey = Tuple[str, int, str, float, int, Optional[str]]


class ShareCache:
    """One tick's worth of shared scan outputs, keyed by :data:`ShareKey`."""

    __slots__ = ("_entries", "hits", "misses")

    def __init__(self) -> None:
        self._entries: Dict[ShareKey, List] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: ShareKey) -> Optional[List]:
        rows = self._entries.get(key)
        if rows is None:
            self.misses += 1
            return None
        self.hits += 1
        return rows

    def put(self, key: ShareKey, rows: List) -> None:
        self._entries[key] = rows

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
