"""Router configuration.

One dataclass-style object describing the home deployment: the subnet,
the router's own addresses, lease policy defaults and service knobs.
Mirrors what the Homework router reads at boot.
"""

from __future__ import annotations

from typing import Optional, Union

from ..net.addresses import IPv4Address, IPv4Network, MACAddress
from .errors import ConfigError


class RouterConfig:
    """Configuration for a :class:`~repro.core.router.HomeworkRouter`."""

    def __init__(
        self,
        subnet: Union[str, IPv4Network] = "10.2.0.0/16",
        router_ip: Optional[Union[str, IPv4Address]] = None,
        router_mac: Union[str, MACAddress] = "02:00:00:00:00:01",
        upstream_ip: Union[str, IPv4Address] = "82.10.0.1",
        dns_upstream: Union[str, IPv4Address] = "8.8.8.8",
        lease_time: float = 3600.0,
        isolate_devices: bool = True,
        default_permit: bool = False,
        hwdb_buffer_rows: int = 4096,
        flow_poll_interval: float = 1.0,
        flow_idle_timeout: float = 60.0,
        control_api_port: int = 8080,
        control_api_token: str = "homework",
        nat_enabled: bool = False,
        nat_idle_timeout: float = 300.0,
        metrics_flush_interval: float = 5.0,
        durable_store: bool = False,
        store_dir: Optional[str] = None,
        store_flush_interval: float = 0.25,
        store_group_records: int = 64,
        store_segment_rows: int = 256,
        store_fsync: bool = False,
        trace_enabled: bool = False,
        trace_sample: float = 0.01,
        trace_buffer: int = 256,
    ):
        self.subnet = subnet if isinstance(subnet, IPv4Network) else IPv4Network(subnet)
        if self.subnet.prefixlen > 24 and isolate_devices:
            raise ConfigError(
                "isolating allocation needs a subnet of /24 or wider "
                f"(got /{self.subnet.prefixlen})"
            )
        if router_ip is None:
            self.router_ip = next(self.subnet.hosts())
        else:
            self.router_ip = IPv4Address(router_ip)
            if self.router_ip not in self.subnet:
                raise ConfigError(
                    f"router IP {self.router_ip} outside subnet {self.subnet}"
                )
        self.router_mac = MACAddress(router_mac)
        self.upstream_ip = IPv4Address(upstream_ip)
        self.dns_upstream = IPv4Address(dns_upstream)
        if lease_time <= 0:
            raise ConfigError(f"lease_time must be positive, got {lease_time}")
        self.lease_time = float(lease_time)
        self.isolate_devices = bool(isolate_devices)
        self.default_permit = bool(default_permit)
        if hwdb_buffer_rows <= 0:
            raise ConfigError("hwdb_buffer_rows must be positive")
        self.hwdb_buffer_rows = int(hwdb_buffer_rows)
        if flow_poll_interval <= 0:
            raise ConfigError("flow_poll_interval must be positive")
        self.flow_poll_interval = float(flow_poll_interval)
        if flow_idle_timeout <= 0:
            raise ConfigError("flow_idle_timeout must be positive")
        self.flow_idle_timeout = float(flow_idle_timeout)
        if not 0 < control_api_port <= 0xFFFF:
            raise ConfigError(f"bad control_api_port: {control_api_port}")
        self.control_api_port = int(control_api_port)
        self.control_api_token = str(control_api_token)
        self.nat_enabled = bool(nat_enabled)
        if nat_idle_timeout <= 0:
            raise ConfigError("nat_idle_timeout must be positive")
        self.nat_idle_timeout = float(nat_idle_timeout)
        if metrics_flush_interval <= 0:
            raise ConfigError("metrics_flush_interval must be positive")
        self.metrics_flush_interval = float(metrics_flush_interval)
        self.durable_store = bool(durable_store)
        self.store_dir = str(store_dir) if store_dir is not None else None
        if store_flush_interval <= 0:
            raise ConfigError("store_flush_interval must be positive")
        self.store_flush_interval = float(store_flush_interval)
        if store_group_records <= 0:
            raise ConfigError("store_group_records must be positive")
        self.store_group_records = int(store_group_records)
        if store_segment_rows <= 0:
            raise ConfigError("store_segment_rows must be positive")
        self.store_segment_rows = int(store_segment_rows)
        self.store_fsync = bool(store_fsync)
        self.trace_enabled = bool(trace_enabled)
        if not 0.0 <= trace_sample <= 1.0:
            raise ConfigError(f"trace_sample must be within [0, 1]: {trace_sample}")
        self.trace_sample = float(trace_sample)
        if trace_buffer <= 0:
            raise ConfigError("trace_buffer must be positive")
        self.trace_buffer = int(trace_buffer)

    def __repr__(self) -> str:
        return (
            f"RouterConfig(subnet={self.subnet}, router_ip={self.router_ip}, "
            f"isolate_devices={self.isolate_devices}, "
            f"default_permit={self.default_permit})"
        )
