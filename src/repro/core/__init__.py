"""Core primitives: clock, event bus, configuration, errors, router façade."""

from .clock import Clock, SimulatedClock, WallClock
from .config import RouterConfig
from .errors import (
    ConfigError,
    ControllerError,
    DatapathError,
    HwdbError,
    PolicyError,
    QueryError,
    ReproError,
    RpcError,
    ServiceError,
    SimulationError,
)
from .events import Event, EventBus, Subscription

__all__ = [
    "Clock",
    "SimulatedClock",
    "WallClock",
    "RouterConfig",
    "ReproError",
    "ConfigError",
    "SimulationError",
    "DatapathError",
    "ControllerError",
    "HwdbError",
    "QueryError",
    "RpcError",
    "ServiceError",
    "PolicyError",
    "Event",
    "EventBus",
    "Subscription",
]
