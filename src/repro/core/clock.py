"""Clock abstraction.

Everything in the reproduction reads time through a :class:`Clock` so the
whole router can run under the discrete-event simulator (deterministic,
faster than real time) or against the wall clock. hwdb timestamps, DHCP
lease expiry, policy schedules and the artifact's animation all consume
the same clock instance.
"""

from __future__ import annotations

import time
from typing import Callable


class Clock:
    """Abstract time source; seconds since an arbitrary epoch."""

    def now(self) -> float:
        raise NotImplementedError

    def __call__(self) -> float:
        return self.now()


class WallClock(Clock):
    """Real time via ``time.monotonic`` offset to a fixed epoch."""

    def __init__(self) -> None:
        self._epoch = time.time() - time.monotonic()

    def now(self) -> float:
        return self._epoch + time.monotonic()


class SimulatedClock(Clock):
    """Manually advanced time, driven by the event simulator."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, when: float) -> None:
        """Move time forward to ``when``; time never goes backwards."""
        if when < self._now:
            raise ValueError(
                f"clock cannot go backwards: {when} < {self._now}"
            )
        self._now = float(when)

    def advance(self, delta: float) -> None:
        """Move time forward by ``delta`` seconds."""
        if delta < 0:
            raise ValueError(f"negative clock advance: {delta}")
        self._now += float(delta)


ClockSource = Callable[[], float]
