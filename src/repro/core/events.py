"""Publish/subscribe event bus.

The paper's architecture is event-driven end to end: datapath misses
become NOX packet-in events, DHCP lease changes fan out to hwdb and the
artifact, and UI actions invoke control handlers.  This bus is the
in-process backbone tying those pieces together.
"""

from __future__ import annotations

import logging
from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional

logger = logging.getLogger(__name__)

Handler = Callable[["Event"], None]


class Event:
    """A named event with arbitrary keyword data.

    Data fields are exposed as attributes: ``Event("lease.granted",
    mac=..., ip=...)`` has ``.mac`` and ``.ip``.
    """

    __slots__ = ("name", "data", "timestamp")

    def __init__(self, name: str, /, timestamp: float = 0.0, **data: Any):
        self.name = name
        self.timestamp = timestamp
        self.data: Dict[str, Any] = data

    def __getattr__(self, key: str) -> Any:
        try:
            return self.data[key]
        except KeyError:
            raise AttributeError(f"event {self.name!r} has no field {key!r}") from None

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in self.data.items())
        return f"Event({self.name!r}, t={self.timestamp:.6f}, {fields})"


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; call ``cancel()``."""

    __slots__ = ("_bus", "_pattern", "_handler", "active")

    def __init__(self, bus: "EventBus", pattern: str, handler: Handler):
        self._bus = bus
        self._pattern = pattern
        self._handler = handler
        self.active = True

    def cancel(self) -> None:
        if self.active:
            self._bus._unsubscribe(self._pattern, self._handler)
            self.active = False


class EventBus:
    """Synchronous topic-based pub/sub with prefix wildcards.

    Patterns are exact names (``"dhcp.lease.granted"``) or prefixes ending
    in ``.*`` (``"dhcp.*"`` matches every event under ``dhcp.``). ``"*"``
    matches everything.  Handlers run synchronously in subscription order;
    a raising handler is logged and skipped, never breaking the publisher.
    """

    def __init__(self) -> None:
        self._exact: Dict[str, List[Handler]] = defaultdict(list)
        self._prefix: Dict[str, List[Handler]] = defaultdict(list)
        self._wildcard: List[Handler] = []
        self._published = 0
        self._delivered = 0
        self._handler_errors = 0

    def subscribe(self, pattern: str, handler: Handler) -> Subscription:
        """Register ``handler`` for events matching ``pattern``."""
        if pattern == "*":
            self._wildcard.append(handler)
        elif pattern.endswith(".*"):
            self._prefix[pattern[:-2]].append(handler)
        else:
            self._exact[pattern].append(handler)
        return Subscription(self, pattern, handler)

    def _unsubscribe(self, pattern: str, handler: Handler) -> None:
        if pattern == "*":
            bucket: Optional[List[Handler]] = self._wildcard
        elif pattern.endswith(".*"):
            bucket = self._prefix.get(pattern[:-2])
        else:
            bucket = self._exact.get(pattern)
        if bucket and handler in bucket:
            bucket.remove(handler)

    def publish(self, event: Event) -> int:
        """Deliver ``event``; returns the number of handlers invoked."""
        self._published += 1
        handlers: List[Handler] = []
        handlers.extend(self._exact.get(event.name, ()))
        name = event.name
        while "." in name:
            name = name.rsplit(".", 1)[0]
            handlers.extend(self._prefix.get(name, ()))
        handlers.extend(self._wildcard)
        count = 0
        for handler in handlers:
            try:
                handler(event)
                count += 1
            except Exception:  # noqa: BLE001 - isolate subscriber faults
                self._handler_errors += 1
                logger.exception("event handler failed for %s", event.name)
        self._delivered += count
        return count

    def emit(self, name: str, /, timestamp: float = 0.0, **data: Any) -> int:
        """Shorthand for ``publish(Event(name, timestamp, **data))``.

        ``name`` is positional-only so it stays usable as an event data
        field (e.g. DNS events carry a ``name=`` payload key).
        """
        return self.publish(Event(name, timestamp, **data))

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "published": self._published,
            "delivered": self._delivered,
            "handler_errors": self._handler_errors,
        }
