"""The Homework router: the whole of paper Figure 5 in one object.

Assembles the software stack of the paper's small-form-factor home
router: the Open vSwitch-style datapath (``dp0``), the NOX controller
with the DHCP server / DNS proxy / routing / control API components, the
hwdb measurement database with its collectors and RPC server, the policy
engine and the udev USB monitor — all on one discrete-event simulator.

Typical use::

    sim = Simulator(seed=1)
    router = HomeworkRouter(sim)
    laptop = router.add_device("toms-air", "02:aa:00:00:00:01", wireless=True)
    router.start()
    laptop.start_dhcp()          # pending until permitted
    router.control_api.request("POST", f"/devices/{laptop.mac}/permit")
    sim.run_for(10)
"""

from __future__ import annotations

import logging
import tempfile
from typing import Dict, List, Optional, Tuple, Union

from ..hwdb.database import HomeworkDatabase
from ..hwdb.rpc import HwdbClient, LocalTransport, RpcServer
from ..hwdb.schema import install_standard_schema
from ..measurement.aggregator import BandwidthAggregator
from ..measurement.collectors import FlowCollector, LeaseCollector, LinkCollector
from ..net.addresses import IPv4Address, MACAddress
from ..nox.controller import Controller
from ..obs import MetricsFlusher, MetricsRegistry, Tracer
from ..openflow.channel import SecureChannel
from ..openflow.datapath import Datapath
from ..policy.engine import PolicyEngine
from ..query.engine import QueryEngine
from ..services.control_api.api import ControlApi
from ..services.dhcp.server import DhcpServer
from ..services.dnsproxy.proxy import DnsProxy
from ..services.dnsproxy.upstream import UpstreamResolver
from ..services.routing import RouterCore
from ..services.udev.monitor import UdevMonitor
from ..sim.host import Host
from ..sim.link import Link, WirelessLink
from ..sim.simulator import Simulator
from ..sim.upstream import InternetCloud
from ..sim.wireless import RadioEnvironment
from ..store import DurableStore
from .config import RouterConfig
from .errors import ConfigError

logger = logging.getLogger(__name__)


class HomeworkRouter:
    """Facade wiring every subsystem of the reproduction together."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[RouterConfig] = None,
        cloud: Optional[InternetCloud] = None,
        channel_latency: float = 0.0005,
        radio: Optional[RadioEnvironment] = None,
    ):
        self.sim = sim
        self.config = config or RouterConfig()
        self.bus = sim.bus

        # --- telemetry (obs subsystem) ---------------------------------------
        # Created first: every subsystem below reports into it.
        self.metrics = MetricsRegistry()
        # The packet-lineage flight recorder (DESIGN.md §16).  Hosts mint
        # contexts from it at frame TX; everything downstream reads the
        # context off the frame itself, so only the edges need wiring.
        self.tracer = Tracer(
            clock=sim.clock.now,
            sample=self.config.trace_sample,
            enabled=self.config.trace_enabled,
            buffer=self.config.trace_buffer,
            registry=self.metrics,
        )

        # --- datapath + secure channel + NOX --------------------------------
        self.datapath = Datapath(sim, datapath_id=1, name="dp0", registry=self.metrics)
        self.channel = SecureChannel(sim, latency=channel_latency)
        self.controller = Controller(sim, registry=self.metrics)
        self.channel.connect(self.datapath, self.controller.receive)
        self.controller.connect(self.channel)

        # --- upstream ---------------------------------------------------------
        self.cloud = cloud or InternetCloud(sim, ip=self.config.upstream_ip)
        # Return traffic gets its own lineage (NAT de-translation etc.).
        self.cloud.tracer = self.tracer
        upstream = self.datapath.add_port("upstream")
        self.upstream_port = upstream.number
        self.upstream_link = Link(
            sim, upstream, self.cloud.port, latency=0.005, bandwidth_bps=100e6
        )
        # The cloud routes everything back through the router.
        router_upstream_ip = IPv4Address(self.config.upstream_ip) + 1
        self.cloud.netmask = IPv4Address("255.255.255.252")
        self.cloud.gateway = router_upstream_ip

        # --- hwdb --------------------------------------------------------------
        self.db = HomeworkDatabase(
            sim.clock, self.config.hwdb_buffer_rows, registry=self.metrics
        )
        install_standard_schema(self.db)
        self.db.attach_scheduler(sim)
        # Optional durable tier under the rings.  Attached before the
        # query engine exists, so the engine's first compile already
        # sees the spill hooks and routes around incremental mode.
        self.store: Optional[DurableStore] = None
        self._store_tmp: Optional[tempfile.TemporaryDirectory] = None
        self._store_flush_timer = None
        if self.config.durable_store:
            if self.config.store_dir is None:
                self._store_tmp = tempfile.TemporaryDirectory(prefix="repro-store-")
                store_root = self._store_tmp.name
            else:
                store_root = self.config.store_dir
            self.store = DurableStore(
                store_root,
                sim.clock,
                flush_interval=self.config.store_flush_interval,
                group_records=self.config.store_group_records,
                segment_rows=self.config.store_segment_rows,
                fsync=self.config.store_fsync,
                registry=self.metrics,
            )
            self.store.attach(self.db)
        # The continuous-query engine self-attaches to the database:
        # every SELECT (ad-hoc, RPC, subscription) now routes through
        # its plan cache and incremental maintenance.
        self.query_engine = QueryEngine(self.db, registry=self.metrics)
        self.rpc_server = RpcServer(self.db, registry=self.metrics)
        self.aggregator = BandwidthAggregator(self.db)

        # Snapshots land in the hwdb Metrics table, queryable/subscribable
        # like Flows; port gauges refresh lazily at each flush.
        self.metrics_flusher = MetricsFlusher(
            self.db, self.metrics, interval=self.config.metrics_flush_interval
        )
        self.metrics_flusher.add_collector(self._collect_port_gauges)
        self.metrics_flusher.add_collector(self._publish_traces)

        # --- NOX components (paper's shaded boxes) ------------------------------
        self.dhcp: DhcpServer = self.controller.add_component(
            DhcpServer, config=self.config, bus=self.bus
        )
        self.upstream_resolver = UpstreamResolver(sim, zone=self.cloud)
        self.dns_proxy: DnsProxy = self.controller.add_component(
            DnsProxy,
            config=self.config,
            bus=self.bus,
            upstream=self.upstream_resolver,
            dhcp=self.dhcp,
        )
        self.router_core: RouterCore = self.controller.add_component(
            RouterCore,
            config=self.config,
            bus=self.bus,
            dhcp=self.dhcp,
            dns_proxy=self.dns_proxy,
            upstream_port=self.upstream_port,
            upstream_mac=self.cloud.mac,
        )
        self.policy_engine = PolicyEngine(
            self.bus,
            dhcp=self.dhcp,
            site_filter=self.dns_proxy.filter,
            router_core=self.router_core,
        )
        self.control_api: ControlApi = self.controller.add_component(
            ControlApi,
            config=self.config,
            bus=self.bus,
            dhcp=self.dhcp,
            dns_proxy=self.dns_proxy,
            policy_engine=self.policy_engine,
            router_core=self.router_core,
            hwdb=self.db,
        )
        self.udev = UdevMonitor(self.control_api, self.bus)
        # Lets the deny-verdict hop name the policy documents behind it.
        self.router_core.policy_engine = self.policy_engine

        # --- measurement plane ------------------------------------------------
        self.flow_collector = FlowCollector(
            sim, self.controller, self.db, interval=self.config.flow_poll_interval
        )
        self.link_collector = LinkCollector(sim, self.db, interval=1.0)
        self.lease_collector = LeaseCollector(self.bus, self.db)

        # --- wireless environment ----------------------------------------------
        self.radio = radio or RadioEnvironment(ap_position=(0.0, 0.0))

        self._devices: Dict[str, Host] = {}
        self._device_links: Dict[str, Link] = {}
        self._started = False

    # ------------------------------------------------------------------
    # Device management
    # ------------------------------------------------------------------

    def add_device(
        self,
        name: str,
        mac: Union[str, MACAddress],
        wireless: bool = False,
        position: Optional[Tuple[float, float]] = None,
        device_class: str = "generic",
        bandwidth_bps: Optional[float] = None,
    ) -> Host:
        """Attach a household device to the router.

        Wireless devices get a :class:`WirelessLink` whose RSSI tracks
        their ``position`` in the radio environment; wired devices get a
        gigabit :class:`Link`.
        """
        if name in self._devices:
            raise ConfigError(f"device {name!r} already attached")
        host = Host(self.sim, name, mac, device_class=device_class)
        port = self.datapath.add_port(name)
        if wireless:
            link: Link = WirelessLink(
                self.sim,
                host.port,
                port,
                bandwidth_bps=bandwidth_bps or 54e6,
            )
            self.radio.register(name, link, position or (5.0, 5.0))
        else:
            link = Link(
                self.sim, host.port, port, bandwidth_bps=bandwidth_bps or 1e9
            )
        host.tracer = self.tracer
        self._devices[name] = host
        self._device_links[name] = link
        self.link_collector.register(host.mac, link)
        return host

    def device(self, name: str) -> Host:
        return self._devices[name]

    def devices(self) -> List[Host]:
        return list(self._devices.values())

    def device_link(self, name: str) -> Link:
        return self._device_links[name]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic work: flow expiry, collectors."""
        if self._started:
            return
        self._started = True
        self.datapath.start_expiry(interval=1.0)
        self.flow_collector.start()
        self.link_collector.start()
        self.metrics_flusher.start(self.sim)
        self.policy_engine.start_scheduler(self.sim, interval=30.0)
        if self.store is not None:
            # Group commit needs a heartbeat: appends only check the
            # clock when they happen, so an idle table's tail would sit
            # unflushed forever without this.
            self._store_flush_timer = self.sim.schedule_periodic(
                self.config.store_flush_interval, self.store.flush
            )

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        self.flow_collector.stop()
        self.link_collector.stop()
        self.metrics_flusher.stop()
        self.policy_engine.stop_scheduler()
        if self._store_flush_timer is not None:
            self._store_flush_timer.cancel()
            self._store_flush_timer = None
        if self.store is not None:
            self.store.flush()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def _collect_port_gauges(self) -> None:
        """Refresh per-port byte/packet gauges from the datapath.

        Runs at metrics-flush time, not per packet: byte totals are
        already accumulated on the ports, so a snapshot is pure reads.
        """
        for number, port in self.datapath.ports().items():
            base = f"router.port.{number}"
            self.metrics.gauge(f"{base}.rx_bytes").set(port.rx_bytes)
            self.metrics.gauge(f"{base}.tx_bytes").set(port.tx_bytes)
            self.metrics.gauge(f"{base}.rx_packets").set(port.rx_packets)
            self.metrics.gauge(f"{base}.tx_packets").set(port.tx_packets)
        self.metrics.gauge("openflow.cache_entries").set(self.datapath.cache_len())
        self.metrics.gauge("openflow.flow_table_entries").set(len(self.datapath.table))

    def _publish_traces(self) -> None:
        """Drain finished lineages into the hwdb Traces stream table.

        Rides the metrics flusher so lineage is queryable/subscribable
        like every other table.  Publication is gated separately from
        tracing itself: the fuzzer traces in memory with publication off
        so hwdb insert counts (and hence run digests) never move.
        """
        if not self.tracer.enabled or not self.tracer.publish_enabled:
            return
        for row in self.tracer.export_rows():
            self.db.insert("traces", row)

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------

    def hwdb_client(self) -> HwdbClient:
        """A new in-process client for the hwdb RPC (what UIs use)."""
        return HwdbClient(LocalTransport(self.rpc_server))

    def enable_rpc_gateway(self) -> IPv4Address:
        """Expose hwdb's RPC on real UDP through the datapath.

        Attaches an internal management station ("hwdbd") to a dedicated
        datapath port with a pre-bound lease, and binds the RPC server to
        its UDP port 987.  Returns the address satellite devices dial —
        the paper's actual transport for the iPhone/Arduino interfaces.
        """
        if getattr(self, "rpc_gateway", None) is not None:
            return self._rpc_gateway_ip
        from ..hwdb.udp_gateway import HwdbUdpGateway

        mgmt = Host(self.sim, "hwdbd", "02:00:00:00:00:02", device_class="infrastructure")
        port = self.datapath.add_port("mgmt")
        Link(self.sim, mgmt.port, port, latency=0.0001, bandwidth_bps=1e9)
        allocation = self.dhcp.pool.allocate(mgmt.mac)
        self.dhcp.policy.permit(mgmt.mac, self.sim.now)
        self.dhcp.leases.offer(
            mgmt.mac, allocation, "hwdbd", self.sim.now, lease_time=1e12
        )
        self.dhcp.leases.bind(mgmt.mac, self.sim.now, lease_time=1e12)
        mgmt.configure_static(
            allocation.ip, allocation.netmask, gateway=allocation.gateway
        )
        self.router_core.mac_to_port[mgmt.mac] = port.number
        self.rpc_gateway = HwdbUdpGateway(mgmt, self.rpc_server)
        self._rpc_gateway_ip = allocation.ip
        return allocation.ip

    def permit(self, device: Union[str, Host, MACAddress]) -> None:
        """Shorthand for the control-API permit call."""
        mac = self._mac_of(device)
        self.control_api.request("POST", f"/devices/{mac}/permit")

    def deny(self, device: Union[str, Host, MACAddress]) -> None:
        mac = self._mac_of(device)
        self.control_api.request("POST", f"/devices/{mac}/deny")

    def _mac_of(self, device: Union[str, Host, MACAddress]) -> MACAddress:
        if isinstance(device, Host):
            return device.mac
        if isinstance(device, str) and device in self._devices:
            return self._devices[device].mac
        return MACAddress(device)

    def stats(self) -> Dict[str, object]:
        """A status snapshot across subsystems."""
        return {
            "time": self.sim.now,
            "datapath": {
                "flows": len(self.datapath.table),
                "cache": self.datapath.cache_len(),
                "cache_hits": self.datapath.cache_hits,
                "table_hits": self.datapath.table_hits,
                "misses": self.datapath.misses,
            },
            "dhcp": {
                "discovers": self.dhcp.discovers,
                "offers": self.dhcp.offers,
                "acks": self.dhcp.acks,
                "naks": self.dhcp.naks,
                "withheld": self.dhcp.withheld,
                "leases": len(self.dhcp.leases),
            },
            "dns": {
                "queries": self.dns_proxy.queries_seen,
                "blocked": self.dns_proxy.queries_blocked,
                "cache_answers": self.dns_proxy.cache_answers,
                "flow_checks": self.dns_proxy.flow_checks,
                "flow_blocks": self.dns_proxy.flow_blocks,
            },
            "routing": {
                "flows_installed": self.router_core.flows_installed,
                "flows_blocked": self.router_core.flows_blocked,
                "arp_replies": self.router_core.arp_replies,
            },
            "hwdb": self.db.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"HomeworkRouter(devices={len(self._devices)}, "
            f"flows={len(self.datapath.table)}, started={self._started})"
        )
