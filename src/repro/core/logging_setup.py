"""CLI logging configuration, shared by every ``python -m repro`` entry.

All CLI output flows through ``logging`` (the library never calls
``print()`` — repro-lint enforces that); this module owns the one
handler that makes that pleasant both interactively and under pytest's
capture.  It lives in ``repro.core`` so subcommand packages on any layer
(``repro.check``, ``repro.analysis``, ``repro.fleet``) can configure
logging without importing the CLI root above them.
"""

from __future__ import annotations

import logging
import sys


class _StdoutHandler(logging.StreamHandler):
    """A StreamHandler that always writes to the *current* sys.stdout.

    Capturing harnesses (pytest's capsys) swap sys.stdout per test; a
    handler holding the stream it was created with would keep writing to
    a dead buffer.  Resolving the stream at emit time keeps "configure
    logging once" true even under capture.
    """

    def __init__(self) -> None:
        super().__init__(stream=sys.stdout)

    @property
    def stream(self):  # type: ignore[override]
        return sys.stdout

    @stream.setter
    def stream(self, value) -> None:  # the base __init__ assigns; ignore it
        pass


def configure_logging(verbose: bool = False) -> None:
    """Configure the ``repro`` logging tree exactly once per process."""
    root = logging.getLogger("repro")
    if not any(isinstance(h, _StdoutHandler) for h in root.handlers):
        root.addHandler(_StdoutHandler())
        root.propagate = False
    for handler in root.handlers:
        if isinstance(handler, _StdoutHandler):
            handler.setFormatter(
                logging.Formatter("%(name)s %(levelname)s %(message)s" if verbose else "%(message)s")
            )
    root.setLevel(logging.DEBUG if verbose else logging.INFO)


__all__ = ["configure_logging"]
