"""Exception hierarchy for the Homework router reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """Invalid router or component configuration."""


class SimulationError(ReproError):
    """Raised by the discrete-event simulator on misuse."""


class DatapathError(ReproError):
    """Raised by the OpenFlow datapath (bad ports, malformed mods...)."""


class ControllerError(ReproError):
    """Raised by the NOX controller core."""


class HwdbError(ReproError):
    """Raised by the Homework database."""


class QueryError(HwdbError):
    """Raised on malformed or unexecutable CQL queries."""


class RpcError(HwdbError):
    """Raised by the hwdb UDP RPC layer."""


class ServiceError(ReproError):
    """Raised by router services (DHCP, DNS proxy, control API)."""


class StoreError(ReproError):
    """Raised by the durable storage tier (WAL, segments, recovery)."""


class FleetError(ReproError):
    """Fleet orchestration failure: bad checkpoint, divergent restore."""


class PolicyError(ReproError):
    """Raised by the policy model/compiler."""
