"""Ring-buffer stream tables.

"The Homework Database, hwdb, provides measurement support as an active
ephemeral stream database which stores ephemeral events into a fixed size
memory buffer.  It links events into tables..."  A :class:`StreamTable`
is exactly that: a fixed-capacity circular buffer of timestamped rows.
Old rows are overwritten, never moved — append is O(1) regardless of
history length (the property experiment T1 measures).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import HwdbError
from .types import Column, ColumnType, TIMESTAMP

#: Name of the implicit timestamp column present on every table.
TS_COLUMN = "timestamp"


class Row:
    """One event: a timestamp plus the schema's values, attribute-accessible."""

    __slots__ = ("timestamp", "values")

    def __init__(self, timestamp: float, values: Tuple):
        self.timestamp = timestamp
        self.values = values

    def __repr__(self) -> str:
        return f"Row(t={self.timestamp:.6f}, {self.values!r})"


class StreamTable:
    """A typed circular buffer of rows.

    ``capacity`` rows are preallocated; insertion past capacity reclaims
    the oldest slot.  Rows are timestamped on insert (monotonically per
    table), so range scans can early-terminate.
    """

    def __init__(self, name: str, columns: Sequence[Column], capacity: int = 4096):
        if capacity <= 0:
            raise HwdbError(f"table capacity must be positive, got {capacity}")
        seen = set()
        for column in columns:
            if column.name == TS_COLUMN:
                raise HwdbError(f"column name {TS_COLUMN!r} is reserved")
            if column.name in seen:
                raise HwdbError(f"duplicate column {column.name!r}")
            seen.add(column.name)
        self.name = name.lower()
        self.columns: List[Column] = list(columns)
        self.capacity = capacity
        self._index: Dict[str, int] = {
            column.name: i for i, column in enumerate(self.columns)
        }
        self._buffer: List[Optional[Row]] = [None] * capacity
        self._head = 0  # next write slot
        self._count = 0  # rows currently stored (<= capacity)
        self.total_inserted = 0
        self.last_timestamp = float("-inf")
        #: Duck-typed durable-tier hooks (set by repro.store, never by
        #: hwdb itself): ``spill`` receives on_append/on_evict/on_clear,
        #: ``archive`` serves scan_since for tier-spanning windows.
        self.spill = None
        self.archive = None

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index or name.lower() == TS_COLUMN

    def column_position(self, name: str) -> int:
        """Position in the value tuple; raises for the timestamp column."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise HwdbError(f"table {self.name!r} has no column {name!r}") from None

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def insert(self, timestamp: float, values: Sequence[Any]) -> Row:
        """Append one event; values are coerced to the column types."""
        if len(values) != len(self.columns):
            raise HwdbError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        coerced = tuple(
            column.ctype.coerce(value)
            for column, value in zip(self.columns, values)
        )
        # Clamp to keep timestamps monotone (events arriving same-tick).
        timestamp = max(float(timestamp), self.last_timestamp)
        self.last_timestamp = timestamp
        row = Row(timestamp, coerced)
        spill = self.spill
        if spill is not None and self._count == self.capacity:
            evicted = self._buffer[self._head]
            if evicted is not None:
                # The slot's occupant leaves the ring right now; its seq
                # is total_inserted - capacity + 1 (pre-increment).
                spill.on_evict(self, self.total_inserted - self.capacity + 1, evicted)
        self._buffer[self._head] = row
        self._head = (self._head + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1
        self.total_inserted += 1
        if spill is not None:
            spill.on_append(self, self.total_inserted, row)
        return row

    def insert_dict(self, timestamp: float, record: Dict[str, Any]) -> Row:
        """Insert from a column-name mapping (missing keys are an error)."""
        try:
            values = [record[column.name] for column in self.columns]
        except KeyError as exc:
            raise HwdbError(
                f"missing column {exc.args[0]!r} for table {self.name!r}"
            ) from None
        return self.insert(timestamp, values)

    def clear(self) -> None:
        if self.spill is not None:
            # Fired before the reset so the tier can see what the ring
            # is about to discard (rows never evicted are lost for good).
            self.spill.on_clear(self)
        self._buffer = [None] * self.capacity
        self._head = 0
        self._count = 0

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def overwritten(self) -> int:
        """Events lost to the ring (inserted minus retained)."""
        return self.total_inserted - self._count

    def rows(self) -> Iterator[Row]:
        """All retained rows, oldest first."""
        if self._count == 0:
            return
        start = (self._head - self._count) % self.capacity
        for offset in range(self._count):
            row = self._buffer[(start + offset) % self.capacity]
            if row is not None:
                yield row

    def rows_since(self, t_from: float) -> Iterator[Row]:
        """Rows with ``timestamp >= t_from``, oldest first."""
        for row in self.rows():
            if row.timestamp >= t_from:
                yield row

    def last_rows(self, n: int) -> List[Row]:
        """The most recent ``n`` rows, oldest first."""
        if n <= 0 or self._count == 0:
            return []
        n = min(n, self._count)
        start = (self._head - n) % self.capacity
        result = []
        for offset in range(n):
            row = self._buffer[(start + offset) % self.capacity]
            if row is not None:
                result.append(row)
        return result

    @property
    def append_seq(self) -> int:
        """Sequence number of the newest row (1-based; 0 = empty history).

        Every insert gets the next sequence number, so the retained rows
        are exactly those with seq in ``(overwritten, total_inserted]``.
        The query engine's delta scans watermark on this.
        """
        return self.total_inserted

    def rows_with_seq_since(self, seq: int) -> List[Tuple[int, Row]]:
        """Rows appended after sequence number ``seq``, oldest first.

        Returns ``(seq, row)`` pairs.  Rows that were appended *and*
        already overwritten since the watermark are gone — the caller
        sees only what the ring still retains, which is also all any
        full rescan at this instant could see.
        """
        missed = self.total_inserted - seq
        if missed <= 0:
            return []
        n = min(missed, self._count)
        first_seq = self.total_inserted - n + 1
        return [
            (first_seq + i, row) for i, row in enumerate(self.last_rows(n))
        ]

    def newest(self) -> Optional[Row]:
        if self._count == 0:
            return None
        return self._buffer[(self._head - 1) % self.capacity]

    def oldest(self) -> Optional[Row]:
        if self._count == 0:
            return None
        return self._buffer[(self._head - self._count) % self.capacity]

    def row_as_dict(self, row: Row) -> Dict[str, Any]:
        record = {TS_COLUMN: row.timestamp}
        for column, value in zip(self.columns, row.values):
            record[column.name] = value
        return record

    def __repr__(self) -> str:
        return (
            f"StreamTable({self.name!r}, cols={len(self.columns)}, "
            f"rows={self._count}/{self.capacity})"
        )
