"""hwdb — the Homework Database.

An active ephemeral stream database: fixed-size ring-buffer tables, a CQL
variant with temporal windows and relational operators, subscriptions
pushed over a UDP-style RPC, and optional persistence sinks.
"""

from .cql import ResultSet, parse
from .database import HomeworkDatabase, Subscription
from .persist import CsvSink, JsonLinesSink, MemorySink, render_table
from .rpc import (
    HwdbClient,
    LocalTransport,
    RpcServer,
    pack_resultset,
    unpack_resultset,
)
from .snapshot import (
    database_digests,
    restore_database,
    restore_table,
    snapshot_database,
    snapshot_table,
    table_digest,
)
from .udp_gateway import HwdbUdpGateway, RemoteHwdbClient
from .schema import (
    DNS_SCHEMA,
    FLOWS_SCHEMA,
    LEASES_SCHEMA,
    LINKS_SCHEMA,
    STANDARD_TABLES,
    TRACES_SCHEMA,
    install_standard_schema,
)
from .table import Column, Row, StreamTable, TS_COLUMN
from .types import (
    BOOLEAN,
    ColumnType,
    INTEGER,
    IPADDR,
    MACADDR,
    REAL,
    TIMESTAMP,
    VARCHAR,
    type_by_name,
)

__all__ = [
    "HomeworkDatabase",
    "Subscription",
    "ResultSet",
    "parse",
    "StreamTable",
    "Row",
    "Column",
    "TS_COLUMN",
    "RpcServer",
    "HwdbClient",
    "LocalTransport",
    "HwdbUdpGateway",
    "RemoteHwdbClient",
    "pack_resultset",
    "unpack_resultset",
    "CsvSink",
    "JsonLinesSink",
    "MemorySink",
    "render_table",
    "snapshot_database",
    "snapshot_table",
    "restore_database",
    "restore_table",
    "database_digests",
    "table_digest",
    "install_standard_schema",
    "STANDARD_TABLES",
    "FLOWS_SCHEMA",
    "LINKS_SCHEMA",
    "LEASES_SCHEMA",
    "DNS_SCHEMA",
    "TRACES_SCHEMA",
    "ColumnType",
    "type_by_name",
    "INTEGER",
    "REAL",
    "VARCHAR",
    "BOOLEAN",
    "TIMESTAMP",
    "MACADDR",
    "IPADDR",
]
