"""Column types for hwdb tables.

hwdb tables are strongly typed; these validators/coercers cover the types
the Homework schema uses: integers, reals, strings, booleans, timestamps,
MAC and IPv4 addresses.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..core.errors import HwdbError
from ..net.addresses import AddressError, IPv4Address, MACAddress


class ColumnType:
    """A named type with a coercion function."""

    def __init__(self, name: str, coerce: Callable[[Any], Any]):
        self.name = name
        self._coerce = coerce

    def coerce(self, value: Any) -> Any:
        try:
            return self._coerce(value)
        except (TypeError, ValueError, AddressError) as exc:
            raise HwdbError(f"cannot coerce {value!r} to {self.name}: {exc}") from exc

    def __repr__(self) -> str:
        return f"ColumnType({self.name!r})"


def _coerce_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "t", "1", "yes"):
            return True
        if lowered in ("false", "f", "0", "no"):
            return False
    raise ValueError(f"not a boolean: {value!r}")


INTEGER = ColumnType("integer", lambda v: int(v))
REAL = ColumnType("real", lambda v: float(v))
VARCHAR = ColumnType("varchar", lambda v: str(v))
BOOLEAN = ColumnType("boolean", _coerce_bool)
TIMESTAMP = ColumnType("timestamp", lambda v: float(v))
MACADDR = ColumnType("macaddr", lambda v: str(MACAddress(v)))
IPADDR = ColumnType("ipaddr", lambda v: str(IPv4Address(v)))

TYPES: Dict[str, ColumnType] = {
    "integer": INTEGER,
    "int": INTEGER,
    "real": REAL,
    "float": REAL,
    "double": REAL,
    "varchar": VARCHAR,
    "text": VARCHAR,
    "string": VARCHAR,
    "boolean": BOOLEAN,
    "bool": BOOLEAN,
    "timestamp": TIMESTAMP,
    "macaddr": MACADDR,
    "mac": MACADDR,
    "ipaddr": IPADDR,
    "ip": IPADDR,
}


def type_by_name(name: str) -> ColumnType:
    try:
        return TYPES[name.lower()]
    except KeyError:
        raise HwdbError(f"unknown column type {name!r}") from None


class Column:
    """A (name, type) pair in a table schema."""

    __slots__ = ("name", "ctype")

    def __init__(self, name: str, ctype: ColumnType):
        self.name = name.lower()
        self.ctype = ctype

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.ctype.name})"
