"""hwdb RPC over real (simulated) UDP datagrams.

The paper's satellite devices — the iPhone display, the Arduino artifact
— speak to hwdb over its UDP RPC (port 987).  The in-process
:class:`~repro.hwdb.rpc.LocalTransport` covers most uses; this module
provides the genuine wire path for when fidelity matters:

* :class:`HwdbUdpGateway` binds the RPC server to UDP port 987 on a
  simulated host (a management station co-located with the router);
* :class:`RemoteHwdbClient` runs on any other host and issues
  queries/subscriptions as UDP datagrams routed through the network —
  pushes arrive asynchronously at the subscriber's port.

Result payloads carry the ``@executed_at`` preamble emitted by
:func:`~repro.hwdb.rpc.pack_resultset`, so remote subscribers learn
*when* each answer was computed; ``EXPLAIN [ANALYZE]`` statements need
no dedicated verb — they travel as ordinary ``QUERY`` requests and come
back as a one-column result set of plan lines.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple, Union

from ..core.errors import RpcError
from ..net.addresses import IPv4Address
from ..net.udp import PORT_HWDB_RPC
from .cql.executor import ResultSet
from .rpc import RpcServer, unpack_resultset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.host import Host

logger = logging.getLogger(__name__)

QueryCallback = Callable[[Optional[ResultSet], Optional[str]], None]
PushCallback = Callable[[ResultSet], None]


class HwdbUdpGateway:
    """Expose an :class:`RpcServer` on a host's UDP port 987."""

    def __init__(self, host: Host, server: RpcServer, port: int = PORT_HWDB_RPC):
        self.host = host
        self.server = server
        self.port = port
        self.datagrams_handled = 0
        host.udp_bind(port, self._on_datagram)

    def close(self) -> None:
        self.host.udp_unbind(self.port)

    def _on_datagram(self, data: bytes, src_ip: IPv4Address, sport: int) -> None:
        self.datagrams_handled += 1

        def reply(payload: bytes) -> None:
            try:
                self.host.udp_send(src_ip, sport, payload, sport=self.port)
            except ConnectionError:
                logger.warning("hwdb push undeliverable to %s:%d", src_ip, sport)

        self.server.handle_datagram(data, reply)


class RemoteHwdbClient:
    """Issue hwdb RPC requests from a host across the network.

    All operations are asynchronous (this is UDP over a simulated
    network): callbacks fire when the response datagram arrives.
    """

    def __init__(
        self,
        host: Host,
        server_ip: Union[str, IPv4Address],
        server_port: int = PORT_HWDB_RPC,
    ):
        self.host = host
        self.server_ip = IPv4Address(server_ip)
        self.server_port = server_port
        self._local_port: Optional[int] = None
        self._pending: Optional[QueryCallback] = None
        self._pending_subscribe: Optional[Callable[[Optional[int], Optional[str]], None]] = None
        self._push_callbacks: Dict[int, PushCallback] = {}
        self.responses_received = 0

    def _ensure_bound(self) -> int:
        if self._local_port is None:
            self._local_port = self.host._ephemeral_port()
            self.host.udp_bind(self._local_port, self._on_datagram)
        return self._local_port

    def _send(self, payload: str) -> None:
        sport = self._ensure_bound()
        self.host.udp_send(
            self.server_ip, self.server_port, payload.encode("utf-8"), sport=sport
        )

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def query(self, text: str, callback: QueryCallback) -> None:
        """``callback(result, error)`` when the response arrives."""
        if self._pending is not None:
            raise RpcError("a query is already in flight on this client")
        self._pending = callback
        self._send(f"QUERY {text}")

    def subscribe(
        self,
        text: str,
        interval: float,
        on_push: PushCallback,
        on_subscribed: Optional[Callable[[Optional[int], Optional[str]], None]] = None,
    ) -> None:
        """Register a continuous query; pushes arrive as datagrams."""
        if self._pending_subscribe is not None:
            raise RpcError("a subscribe is already in flight on this client")

        def bookkeeping(sub_id: Optional[int], error: Optional[str]) -> None:
            if sub_id is not None:
                self._push_callbacks[sub_id] = on_push
            if on_subscribed is not None:
                on_subscribed(sub_id, error)

        self._pending_subscribe = bookkeeping
        self._send(f"SUBSCRIBE {interval} {text}")

    def unsubscribe(self, sub_id: int) -> None:
        self._push_callbacks.pop(sub_id, None)
        self._send(f"UNSUBSCRIBE {sub_id}")

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------

    def _on_datagram(self, data: bytes, _src: IPv4Address, _sport: int) -> None:
        self.responses_received += 1
        text = data.decode("utf-8", "replace")
        head, _, body = text.partition("\n")
        if head.startswith("PUSH "):
            try:
                sub_id = int(head.split(" ", 1)[1])
            except ValueError:
                return
            callback = self._push_callbacks.get(sub_id)
            if callback is not None:
                callback(unpack_resultset(body))
            return
        if head.startswith("SUBSCRIBED "):
            pending = self._pending_subscribe
            self._pending_subscribe = None
            if pending is not None:
                pending(int(head.split(" ", 1)[1]), None)
            return
        if head.startswith("UNSUBSCRIBED"):
            return
        if head == "OK":
            pending_query = self._pending
            self._pending = None
            if pending_query is not None:
                pending_query(unpack_resultset(body), None)
            return
        # An error answers whichever request is outstanding.
        error = head[len("ERROR "):] if head.startswith("ERROR ") else head
        if self._pending is not None:
            pending_query = self._pending
            self._pending = None
            pending_query(None, error)
        elif self._pending_subscribe is not None:
            pending_subscribe = self._pending_subscribe
            self._pending_subscribe = None
            pending_subscribe(None, error)
