"""hwdb's UDP-based RPC interface.

"The database supports a simple UDP-based RPC interface enabling
applications to subscribe to query results."  The wire protocol is a
compact text format (one datagram per request/response/push):

Requests::

    QUERY <cql>
    SUBSCRIBE <interval-seconds> <cql>
    UNSUBSCRIBE <id>
    PING

Responses::

    OK\\n<resultset>
    SUBSCRIBED <id>
    UNSUBSCRIBED <id>
    PONG
    ERROR <message>

Asynchronous pushes to subscribers::

    PUSH <id>\\n<resultset>

A result set is a header line of tab-separated column names followed by
one line per row; values carry a one-character type tag so they
round-trip exactly (``i:``/``f:``/``s:``/``b:`` and ``\\N`` for null).

The server is transport-agnostic: :meth:`RpcServer.handle_datagram`
takes request bytes plus a reply callable, so the same code serves the
in-process transport used by the UIs and a real UDP socket bound on the
router (port 987).
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import QueryError, RpcError
from .cql.executor import ResultSet
from .database import HomeworkDatabase, Subscription

logger = logging.getLogger(__name__)

ReplyFn = Callable[[bytes], None]

_ESCAPES = {"\\": "\\\\", "\t": "\\t", "\n": "\\n", "\r": "\\r"}
_UNESCAPES = {"\\\\": "\\", "\\t": "\t", "\\n": "\n", "\\r": "\r"}


def _escape(text: str) -> str:
    for raw, escaped in _ESCAPES.items():
        text = text.replace(raw, escaped)
    return text


def _unescape(text: str) -> str:
    out = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            pair = text[i : i + 2]
            if pair in _UNESCAPES:
                out.append(_UNESCAPES[pair])
                i += 2
                continue
        out.append(text[i])
        i += 1
    return "".join(out)


def _encode_value(value) -> str:
    if value is None:
        return "\\N"
    if isinstance(value, bool):
        return "b:1" if value else "b:0"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value!r}"
    return "s:" + _escape(str(value))


def _decode_value(token: str):
    if token == "\\N":
        return None
    if len(token) < 2 or token[1] != ":":
        raise RpcError(f"malformed value token {token!r}")
    tag, body = token[0], token[2:]
    if tag == "i":
        return int(body)
    if tag == "f":
        return float(body)
    if tag == "b":
        return body == "1"
    if tag == "s":
        return _unescape(body)
    raise RpcError(f"unknown value tag {tag!r}")


def pack_resultset(result: ResultSet) -> str:
    """Serialise a result set to the wire text form.

    The first line carries the query's execution time as ``@<repr>``
    (``@`` cannot start a column name, which is always an identifier or
    a dotted/qualified identifier), so subscribers see *when* the
    answer was computed, not just what it was.
    """
    lines = [f"@{result.executed_at!r}"]
    lines.append("\t".join(_escape(c) for c in result.columns))
    for row in result.rows:
        lines.append("\t".join(_encode_value(v) for v in row))
    return "\n".join(lines)


def unpack_resultset(text: str) -> ResultSet:
    """Parse the wire text form back into a :class:`ResultSet`.

    Accepts payloads with or without the leading ``@executed_at`` line
    (older peers omit it; ``executed_at`` is then 0.0, the
    :class:`ResultSet` default).
    """
    lines = text.split("\n")
    executed_at = 0.0
    if lines and lines[0].startswith("@"):
        stamp = lines.pop(0)[1:]
        try:
            executed_at = float(stamp)
        except ValueError:
            raise RpcError(f"malformed execution timestamp {stamp!r}") from None
    if not lines or not lines[0]:
        return ResultSet([], [], executed_at=executed_at)
    columns = [_unescape(c) for c in lines[0].split("\t")]
    rows: List[Tuple] = []
    for line in lines[1:]:
        if not line:
            continue
        rows.append(tuple(_decode_value(tok) for tok in line.split("\t")))
    return ResultSet(columns, rows, executed_at=executed_at)


class RpcServer:
    """Serves the hwdb RPC protocol over any datagram transport."""

    def __init__(self, db: HomeworkDatabase, registry=None):
        self.db = db
        # subscription id -> (Subscription, reply function)
        self._subscribers: Dict[int, Tuple[Subscription, ReplyFn]] = {}
        self.requests_handled = 0
        self.pushes_sent = 0
        if registry is None:
            self._m_requests = None
            self._m_pushes = None
            self._m_errors = None
        else:
            self._m_requests = registry.counter("rpc.request_total")
            self._m_pushes = registry.counter("rpc.push_total")
            self._m_errors = registry.counter("rpc.internal_error_total")

    def handle_datagram(self, data: bytes, reply: ReplyFn) -> None:
        """Process one request datagram, replying via ``reply``."""
        self.requests_handled += 1
        if self._m_requests is not None:
            self._m_requests.inc()
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError:
            reply(b"ERROR request is not valid UTF-8")
            return
        try:
            response = self._dispatch(text.strip(), reply)
        except (QueryError, RpcError) as exc:
            response = f"ERROR {exc}"
        except Exception as exc:  # noqa: BLE001 - never kill the server
            logger.exception("rpc request failed")
            if self._m_errors is not None:
                self._m_errors.inc()
            response = f"ERROR internal: {exc}"
        reply(response.encode("utf-8"))

    def _dispatch(self, text: str, reply: ReplyFn) -> str:
        if text == "PING":
            return "PONG"
        verb, _, rest = text.partition(" ")
        if verb == "QUERY":
            if not rest:
                raise RpcError("QUERY needs a statement")
            result = self.db.query(rest)
            return "OK\n" + pack_resultset(result)
        if verb == "SUBSCRIBE":
            interval_s, _, query_text = rest.partition(" ")
            try:
                interval = float(interval_s)
            except ValueError:
                raise RpcError(f"bad interval {interval_s!r}") from None
            if not query_text:
                raise RpcError("SUBSCRIBE needs a query")
            subscription = self.db.subscribe(
                query_text, interval, self._make_pusher(reply)
            )
            self._subscribers[subscription.id] = (subscription, reply)
            self._patch_callback(subscription)
            return f"SUBSCRIBED {subscription.id}"
        if verb == "UNSUBSCRIBE":
            try:
                sub_id = int(rest)
            except ValueError:
                raise RpcError(f"bad subscription id {rest!r}") from None
            entry = self._subscribers.pop(sub_id, None)
            if entry is None:
                raise RpcError(f"no subscription {sub_id}")
            entry[0].cancel()
            return f"UNSUBSCRIBED {sub_id}"
        raise RpcError(f"unknown request verb {verb!r}")

    def _make_pusher(self, reply: ReplyFn) -> Callable[[ResultSet], None]:
        # Placeholder; replaced by _patch_callback once the id is known.
        return lambda result: None

    def _patch_callback(self, subscription: Subscription) -> None:
        sub_id = subscription.id

        def push(result: ResultSet) -> None:
            entry = self._subscribers.get(sub_id)
            if entry is None:
                return
            self.pushes_sent += 1
            if self._m_pushes is not None:
                self._m_pushes.inc()
            payload = f"PUSH {sub_id}\n" + pack_resultset(result)
            entry[1](payload.encode("utf-8"))

        subscription.callback = push

    def drop_subscriber(self, sub_id: int) -> None:
        """Cancel a subscription whose transport went away."""
        entry = self._subscribers.pop(sub_id, None)
        if entry is not None:
            entry[0].cancel()


class LocalTransport:
    """In-process request/reply pipe pairing a client with a server.

    The paper's satellite devices speak RPC over UDP; the UIs in this
    reproduction run in-process, so this transport hands datagrams
    straight to :meth:`RpcServer.handle_datagram` with zero copies.
    """

    def __init__(self, server: RpcServer):
        self.server = server
        self._push_handler: Optional[Callable[[bytes], None]] = None

    def on_push(self, handler: Callable[[bytes], None]) -> None:
        self._push_handler = handler

    def request(self, data: bytes) -> bytes:
        responses: List[bytes] = []

        def reply(payload: bytes) -> None:
            if payload.startswith(b"PUSH ") and self._push_handler is not None:
                self._push_handler(payload)
            else:
                responses.append(payload)

        self.server.handle_datagram(data, reply)
        if not responses:
            raise RpcError("server sent no response")
        return responses[0]


class HwdbClient:
    """Client-side API over any transport with ``request(bytes) -> bytes``."""

    def __init__(self, transport: LocalTransport):
        self.transport = transport
        self._push_callbacks: Dict[int, Callable[[ResultSet], None]] = {}
        transport.on_push(self._on_push)

    def ping(self) -> bool:
        return self.transport.request(b"PING") == b"PONG"

    def query(self, text: str) -> ResultSet:
        response = self.transport.request(b"QUERY " + text.encode("utf-8"))
        head, _, body = response.decode("utf-8").partition("\n")
        if head != "OK":
            raise RpcError(head)
        return unpack_resultset(body)

    def subscribe(
        self, text: str, interval: float, callback: Callable[[ResultSet], None]
    ) -> int:
        request = f"SUBSCRIBE {interval} {text}".encode("utf-8")
        response = self.transport.request(request).decode("utf-8")
        if not response.startswith("SUBSCRIBED "):
            raise RpcError(response)
        sub_id = int(response.split(" ", 1)[1])
        self._push_callbacks[sub_id] = callback
        return sub_id

    def unsubscribe(self, sub_id: int) -> None:
        response = self.transport.request(
            f"UNSUBSCRIBE {sub_id}".encode("utf-8")
        ).decode("utf-8")
        if not response.startswith("UNSUBSCRIBED"):
            raise RpcError(response)
        self._push_callbacks.pop(sub_id, None)

    def _on_push(self, payload: bytes) -> None:
        text = payload.decode("utf-8")
        head, _, body = text.partition("\n")
        try:
            sub_id = int(head.split(" ", 1)[1])
        except (IndexError, ValueError):
            logger.warning("malformed push: %r", head)
            return
        callback = self._push_callbacks.get(sub_id)
        if callback is not None:
            callback(unpack_resultset(body))
