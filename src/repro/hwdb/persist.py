"""Persisting query output.

hwdb itself is ephemeral (fixed memory buffers); the paper notes that the
RPC interface lets applications subscribe to query results, "persisting
output as desired".  These sinks do that: attach one as a subscription
callback and every delivery is appended to a CSV or JSON-lines file.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, List, Optional, TextIO

from .cql.executor import ResultSet


class CsvSink:
    """Append result-set rows to a CSV stream (header written once)."""

    def __init__(self, stream: TextIO, include_delivery_time: bool = True):
        self._stream = stream
        self._writer = csv.writer(stream)
        self._header_written = False
        self.include_delivery_time = include_delivery_time
        self.rows_written = 0

    def __call__(self, result: ResultSet) -> None:
        if not self._header_written:
            header: List[str] = list(result.columns)
            if self.include_delivery_time:
                header = ["delivered_at"] + header
            self._writer.writerow(header)
            self._header_written = True
        for row in result.rows:
            out: List[Any] = list(row)
            if self.include_delivery_time:
                out = [result.executed_at] + out
            self._writer.writerow(out)
            self.rows_written += 1

    def flush(self) -> None:
        self._stream.flush()


class JsonLinesSink:
    """Append each delivery as one JSON object per row."""

    def __init__(self, stream: TextIO):
        self._stream = stream
        self.rows_written = 0

    def __call__(self, result: ResultSet) -> None:
        for record in result.to_dicts():
            record["_delivered_at"] = result.executed_at
            self._stream.write(json.dumps(record, default=str) + "\n")
            self.rows_written += 1

    def flush(self) -> None:
        self._stream.flush()


class MemorySink:
    """Keep every delivered result in memory (handy in tests and UIs)."""

    def __init__(self, max_deliveries: Optional[int] = None):
        self.deliveries: List[ResultSet] = []
        self.max_deliveries = max_deliveries

    def __call__(self, result: ResultSet) -> None:
        self.deliveries.append(result)
        if self.max_deliveries is not None and len(self.deliveries) > self.max_deliveries:
            del self.deliveries[0]

    @property
    def latest(self) -> Optional[ResultSet]:
        return self.deliveries[-1] if self.deliveries else None

    def all_rows(self) -> List[tuple]:
        return [row for delivery in self.deliveries for row in delivery.rows]


def render_table(result: ResultSet, max_rows: int = 50) -> str:
    """Human-readable fixed-width rendering of a result set."""
    columns = result.columns or ["(empty)"]
    rows = [tuple(_fmt(v) for v in row) for row in result.rows[:max_rows]]
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if len(result.rows) > max_rows:
        lines.append(f"... ({len(result.rows) - max_rows} more rows)")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
