"""Persisting query output.

hwdb itself is ephemeral (fixed memory buffers); the paper notes that the
RPC interface lets applications subscribe to query results, "persisting
output as desired".  These sinks do that: attach one as a subscription
callback and every delivery is appended to a CSV or JSON-lines file.

A sink takes either an open text stream (the caller owns its lifetime)
or a filesystem path.  Path-based sinks own their file: they open
lazily, support explicit ``flush()``/``close()``, and rotate by size —
once a delivery pushes the file past ``max_bytes`` it is renamed to
``<path>.1``, ``<path>.2``, … and a fresh file (with a fresh CSV
header) takes its place.  Rotation happens *between* deliveries, so a
single delivery is never split across files.
"""

from __future__ import annotations

import csv
import io
import json
import os
from pathlib import Path
from typing import Any, List, Optional, TextIO, Union

from .cql.executor import ResultSet

SinkTarget = Union[str, "os.PathLike[str]", TextIO]


class _SinkFile:
    """The stream behind a sink: borrowed, or owned-by-path with rotation."""

    __slots__ = ("path", "max_bytes", "rotations", "_stream", "_borrowed")

    def __init__(self, target: SinkTarget, max_bytes: Optional[int] = None):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if isinstance(target, (str, os.PathLike)):
            self.path: Optional[Path] = Path(target)
            self._stream: Optional[TextIO] = None
            self._borrowed = False
        else:
            if max_bytes is not None:
                raise ValueError("rotation needs a path-based sink, not a stream")
            self.path = None
            self._stream = target
            self._borrowed = True
        self.max_bytes = max_bytes
        self.rotations = 0

    @property
    def stream(self) -> TextIO:
        if self._stream is None:
            assert self.path is not None
            self._stream = open(self.path, "a", encoding="utf-8", newline="")
        return self._stream

    def maybe_rotate(self) -> bool:
        """Rotate the owned file if it outgrew ``max_bytes``; True if it did."""
        if self.max_bytes is None or self.path is None or self._stream is None:
            return False
        self._stream.flush()
        if self._stream.tell() < self.max_bytes:
            return False
        self._stream.close()
        self._stream = None
        self.rotations += 1
        os.replace(self.path, f"{self.path}.{self.rotations}")
        return True

    def flush(self) -> None:
        if self._stream is not None:
            self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.flush()
            if not self._borrowed:
                self._stream.close()
                self._stream = None


class CsvSink:
    """Append result-set rows as CSV (header written once per file)."""

    def __init__(
        self,
        target: SinkTarget,
        include_delivery_time: bool = True,
        max_bytes: Optional[int] = None,
    ):
        self._file = _SinkFile(target, max_bytes)
        self._header_written = False
        self.include_delivery_time = include_delivery_time
        self.rows_written = 0

    @property
    def rotations(self) -> int:
        return self._file.rotations

    def __call__(self, result: ResultSet) -> None:
        writer = csv.writer(self._file.stream)
        if not self._header_written:
            header: List[str] = list(result.columns)
            if self.include_delivery_time:
                header = ["delivered_at"] + header
            writer.writerow(header)
            self._header_written = True
        for row in result.rows:
            out: List[Any] = list(row)
            if self.include_delivery_time:
                out = [result.executed_at] + out
            writer.writerow(out)
            self.rows_written += 1
        if self._file.maybe_rotate():
            # The next delivery starts a fresh file; re-announce columns.
            self._header_written = False

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.close()


class JsonLinesSink:
    """Append each delivery as one JSON object per row."""

    def __init__(self, target: SinkTarget, max_bytes: Optional[int] = None):
        self._file = _SinkFile(target, max_bytes)
        self.rows_written = 0

    @property
    def rotations(self) -> int:
        return self._file.rotations

    def __call__(self, result: ResultSet) -> None:
        stream = self._file.stream
        for record in result.to_dicts():
            record["_delivered_at"] = result.executed_at
            stream.write(json.dumps(record, default=str) + "\n")
            self.rows_written += 1
        self._file.maybe_rotate()

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.close()


class MemorySink:
    """Keep every delivered result in memory (handy in tests and UIs)."""

    def __init__(self, max_deliveries: Optional[int] = None):
        self.deliveries: List[ResultSet] = []
        self.max_deliveries = max_deliveries

    def __call__(self, result: ResultSet) -> None:
        self.deliveries.append(result)
        if self.max_deliveries is not None and len(self.deliveries) > self.max_deliveries:
            del self.deliveries[0]

    @property
    def latest(self) -> Optional[ResultSet]:
        return self.deliveries[-1] if self.deliveries else None

    def all_rows(self) -> List[tuple]:
        return [row for delivery in self.deliveries for row in delivery.rows]


def render_table(result: ResultSet, max_rows: int = 50) -> str:
    """Human-readable fixed-width rendering of a result set."""
    columns = result.columns or ["(empty)"]
    rows = [tuple(_fmt(v) for v in row) for row in result.rows[:max_rows]]
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if len(result.rows) > max_rows:
        lines.append(f"... ({len(result.rows) - max_rows} more rows)")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
