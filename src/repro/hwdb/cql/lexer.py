"""Tokenizer for the hwdb CQL variant.

hwdb "supports queries via a CQL variant able to express temporal and
relational operations on data" — SELECT with per-stream windows
(``[RANGE 5 SECONDS]``, ``[ROWS 100]``, ``[NOW]``, ``[SINCE t]``),
joins, aggregation, plus INSERT/CREATE for completeness.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

from ...core.errors import QueryError

KEYWORDS = {
    "select",
    "distinct",
    "from",
    "where",
    "group",
    "by",
    "having",
    "order",
    "asc",
    "desc",
    "limit",
    "as",
    "and",
    "or",
    "not",
    "in",
    "like",
    "is",
    "null",
    "true",
    "false",
    "insert",
    "into",
    "values",
    "create",
    "table",
    "buffer",
    "range",
    "rows",
    "now",
    "since",
    "seconds",
    "second",
    "minutes",
    "minute",
    "hours",
    "hour",
    "milliseconds",
    "millisecond",
    "on",
    "explain",
    "analyze",
}

# Multi-char operators first so they win the scan.
OPERATORS = ["<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/", "%"]
PUNCTUATION = "(),[].;"


class Token(NamedTuple):
    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'op' | 'punct' | 'eof'
    value: str
    position: int


def tokenize(text: str) -> List[Token]:
    """Produce the token stream, raising :class:`QueryError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":  # comment to EOL
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            start = i
            seen_dot = False
            while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    # Don't swallow a dot followed by a letter (qualified name).
                    if i + 1 < n and not text[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            # Scientific notation ('2.5e-05'): repr() of a small float
            # emits it, so unparse output must lex back.
            if i < n and text[i] in "eE":
                j = i + 1
                if j < n and text[j] in "+-":
                    j += 1
                if j < n and text[j].isdigit():
                    while j < n and text[j].isdigit():
                        j += 1
                    i = j
            tokens.append(Token("number", text[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            kind = "keyword" if word.lower() in KEYWORDS else "ident"
            tokens.append(Token(kind, word.lower() if kind == "keyword" else word, start))
            continue
        if ch in ("'", '"'):
            quote = ch
            start = i
            i += 1
            chunks = []
            while i < n:
                if text[i] == quote:
                    if i + 1 < n and text[i + 1] == quote:  # doubled quote escape
                        chunks.append(quote)
                        i += 2
                        continue
                    break
                chunks.append(text[i])
                i += 1
            if i >= n:
                raise QueryError(f"unterminated string at position {start}")
            i += 1
            tokens.append(Token("string", "".join(chunks), start))
            continue
        matched_op: Optional[str] = None
        for op in OPERATORS:
            if text.startswith(op, i):
                matched_op = op
                break
        if matched_op is not None:
            tokens.append(Token("op", matched_op, i))
            i += len(matched_op)
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("punct", ch, i))
            i += 1
            continue
        raise QueryError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("eof", "", n))
    return tokens


class TokenStream:
    """Cursor over the token list with the usual peek/expect helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    def peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self._pos += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.next()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            actual = self.peek()
            want = value if value is not None else kind
            raise QueryError(
                f"expected {want!r} at position {actual.position}, "
                f"got {actual.value!r}"
            )
        return token

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "keyword" and token.value in words

    def eof(self) -> bool:
        return self.peek().kind == "eof"
