"""Recursive-descent parser for the CQL variant."""

from __future__ import annotations

from typing import Any, List, Optional, Union

from ...core.errors import QueryError
from .ast_nodes import (
    Binary,
    ColumnRef,
    CreateTable,
    Explain,
    Expr,
    FunctionCall,
    InList,
    Insert,
    Literal,
    OrderItem,
    Projection,
    Select,
    TableRef,
    Unary,
    W_ALL,
    W_NOW,
    W_RANGE,
    W_ROWS,
    W_SINCE,
    Window,
)
from .lexer import Token, TokenStream, tokenize

Statement = Union[Select, Insert, CreateTable, Explain]

_UNIT_SECONDS = {
    "millisecond": 0.001,
    "milliseconds": 0.001,
    "second": 1.0,
    "seconds": 1.0,
    "minute": 60.0,
    "minutes": 60.0,
    "hour": 3600.0,
    "hours": 3600.0,
}

AGGREGATE_FUNCTIONS = {"count", "sum", "avg", "min", "max", "first", "last", "stddev"}
SCALAR_FUNCTIONS = {"abs", "upper", "lower", "coalesce", "round", "length"}


def parse(text: str) -> Statement:
    """Parse one statement; trailing ``;`` is tolerated."""
    stream = TokenStream(tokenize(text))
    statement = _parse_statement(stream)
    stream.accept("punct", ";")
    if not stream.eof():
        token = stream.peek()
        raise QueryError(
            f"unexpected trailing input at position {token.position}: {token.value!r}"
        )
    return statement


def _parse_statement(s: TokenStream) -> Statement:
    if s.at_keyword("select"):
        return _parse_select(s)
    if s.at_keyword("insert"):
        return _parse_insert(s)
    if s.at_keyword("create"):
        return _parse_create(s)
    if s.at_keyword("explain"):
        s.next()
        analyze = bool(s.accept("keyword", "analyze"))
        if not s.at_keyword("select"):
            token = s.peek()
            raise QueryError(
                f"EXPLAIN takes a SELECT statement, got {token.value!r}"
            )
        return Explain(_parse_select(s), analyze=analyze)
    token = s.peek()
    raise QueryError(f"expected a statement, got {token.value!r}")


# ----------------------------------------------------------------------
# SELECT
# ----------------------------------------------------------------------

def _parse_select(s: TokenStream) -> Select:
    s.expect("keyword", "select")
    distinct = bool(s.accept("keyword", "distinct"))
    star = False
    projections: List[Projection] = []
    if s.accept("op", "*"):
        star = True
    else:
        projections.append(_parse_projection(s))
        while s.accept("punct", ","):
            projections.append(_parse_projection(s))
    s.expect("keyword", "from")
    sources = [_parse_table_ref(s)]
    while s.accept("punct", ","):
        sources.append(_parse_table_ref(s))

    where = None
    if s.accept("keyword", "where"):
        where = _parse_expr(s)

    group_by: List[Expr] = []
    if s.accept("keyword", "group"):
        s.expect("keyword", "by")
        group_by.append(_parse_expr(s))
        while s.accept("punct", ","):
            group_by.append(_parse_expr(s))

    having = None
    if s.accept("keyword", "having"):
        having = _parse_expr(s)

    order_by: List[OrderItem] = []
    if s.accept("keyword", "order"):
        s.expect("keyword", "by")
        order_by.append(_parse_order_item(s))
        while s.accept("punct", ","):
            order_by.append(_parse_order_item(s))

    limit = None
    if s.accept("keyword", "limit"):
        token = s.expect("number")
        limit = int(float(token.value))

    return Select(
        projections=projections,
        sources=sources,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=limit,
        star=star,
        distinct=distinct,
    )


def _parse_projection(s: TokenStream) -> Projection:
    expr = _parse_expr(s)
    alias = None
    if s.accept("keyword", "as"):
        alias = s.expect("ident").value
    elif s.peek().kind == "ident" and not s.at_keyword():
        # Bare alias: SELECT bytes b FROM ...
        alias = s.next().value
    return Projection(expr, alias)


def _parse_order_item(s: TokenStream) -> OrderItem:
    expr = _parse_expr(s)
    descending = False
    if s.accept("keyword", "desc"):
        descending = True
    else:
        s.accept("keyword", "asc")
    return OrderItem(expr, descending)


def _parse_table_ref(s: TokenStream) -> TableRef:
    table = s.expect("ident").value
    window: Optional[Window] = None
    if s.accept("punct", "["):
        window = _parse_window(s)
        s.expect("punct", "]")
    alias = None
    if s.accept("keyword", "as"):
        alias = s.expect("ident").value
    elif s.peek().kind == "ident":
        alias = s.next().value
    return TableRef(table, window, alias)


def _parse_window(s: TokenStream) -> Window:
    if s.accept("keyword", "now"):
        return Window(W_NOW)
    if s.accept("keyword", "range"):
        amount = float(s.expect("number").value)
        unit_token = s.peek()
        scale = 1.0
        if unit_token.kind == "keyword" and unit_token.value in _UNIT_SECONDS:
            scale = _UNIT_SECONDS[s.next().value]
        if amount < 0:
            raise QueryError("RANGE window must be non-negative")
        return Window(W_RANGE, amount * scale)
    if s.accept("keyword", "rows"):
        count = int(float(s.expect("number").value))
        if count < 0:
            raise QueryError("ROWS window must be non-negative")
        return Window(W_ROWS, count)
    if s.accept("keyword", "since"):
        return Window(W_SINCE, float(s.expect("number").value))
    token = s.peek()
    raise QueryError(f"bad window specification near {token.value!r}")


# ----------------------------------------------------------------------
# Expressions (precedence climbing)
# ----------------------------------------------------------------------

def _parse_expr(s: TokenStream) -> Expr:
    return _parse_or(s)


def _parse_or(s: TokenStream) -> Expr:
    left = _parse_and(s)
    while s.accept("keyword", "or"):
        left = Binary("or", left, _parse_and(s))
    return left


def _parse_and(s: TokenStream) -> Expr:
    left = _parse_not(s)
    while s.accept("keyword", "and"):
        left = Binary("and", left, _parse_not(s))
    return left


def _parse_not(s: TokenStream) -> Expr:
    if s.accept("keyword", "not"):
        return Unary("not", _parse_not(s))
    return _parse_comparison(s)


_COMPARISONS = {"=", "!=", "<>", "<", "<=", ">", ">="}


def _parse_comparison(s: TokenStream) -> Expr:
    left = _parse_additive(s)
    token = s.peek()
    if token.kind == "op" and token.value in _COMPARISONS:
        op = s.next().value
        if op == "<>":
            op = "!="
        return Binary(op, left, _parse_additive(s))
    if s.at_keyword("like"):
        s.next()
        return Binary("like", left, _parse_additive(s))
    if s.at_keyword("in"):
        s.next()
        return _parse_in(s, left, negated=False)
    if s.at_keyword("not") and s.peek(1).kind == "keyword" and s.peek(1).value == "in":
        s.next()
        s.next()
        return _parse_in(s, left, negated=True)
    if s.at_keyword("is"):
        s.next()
        negated = bool(s.accept("keyword", "not"))
        s.expect("keyword", "null")
        check = Binary("is_null", left, Literal(None))
        return Unary("not", check) if negated else check
    return left


def _parse_in(s: TokenStream, needle: Expr, negated: bool) -> Expr:
    s.expect("punct", "(")
    items = [_parse_expr(s)]
    while s.accept("punct", ","):
        items.append(_parse_expr(s))
    s.expect("punct", ")")
    return InList(needle, items, negated)


def _parse_additive(s: TokenStream) -> Expr:
    left = _parse_multiplicative(s)
    while True:
        token = s.peek()
        if token.kind == "op" and token.value in ("+", "-"):
            op = s.next().value
            left = Binary(op, left, _parse_multiplicative(s))
        else:
            return left


def _parse_multiplicative(s: TokenStream) -> Expr:
    left = _parse_unary(s)
    while True:
        token = s.peek()
        if token.kind == "op" and token.value in ("*", "/", "%"):
            op = s.next().value
            left = Binary(op, left, _parse_unary(s))
        else:
            return left


def _parse_unary(s: TokenStream) -> Expr:
    token = s.peek()
    if token.kind == "op" and token.value == "-":
        s.next()
        return Unary("-", _parse_unary(s))
    if token.kind == "op" and token.value == "+":
        s.next()
        return _parse_unary(s)
    return _parse_primary(s)


def _parse_primary(s: TokenStream) -> Expr:
    token = s.peek()
    if token.kind == "number":
        s.next()
        value = float(token.value)
        if value.is_integer() and "." not in token.value:
            return Literal(int(value))
        return Literal(value)
    if token.kind == "string":
        s.next()
        return Literal(token.value)
    if token.kind == "keyword":
        if token.value == "true":
            s.next()
            return Literal(True)
        if token.value == "false":
            s.next()
            return Literal(False)
        if token.value == "null":
            s.next()
            return Literal(None)
        if token.value == "now":  # now() as a bare keyword-function
            s.next()
            if s.accept("punct", "("):
                s.expect("punct", ")")
            return FunctionCall("now", [])
    if token.kind == "punct" and token.value == "(":
        s.next()
        inner = _parse_expr(s)
        s.expect("punct", ")")
        return inner
    if token.kind == "ident":
        s.next()
        name = token.value
        if s.accept("punct", "("):
            if s.accept("op", "*"):
                s.expect("punct", ")")
                return FunctionCall(name, [], star=True)
            args: List[Expr] = []
            if not s.accept("punct", ")"):
                args.append(_parse_expr(s))
                while s.accept("punct", ","):
                    args.append(_parse_expr(s))
                s.expect("punct", ")")
            return FunctionCall(name, args)
        if s.accept("punct", "."):
            column = s.expect("ident").value
            return ColumnRef(column, table=name)
        return ColumnRef(name)
    raise QueryError(f"unexpected token {token.value!r} at position {token.position}")


# ----------------------------------------------------------------------
# INSERT / CREATE
# ----------------------------------------------------------------------

def _parse_literal_value(s: TokenStream) -> Any:
    token = s.peek()
    if token.kind == "number":
        s.next()
        value = float(token.value)
        return int(value) if value.is_integer() and "." not in token.value else value
    if token.kind == "string":
        s.next()
        return token.value
    if token.kind == "keyword" and token.value in ("true", "false", "null"):
        s.next()
        return {"true": True, "false": False, "null": None}[token.value]
    if token.kind == "op" and token.value == "-":
        s.next()
        number = s.expect("number")
        value = -float(number.value)
        return int(value) if value.is_integer() and "." not in number.value else value
    raise QueryError(f"expected a literal at position {token.position}")


def _parse_insert(s: TokenStream) -> Insert:
    s.expect("keyword", "insert")
    s.expect("keyword", "into")
    table = s.expect("ident").value
    columns: Optional[List[str]] = None
    if s.accept("punct", "("):
        columns = [s.expect("ident").value]
        while s.accept("punct", ","):
            columns.append(s.expect("ident").value)
        s.expect("punct", ")")
    s.expect("keyword", "values")
    s.expect("punct", "(")
    values = [_parse_literal_value(s)]
    while s.accept("punct", ","):
        values.append(_parse_literal_value(s))
    s.expect("punct", ")")
    return Insert(table, columns, values)


def _parse_create(s: TokenStream) -> CreateTable:
    s.expect("keyword", "create")
    s.expect("keyword", "table")
    table = s.expect("ident").value
    s.expect("punct", "(")
    columns = [_parse_coldef(s)]
    while s.accept("punct", ","):
        columns.append(_parse_coldef(s))
    s.expect("punct", ")")
    buffer_rows = None
    if s.accept("keyword", "buffer"):
        buffer_rows = int(float(s.expect("number").value))
    return CreateTable(table, columns, buffer_rows)


def _parse_coldef(s: TokenStream):
    name = s.expect("ident").value
    type_token = s.peek()
    if type_token.kind not in ("ident", "keyword"):
        raise QueryError(f"expected column type at position {type_token.position}")
    s.next()
    return (name, type_token.value)
