"""AST node definitions for the CQL variant."""

from __future__ import annotations

from typing import Any, List, Optional, Tuple


class Expr:
    """Base expression node."""


class Literal(Expr):
    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


class ColumnRef(Expr):
    """A column reference, optionally qualified: ``flows.bytes``."""

    __slots__ = ("table", "name")

    def __init__(self, name: str, table: Optional[str] = None):
        self.name = name.lower()
        self.table = table.lower() if table else None

    def __repr__(self) -> str:
        return f"ColumnRef({self.table + '.' if self.table else ''}{self.name})"


class Unary(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        self.op = op
        self.operand = operand

    def __repr__(self) -> str:
        return f"Unary({self.op!r}, {self.operand!r})"


class Binary(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"Binary({self.op!r}, {self.left!r}, {self.right!r})"


class FunctionCall(Expr):
    """Aggregate or scalar function call; ``count(*)`` has star=True."""

    __slots__ = ("name", "args", "star")

    def __init__(self, name: str, args: List[Expr], star: bool = False):
        self.name = name.lower()
        self.args = args
        self.star = star

    def __repr__(self) -> str:
        inner = "*" if self.star else ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"


class InList(Expr):
    __slots__ = ("needle", "haystack", "negated")

    def __init__(self, needle: Expr, haystack: List[Expr], negated: bool = False):
        self.needle = needle
        self.haystack = haystack
        self.negated = negated


class Projection:
    """One SELECT item: expression plus optional alias."""

    __slots__ = ("expr", "alias")

    def __init__(self, expr: Expr, alias: Optional[str] = None):
        self.expr = expr
        self.alias = alias.lower() if alias else None

    def __repr__(self) -> str:
        return f"Projection({self.expr!r}, alias={self.alias!r})"


# Window kinds.
W_RANGE = "range"  # [RANGE n SECONDS] — rows in the trailing interval
W_ROWS = "rows"  # [ROWS n]          — the last n rows
W_NOW = "now"  # [NOW]             — the single newest row
W_SINCE = "since"  # [SINCE t]         — rows at/after absolute time t
W_ALL = "all"  # no window         — everything retained in the ring


class Window:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: float = 0.0):
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:
        return f"Window({self.kind}, {self.value})"


class TableRef:
    """A FROM item: table name, optional window and alias."""

    __slots__ = ("table", "window", "alias")

    def __init__(self, table: str, window: Optional[Window] = None, alias: Optional[str] = None):
        self.table = table.lower()
        self.window = window or Window(W_ALL)
        self.alias = (alias or table).lower()

    def __repr__(self) -> str:
        return f"TableRef({self.table}, {self.window}, as={self.alias})"


class OrderItem:
    __slots__ = ("expr", "descending")

    def __init__(self, expr: Expr, descending: bool = False):
        self.expr = expr
        self.descending = descending


class Select:
    """A parsed SELECT statement."""

    def __init__(
        self,
        projections: List[Projection],
        sources: List[TableRef],
        where: Optional[Expr] = None,
        group_by: Optional[List[Expr]] = None,
        having: Optional[Expr] = None,
        order_by: Optional[List[OrderItem]] = None,
        limit: Optional[int] = None,
        star: bool = False,
        distinct: bool = False,
    ):
        self.projections = projections
        self.sources = sources
        self.where = where
        self.group_by = group_by or []
        self.having = having
        self.order_by = order_by or []
        self.limit = limit
        self.star = star
        self.distinct = distinct

    def __repr__(self) -> str:
        return f"Select(sources={self.sources}, star={self.star})"


class Explain:
    """EXPLAIN [ANALYZE] <select> — show the engine's plan for a query.

    Plain EXPLAIN renders the compiled operator DAG; EXPLAIN ANALYZE
    also executes the query once and annotates each operator with
    observed row counts and timings.
    """

    def __init__(self, select: Select, analyze: bool = False):
        self.select = select
        self.analyze = analyze

    def __repr__(self) -> str:
        return f"Explain(analyze={self.analyze}, {self.select!r})"


class Insert:
    """INSERT INTO table [(cols)] VALUES (literals)."""

    def __init__(self, table: str, columns: Optional[List[str]], values: List[Any]):
        self.table = table.lower()
        self.columns = [c.lower() for c in columns] if columns else None
        self.values = values


class CreateTable:
    """CREATE TABLE name (col type, ...) [BUFFER n]."""

    def __init__(self, table: str, columns: List[Tuple[str, str]], buffer_rows: Optional[int]):
        self.table = table.lower()
        self.columns = columns
        self.buffer_rows = buffer_rows
