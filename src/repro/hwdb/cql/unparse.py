"""Render a CQL AST back to query text.

Useful for logging installed subscriptions, for the RPC server to echo
normalised queries, and for property-testing the parser: for any AST,
``parse(unparse(ast))`` must produce an equivalent statement.
"""

from __future__ import annotations

from ...core.errors import QueryError
from .ast_nodes import (
    Binary,
    ColumnRef,
    CreateTable,
    Explain,
    Expr,
    FunctionCall,
    InList,
    Insert,
    Literal,
    OrderItem,
    Projection,
    Select,
    TableRef,
    Unary,
    W_ALL,
    W_NOW,
    W_RANGE,
    W_ROWS,
    W_SINCE,
)


def unparse_expr(expr: Expr) -> str:
    if isinstance(expr, Literal):
        return _literal(expr.value)
    if isinstance(expr, ColumnRef):
        if expr.table:
            return f"{expr.table}.{expr.name}"
        return expr.name
    if isinstance(expr, Unary):
        if expr.op == "not":
            return f"NOT ({unparse_expr(expr.operand)})"
        return f"{expr.op}({unparse_expr(expr.operand)})"
    if isinstance(expr, Binary):
        if expr.op == "is_null":
            return f"({unparse_expr(expr.left)}) IS NULL"
        op = {"and": "AND", "or": "OR", "like": "LIKE"}.get(expr.op, expr.op)
        return f"({unparse_expr(expr.left)} {op} {unparse_expr(expr.right)})"
    if isinstance(expr, InList):
        items = ", ".join(unparse_expr(i) for i in expr.haystack)
        keyword = "NOT IN" if expr.negated else "IN"
        return f"({unparse_expr(expr.needle)} {keyword} ({items}))"
    if isinstance(expr, FunctionCall):
        if expr.star:
            return f"{expr.name}(*)"
        return f"{expr.name}({', '.join(unparse_expr(a) for a in expr.args)})"
    raise QueryError(f"cannot unparse expression {expr!r}")


def _literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _window(ref: TableRef) -> str:
    window = ref.window
    if window.kind == W_ALL:
        return ""
    if window.kind == W_NOW:
        return " [NOW]"
    if window.kind == W_RANGE:
        return f" [RANGE {window.value!r} SECONDS]"
    if window.kind == W_ROWS:
        return f" [ROWS {int(window.value)}]"
    if window.kind == W_SINCE:
        return f" [SINCE {window.value!r}]"
    raise QueryError(f"cannot unparse window {window!r}")


def _table_ref(ref: TableRef) -> str:
    text = ref.table + _window(ref)
    if ref.alias != ref.table:
        text += f" AS {ref.alias}"
    return text


def _projection(projection: Projection) -> str:
    text = unparse_expr(projection.expr)
    if projection.alias:
        text += f" AS {projection.alias}"
    return text


def _order_item(item: OrderItem) -> str:
    return unparse_expr(item.expr) + (" DESC" if item.descending else " ASC")


def unparse(statement) -> str:
    """Render a statement AST to parseable query text."""
    if isinstance(statement, Select):
        parts = ["SELECT"]
        if statement.distinct:
            parts.append("DISTINCT")
        if statement.star:
            parts.append("*")
        else:
            parts.append(", ".join(_projection(p) for p in statement.projections))
        parts.append("FROM")
        parts.append(", ".join(_table_ref(r) for r in statement.sources))
        if statement.where is not None:
            parts.append("WHERE " + unparse_expr(statement.where))
        if statement.group_by:
            parts.append(
                "GROUP BY " + ", ".join(unparse_expr(e) for e in statement.group_by)
            )
        if statement.having is not None:
            parts.append("HAVING " + unparse_expr(statement.having))
        if statement.order_by:
            parts.append(
                "ORDER BY " + ", ".join(_order_item(i) for i in statement.order_by)
            )
        if statement.limit is not None:
            parts.append(f"LIMIT {statement.limit}")
        return " ".join(parts)
    if isinstance(statement, Explain):
        prefix = "EXPLAIN ANALYZE " if statement.analyze else "EXPLAIN "
        return prefix + unparse(statement.select)
    if isinstance(statement, Insert):
        columns = (
            " (" + ", ".join(statement.columns) + ")" if statement.columns else ""
        )
        values = ", ".join(_literal(v) for v in statement.values)
        return f"INSERT INTO {statement.table}{columns} VALUES ({values})"
    if isinstance(statement, CreateTable):
        columns = ", ".join(f"{name} {tname}" for name, tname in statement.columns)
        text = f"CREATE TABLE {statement.table} ({columns})"
        if statement.buffer_rows is not None:
            text += f" BUFFER {statement.buffer_rows}"
        return text
    raise QueryError(f"cannot unparse statement {statement!r}")
