"""Query executor for the CQL variant.

Evaluates a parsed :class:`~repro.hwdb.cql.ast_nodes.Select` against the
database's ring-buffer tables at a given instant: applies per-stream
windows (the *temporal* operators), joins sources (the *relational*
operators), then filters, groups, aggregates, orders and limits.
"""

from __future__ import annotations

import itertools
import math
import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ...core.errors import QueryError
from ..table import Row, StreamTable, TS_COLUMN
from .ast_nodes import (
    Binary,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    Literal,
    OrderItem,
    Projection,
    Select,
    TableRef,
    Unary,
    W_ALL,
    W_NOW,
    W_RANGE,
    W_ROWS,
    W_SINCE,
)
from .parser import AGGREGATE_FUNCTIONS


class ResultSet:
    """Query output: column names plus rows of values."""

    __slots__ = ("columns", "rows", "executed_at")

    def __init__(self, columns: List[str], rows: List[Tuple], executed_at: float = 0.0):
        self.columns = columns
        self.rows = rows
        self.executed_at = executed_at

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> List[Any]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise QueryError(f"result has no column {name!r}") from None
        return [row[index] for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise QueryError(
                f"scalar() needs a 1x1 result, have "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def __repr__(self) -> str:
        return f"ResultSet(columns={self.columns}, rows={len(self.rows)})"


class _Binding:
    """One joined row: alias → (table, row) with column resolution."""

    __slots__ = ("sources",)

    def __init__(self, sources: Dict[str, Tuple[StreamTable, Row]]):
        self.sources = sources

    def resolve(self, ref: ColumnRef) -> Any:
        if ref.table is not None:
            try:
                table, row = self.sources[ref.table]
            except KeyError:
                raise QueryError(f"unknown table alias {ref.table!r}") from None
            return _column_value(table, row, ref.name)
        matches = [
            (table, row)
            for table, row in self.sources.values()
            if table.has_column(ref.name)
        ]
        if not matches:
            raise QueryError(f"unknown column {ref.name!r}")
        if len(matches) > 1 and ref.name != TS_COLUMN:
            raise QueryError(f"ambiguous column {ref.name!r}; qualify it")
        table, row = matches[0]
        return _column_value(table, row, ref.name)


def _column_value(table: StreamTable, row: Row, name: str) -> Any:
    if name == TS_COLUMN:
        return row.timestamp
    return row.values[table.column_position(name)]


def apply_window(table: StreamTable, ref: TableRef, now: float) -> List[Row]:
    """Materialise the windowed view of ``table`` at time ``now``."""
    return apply_window_ex(table, ref, now)[0]


def apply_window_ex(table: StreamTable, ref: TableRef, now: float):
    """:func:`apply_window` plus the archive-scan audit, as a pair.

    When the table carries a durable tier (the duck-typed
    ``table.archive`` attribute set by ``repro.store``) and the window
    reaches past what the ring retains, the scan transparently extends
    over archived rows: archive rows come first (their seqs all precede
    the ring's), so the concatenation stays in timestamp order and has
    no duplicates.  The second element reports what the archive scan
    touched (segments pruned/opened) — ``None`` for ring-only windows
    ([NOW], [ROWS n]) or when the ring already covers the window.
    """
    window = ref.window
    if window.kind == W_NOW:
        newest = table.newest()
        return ([newest] if newest is not None else []), None
    if window.kind == W_ROWS:
        return table.last_rows(int(window.value)), None
    archive = getattr(table, "archive", None)
    if window.kind == W_ALL:
        rows = list(table.rows())
        if archive is not None and table.overwritten > 0:
            archived, info = archive.scan_since(float("-inf"))
            return archived + rows, info
        return rows, None
    if window.kind == W_RANGE:
        start = now - window.value
    elif window.kind == W_SINCE:
        start = window.value
    else:
        raise QueryError(f"unsupported window kind {window.kind!r}")
    if archive is not None and table.overwritten > 0:
        oldest = table.oldest()
        if oldest is None or start <= oldest.timestamp:
            # The window starts at or before the ring's oldest row:
            # history past the ring may qualify, so consult the archive.
            archived, info = archive.scan_since(start)
            return archived + list(table.rows_since(start)), info
    return list(table.rows_since(start)), None


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------

def _has_aggregate(expr: Expr) -> bool:
    if isinstance(expr, FunctionCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            return True
        return any(_has_aggregate(a) for a in expr.args)
    if isinstance(expr, Binary):
        return _has_aggregate(expr.left) or _has_aggregate(expr.right)
    if isinstance(expr, Unary):
        return _has_aggregate(expr.operand)
    if isinstance(expr, InList):
        return _has_aggregate(expr.needle) or any(
            _has_aggregate(i) for i in expr.haystack
        )
    return False


def _like_to_regex(pattern: str) -> re.Pattern:
    out = ["^"]
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    out.append("$")
    return re.compile("".join(out), re.IGNORECASE)


class Evaluator:
    """Evaluates expressions over a binding (and a group for aggregates)."""

    def __init__(self, now: float):
        self.now = now

    # -- scalar path -----------------------------------------------------

    def scalar(self, expr: Expr, binding: Optional[_Binding]) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            if binding is None:
                raise QueryError(f"column {expr.name!r} outside row context")
            return binding.resolve(expr)
        if isinstance(expr, Unary):
            return self._unary(expr, lambda e: self.scalar(e, binding))
        if isinstance(expr, Binary):
            return self._binary(expr, lambda e: self.scalar(e, binding))
        if isinstance(expr, InList):
            return self._in_list(expr, lambda e: self.scalar(e, binding))
        if isinstance(expr, FunctionCall):
            if expr.name in AGGREGATE_FUNCTIONS:
                raise QueryError(
                    f"aggregate {expr.name}() not allowed in row context"
                )
            return self._scalar_function(expr, lambda e: self.scalar(e, binding))
        raise QueryError(f"cannot evaluate expression {expr!r}")

    # -- aggregate path ---------------------------------------------------

    def aggregate(self, expr: Expr, group: Sequence[_Binding]) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            # A bare column inside an aggregate query: value from the
            # first group row (valid when it's a group key).
            if not group:
                return None
            return group[0].resolve(expr)
        if isinstance(expr, Unary):
            return self._unary(expr, lambda e: self.aggregate(e, group))
        if isinstance(expr, Binary):
            return self._binary(expr, lambda e: self.aggregate(e, group))
        if isinstance(expr, InList):
            return self._in_list(expr, lambda e: self.aggregate(e, group))
        if isinstance(expr, FunctionCall):
            if expr.name in AGGREGATE_FUNCTIONS:
                return self._aggregate_function(expr, group)
            return self._scalar_function(expr, lambda e: self.aggregate(e, group))
        raise QueryError(f"cannot evaluate expression {expr!r}")

    def _aggregate_function(self, call: FunctionCall, group: Sequence[_Binding]) -> Any:
        if call.name == "count":
            if call.star:
                return len(group)
            values = self._arg_values(call, group)
            return sum(1 for v in values if v is not None)
        values = [v for v in self._arg_values(call, group) if v is not None]
        if call.name == "sum":
            return sum(values) if values else 0
        if call.name == "avg":
            return sum(values) / len(values) if values else None
        if call.name == "min":
            return min(values) if values else None
        if call.name == "max":
            return max(values) if values else None
        if call.name == "first":
            return values[0] if values else None
        if call.name == "last":
            return values[-1] if values else None
        if call.name == "stddev":
            if len(values) < 2:
                return 0.0
            mean = sum(values) / len(values)
            return math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))
        raise QueryError(f"unknown aggregate {call.name!r}")

    def _arg_values(self, call: FunctionCall, group: Sequence[_Binding]) -> List[Any]:
        if not call.args:
            raise QueryError(f"{call.name}() needs an argument")
        arg = call.args[0]
        return [self.scalar(arg, binding) for binding in group]

    # -- shared operator logic ---------------------------------------------

    def _unary(self, expr: Unary, ev: Callable[[Expr], Any]) -> Any:
        value = ev(expr.operand)
        if expr.op == "not":
            return not _truthy(value)
        if expr.op == "-":
            return -value if value is not None else None
        raise QueryError(f"unknown unary operator {expr.op!r}")

    def _binary(self, expr: Binary, ev: Callable[[Expr], Any]) -> Any:
        op = expr.op
        if op == "and":
            return _truthy(ev(expr.left)) and _truthy(ev(expr.right))
        if op == "or":
            return _truthy(ev(expr.left)) or _truthy(ev(expr.right))
        left = ev(expr.left)
        if op == "is_null":
            return left is None
        right = ev(expr.right)
        if op == "like":
            if left is None or right is None:
                return False
            return bool(_like_to_regex(str(right)).match(str(left)))
        if op in ("=", "!="):
            equal = left == right
            return equal if op == "=" else not equal
        if left is None or right is None:
            return False if op in ("<", "<=", ">", ">=") else None
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return None
            return left / right
        if op == "%":
            if right == 0:
                return None
            return left % right
        raise QueryError(f"unknown operator {op!r}")

    def _in_list(self, expr: InList, ev: Callable[[Expr], Any]) -> bool:
        needle = ev(expr.needle)
        found = any(needle == ev(item) for item in expr.haystack)
        return (not found) if expr.negated else found

    def _scalar_function(self, call: FunctionCall, ev: Callable[[Expr], Any]) -> Any:
        args = [ev(a) for a in call.args]
        name = call.name
        if name == "now":
            return self.now
        if name == "abs":
            return abs(args[0]) if args and args[0] is not None else None
        if name == "upper":
            return str(args[0]).upper() if args and args[0] is not None else None
        if name == "lower":
            return str(args[0]).lower() if args and args[0] is not None else None
        if name == "round":
            if not args or args[0] is None:
                return None
            digits = int(args[1]) if len(args) > 1 and args[1] is not None else 0
            return round(args[0], digits)
        if name == "length":
            return len(str(args[0])) if args and args[0] is not None else None
        if name == "coalesce":
            for value in args:
                if value is not None:
                    return value
            return None
        raise QueryError(f"unknown function {name!r}")


def _truthy(value: Any) -> bool:
    return bool(value)


# ----------------------------------------------------------------------
# SELECT execution
# ----------------------------------------------------------------------

def execute_select(
    select: Select,
    tables: Dict[str, StreamTable],
    now: float,
) -> ResultSet:
    """Run ``select`` against ``tables`` at time ``now``."""
    evaluator = Evaluator(now)

    # 1. Windowed sources.
    alias_rows: List[Tuple[str, StreamTable, List[Row]]] = []
    seen_aliases = set()
    for ref in select.sources:
        table = tables.get(ref.table)
        if table is None:
            raise QueryError(f"no such table {ref.table!r}")
        if ref.alias in seen_aliases:
            raise QueryError(f"duplicate table alias {ref.alias!r}")
        seen_aliases.add(ref.alias)
        alias_rows.append((ref.alias, table, apply_window(table, ref, now)))

    # 2. Join (cartesian product filtered by WHERE).
    bindings: List[_Binding] = []
    for combo in itertools.product(*(rows for _, _, rows in alias_rows)):
        binding = _Binding(
            {
                alias: (table, row)
                for (alias, table, _), row in zip(alias_rows, combo)
            }
        )
        if select.where is None or _truthy(evaluator.scalar(select.where, binding)):
            bindings.append(binding)

    # 3. Projection plan.
    if select.star:
        projections = _star_projections(alias_rows, len(select.sources) > 1)
    else:
        projections = select.projections
    aggregated = bool(select.group_by) or any(
        _has_aggregate(p.expr) for p in projections
    )

    columns = [_projection_name(p, i) for i, p in enumerate(projections)]

    # 4. Grouping / aggregation.
    if aggregated:
        groups = _group(bindings, select.group_by, evaluator)
        out_rows: List[Tuple] = []
        for group in groups:
            if select.having is not None and not _truthy(
                evaluator.aggregate(select.having, group)
            ):
                continue
            out_rows.append(
                tuple(evaluator.aggregate(p.expr, group) for p in projections)
            )
    else:
        out_rows = [
            tuple(evaluator.scalar(p.expr, binding) for p in projections)
            for binding in bindings
        ]

    # 5. DISTINCT, then ORDER BY + LIMIT.
    if select.distinct:
        seen = set()
        unique: List[Tuple] = []
        for row in out_rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        out_rows = unique
    if select.order_by:
        out_rows = _order_rows(out_rows, select.order_by, projections, columns, evaluator)
    if select.limit is not None:
        out_rows = out_rows[: select.limit]

    return ResultSet(columns, out_rows, executed_at=now)


def _star_projections(alias_rows, qualify: bool) -> List[Projection]:
    projections: List[Projection] = []
    for alias, table, _rows in alias_rows:
        projections.append(
            Projection(
                ColumnRef(TS_COLUMN, table=alias),
                alias=f"{alias}.{TS_COLUMN}" if qualify else TS_COLUMN,
            )
        )
        for column in table.columns:
            projections.append(
                Projection(
                    ColumnRef(column.name, table=alias),
                    alias=f"{alias}.{column.name}" if qualify else column.name,
                )
            )
    return projections


def _projection_name(projection: Projection, index: int) -> str:
    if projection.alias:
        return projection.alias
    expr = projection.expr
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FunctionCall):
        if expr.star:
            return f"{expr.name}_star"
        if expr.args and isinstance(expr.args[0], ColumnRef):
            return f"{expr.name}_{expr.args[0].name}"
        return expr.name
    return f"col{index}"


def _group(
    bindings: List[_Binding],
    group_by: List[Expr],
    evaluator: Evaluator,
) -> List[List[_Binding]]:
    if not group_by:
        return [bindings]
    buckets: Dict[Tuple, List[_Binding]] = {}
    for binding in bindings:
        key = tuple(evaluator.scalar(expr, binding) for expr in group_by)
        buckets.setdefault(key, []).append(binding)
    return list(buckets.values())


def _order_rows(
    rows: List[Tuple],
    order_by: List[OrderItem],
    projections: List[Projection],
    columns: List[str],
    evaluator: Evaluator,
) -> List[Tuple]:
    # ORDER BY may name an output column (common case) — resolve to index.
    def key_for(item: OrderItem) -> Callable[[Tuple], Any]:
        expr = item.expr
        if isinstance(expr, ColumnRef) and expr.table is None and expr.name in columns:
            index = columns.index(expr.name)
            return lambda row: row[index]
        # Positional: ORDER BY 2
        if isinstance(expr, Literal) and isinstance(expr.value, int):
            index = expr.value - 1
            if not 0 <= index < len(columns):
                raise QueryError(f"ORDER BY position {expr.value} out of range")
            return lambda row: row[index]
        raise QueryError("ORDER BY must reference an output column or position")

    for item in reversed(order_by):
        key = key_for(item)
        rows = sorted(
            rows,
            key=lambda row: (key(row) is None, key(row)),
            reverse=item.descending,
        )
    return rows


# ----------------------------------------------------------------------
# Public aliases for the query engine
# ----------------------------------------------------------------------
# ``repro.query`` compiles SELECTs into an operator DAG but reuses this
# module's row model and evaluation semantics wholesale, so the two
# execution paths cannot drift apart.  These names are that contract.

Binding = _Binding
group_bindings = _group
order_rows = _order_rows
projection_name = _projection_name
star_projections = _star_projections
has_aggregate = _has_aggregate
truthy = _truthy
