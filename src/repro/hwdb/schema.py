"""The standard Homework measurement-plane schema.

"Tables used are Flows, periodically observed active five-tuples; Links,
link-layer information, e.g., MAC address and received signal strength
(RSSI); and Leases, mapping Ethernet to IP address."
"""

from __future__ import annotations

from typing import Optional

from .database import HomeworkDatabase

#: Periodically observed active five-tuples with byte/packet deltas.
FLOWS_SCHEMA = [
    ("src_ip", "ipaddr"),
    ("dst_ip", "ipaddr"),
    ("proto", "integer"),
    ("src_port", "integer"),
    ("dst_port", "integer"),
    ("src_mac", "macaddr"),
    ("packets", "integer"),
    ("bytes", "integer"),
]

#: Link-layer observations per station.
LINKS_SCHEMA = [
    ("mac", "macaddr"),
    ("rssi", "real"),
    ("retries", "integer"),
    ("packets", "integer"),
    ("wired", "boolean"),
]

#: DHCP lease events mapping Ethernet to IP address.
LEASES_SCHEMA = [
    ("mac", "macaddr"),
    ("ip", "ipaddr"),
    ("hostname", "varchar"),
    ("action", "varchar"),  # granted | renewed | revoked | denied
    ("expires", "timestamp"),
]

#: DNS proxy observations: who asked for what, and the verdict.
DNS_SCHEMA = [
    ("device_ip", "ipaddr"),
    ("name", "varchar"),
    ("resolved_ip", "ipaddr"),
    ("allowed", "boolean"),
]

#: Telemetry snapshots published by the metrics flusher (obs subsystem).
#: One row per instrument field: a counter contributes one ``value`` row,
#: a histogram contributes count/sum/min/max/p50/p95/p99 rows.
METRICS_SCHEMA = [
    ("name", "varchar"),   # dotted instrument name, e.g. hwdb.append_seconds
    ("kind", "varchar"),   # counter | gauge | histogram
    ("field", "varchar"),  # value | count | sum | min | max | p50 | p95 | p99
    ("value", "real"),
]

STANDARD_TABLES = {
    "flows": FLOWS_SCHEMA,
    "links": LINKS_SCHEMA,
    "leases": LEASES_SCHEMA,
    "dns": DNS_SCHEMA,
    "metrics": METRICS_SCHEMA,
}


def install_standard_schema(
    db: HomeworkDatabase, capacity: Optional[int] = None
) -> None:
    """Create the Flows/Links/Leases (+Dns) tables on ``db``."""
    for name, schema in STANDARD_TABLES.items():
        if not db.has_table(name):
            db.create_table(name, schema, capacity)
