"""The standard Homework measurement-plane schema.

"Tables used are Flows, periodically observed active five-tuples; Links,
link-layer information, e.g., MAC address and received signal strength
(RSSI); and Leases, mapping Ethernet to IP address."
"""

from __future__ import annotations

from typing import Optional

from .database import HomeworkDatabase

#: Periodically observed active five-tuples with byte/packet deltas.
FLOWS_SCHEMA = [
    ("src_ip", "ipaddr"),
    ("dst_ip", "ipaddr"),
    ("proto", "integer"),
    ("src_port", "integer"),
    ("dst_port", "integer"),
    ("src_mac", "macaddr"),
    ("packets", "integer"),
    ("bytes", "integer"),
]

#: Link-layer observations per station.
LINKS_SCHEMA = [
    ("mac", "macaddr"),
    ("rssi", "real"),
    ("retries", "integer"),
    ("packets", "integer"),
    ("wired", "boolean"),
]

#: DHCP lease events mapping Ethernet to IP address.
LEASES_SCHEMA = [
    ("mac", "macaddr"),
    ("ip", "ipaddr"),
    ("hostname", "varchar"),
    ("action", "varchar"),  # granted | renewed | revoked | denied
    ("expires", "timestamp"),
]

#: DNS proxy observations: who asked for what, and the verdict.
DNS_SCHEMA = [
    ("device_ip", "ipaddr"),
    ("name", "varchar"),
    ("resolved_ip", "ipaddr"),
    ("allowed", "boolean"),
]

#: Telemetry snapshots published by the metrics flusher (obs subsystem).
#: One row per instrument field: a counter contributes one ``value`` row,
#: a histogram contributes count/sum/min/max/p50/p95/p99 rows.
METRICS_SCHEMA = [
    ("name", "varchar"),   # dotted instrument name, e.g. hwdb.append_seconds
    ("kind", "varchar"),   # counter | gauge | histogram
    ("field", "varchar"),  # value | count | sum | min | max | p50 | p95 | p99
    ("value", "real"),
]

#: Packet-lineage hop records published by the flight recorder
#: (repro.obs.trace).  One row per hop; ``trace_id`` groups a packet's
#: causal chain, ``parent`` is the seq of the causing hop (-1 for the
#: root).  Bounded like every stream table: the ring holds the most
#: recent lineages, sized by RouterConfig.hwdb_capacity.
TRACES_SCHEMA = [
    ("trace_id", "varchar"),
    ("seq", "integer"),
    ("parent", "integer"),
    ("component", "varchar"),  # registered trace component (net.trace)
    ("verb", "varchar"),       # tx | deliver | lookup | verdict | ...
    ("decision", "varchar"),   # hit | miss | permit | deny | drop | ...
    ("cause", "varchar"),      # free-form detail, e.g. "priority=0x9000"
    ("t", "real"),             # simulated timestamp of the hop
]

STANDARD_TABLES = {
    "flows": FLOWS_SCHEMA,
    "links": LINKS_SCHEMA,
    "leases": LEASES_SCHEMA,
    "dns": DNS_SCHEMA,
    "metrics": METRICS_SCHEMA,
    "traces": TRACES_SCHEMA,
}


def install_standard_schema(
    db: HomeworkDatabase, capacity: Optional[int] = None
) -> None:
    """Create the Flows/Links/Leases (+Dns) tables on ``db``."""
    for name, schema in STANDARD_TABLES.items():
        if not db.has_table(name):
            db.create_table(name, schema, capacity)
