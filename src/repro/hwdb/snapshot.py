"""Snapshot/restore for hwdb state.

hwdb is deliberately ephemeral — fixed-size ring buffers, no disk — but
a *checkpoint* of a running router (``repro.fleet``) must carry the
database across a process boundary and bring it back bit-identically.
These functions serialize everything observable about a database to
plain JSON-able dicts and rebuild it:

* per table: schema (column name/type pairs), capacity, every retained
  row (timestamp + coerced values), ``total_inserted`` and
  ``last_timestamp`` — so ``overwritten`` and monotonic-timestamp
  clamping behave identically after restore;
* per subscription: the query (unparsed back to CQL text), interval,
  ``deliver_empty`` and the delivery/execution counters.  Callbacks are
  code, not data — the restorer re-binds them via a factory (default: a
  no-op sink).

The payload is versioned (:data:`FORMAT`); loading any other version is
a hard error, never a silent best-effort.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List, Optional

from ..core.errors import HwdbError
from .cql.unparse import unparse
from .database import HomeworkDatabase, Subscription
from .table import StreamTable

#: On-disk format tag; bump on any incompatible payload change.
FORMAT = "repro.hwdb/1"

SubscriptionCallbackFactory = Callable[[Dict[str, Any]], Callable]


def snapshot_table(table: StreamTable) -> Dict[str, Any]:
    """Everything observable about one ring-buffer table, as a dict."""
    last_ts = table.last_timestamp
    return {
        "name": table.name,
        "capacity": table.capacity,
        "columns": [[column.name, column.ctype.name] for column in table.columns],
        "total_inserted": table.total_inserted,
        "last_timestamp": None if last_ts == float("-inf") else last_ts,
        "rows": [[row.timestamp, list(row.values)] for row in table.rows()],
    }


def restore_table(db: HomeworkDatabase, snap: Dict[str, Any]) -> StreamTable:
    """Recreate a table from :func:`snapshot_table` output inside ``db``."""
    name = str(snap["name"])
    if db.has_table(name):
        raise HwdbError(f"cannot restore table {name!r}: it already exists")
    columns = [(str(cname), str(tname)) for cname, tname in snap["columns"]]
    table = db.create_table(name, columns, int(snap["capacity"]))
    rows = [(float(ts), list(values)) for ts, values in snap["rows"]]
    if len(rows) > table.capacity:
        raise HwdbError(
            f"snapshot of {name!r} holds {len(rows)} rows but capacity is "
            f"{table.capacity}"
        )
    for ts, values in rows:
        table.insert(ts, values)
    table.total_inserted = int(snap["total_inserted"])
    last_ts = snap.get("last_timestamp")
    table.last_timestamp = float("-inf") if last_ts is None else float(last_ts)
    return table


def snapshot_subscription(subscription: Subscription) -> Dict[str, Any]:
    return {
        "query": unparse(subscription.select),
        "interval": subscription.interval,
        "deliver_empty": subscription.deliver_empty,
        "active": subscription.active,
        "executions": subscription.executions,
        "deliveries": subscription.deliveries,
    }


def snapshot_database(
    db: HomeworkDatabase, exclude_tables: tuple = (), store=None
) -> Dict[str, Any]:
    """Serialize a whole database (tables + subscriptions + counters).

    ``exclude_tables`` names tables to leave out — fleet checkpoints drop
    ``metrics`` because its rows carry wall-clock latencies that can
    never replay bit-identically.

    ``store`` (duck-typed: anything with ``manifest_summary()``) adds a
    ``"store"`` key describing the database's durable tier — segment ids
    and digests, never row payloads.  Restore ignores unknown keys, so
    snapshots stay loadable without a store.
    """
    excluded = {name.lower() for name in exclude_tables}
    snap = {
        "format": FORMAT,
        "default_capacity": db.default_capacity,
        "queries_executed": db.queries_executed,
        "inserts": db.inserts,
        "tables": [
            snapshot_table(db.table(name))
            for name in db.tables()
            if name not in excluded
        ],
        "subscriptions": [
            snapshot_subscription(sub)
            for sub in sorted(db.subscriptions(), key=lambda s: s.id)
            if sub.active
        ],
    }
    if store is not None:
        snap["store"] = store.manifest_summary()
    return snap


# SimulationError from re-arming subscription timers is unreachable:
# subscribe() rejects non-positive intervals with HwdbError before the
# scheduler (which raises it for the same condition) is ever called.
def restore_database(  # repro: ignore[deep-except-escape]
    db: HomeworkDatabase,
    snap: Dict[str, Any],
    callback_factory: Optional[SubscriptionCallbackFactory] = None,
) -> List[Subscription]:
    """Rebuild tables and re-register subscriptions from a snapshot.

    ``db`` should be freshly constructed (no tables).  Subscription
    callbacks are re-bound via ``callback_factory(sub_snapshot)``; with
    no factory they become no-op sinks.  Timers are re-armed only when
    the database has a scheduler attached.  Returns the restored
    subscriptions in snapshot order.
    """
    if snap.get("format") != FORMAT:
        raise HwdbError(
            f"unsupported hwdb snapshot format {snap.get('format')!r} "
            f"(expected {FORMAT!r})"
        )
    # The durable tier is rebuilt from its own directory (repro.store's
    # recover_store), never from the snapshot — the "store" key is audit
    # metadata (segment ids + digests). Validate its shape so a mangled
    # checkpoint fails at load, not when someone later reads the audit.
    store_snap = snap.get("store")
    if store_snap is not None and "tables" not in store_snap:
        raise HwdbError("malformed durable-store summary in snapshot")
    db.default_capacity = int(snap.get("default_capacity", db.default_capacity))
    for table_snap in snap["tables"]:
        restore_table(db, table_snap)
    db.queries_executed = int(snap.get("queries_executed", 0))
    db.inserts = int(snap.get("inserts", 0))
    restored: List[Subscription] = []
    for sub_snap in snap.get("subscriptions", ()):
        callback = (
            callback_factory(sub_snap) if callback_factory is not None else _no_op
        )
        subscription = db.subscribe(
            str(sub_snap["query"]),
            float(sub_snap["interval"]),
            callback,
            deliver_empty=bool(sub_snap.get("deliver_empty", False)),
            start=db._scheduler is not None,
        )
        subscription.executions = int(sub_snap.get("executions", 0))
        subscription.deliveries = int(sub_snap.get("deliveries", 0))
        if not bool(sub_snap.get("active", True)):
            # Standalone subscription snapshots can carry inactive subs;
            # restore them registered but quiescent.
            subscription.active = False
            if subscription._timer is not None:
                subscription._timer.cancel()
                subscription._timer = None
        restored.append(subscription)
    return restored


def table_digest(table: StreamTable) -> str:
    """SHA-256 over the retained rows (timestamps + values) and counters.

    Formatting is explicit (``repr`` for floats) so the digest is stable
    across processes regardless of ``PYTHONHASHSEED``.
    """
    hasher = hashlib.sha256()
    hasher.update(
        f"{table.name}|{table.capacity}|{table.total_inserted}\n".encode()
    )
    for row in table.rows():
        hasher.update(repr(row.timestamp).encode())
        for value in row.values:
            hasher.update(b"|")
            hasher.update(repr(value).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


def database_digests(
    db: HomeworkDatabase, exclude_tables: tuple = ("metrics",)
) -> Dict[str, str]:
    """Per-table digests (metrics excluded by default — wall-clock data)."""
    excluded = {name.lower() for name in exclude_tables}
    return {
        name: table_digest(db.table(name))
        for name in db.tables()
        if name not in excluded
    }


def _no_op(result) -> None:
    """Default restored-subscription sink: deliveries are counted, dropped."""


__all__ = [
    "FORMAT",
    "database_digests",
    "restore_database",
    "restore_table",
    "snapshot_database",
    "snapshot_subscription",
    "snapshot_table",
    "table_digest",
]
