"""The Homework Database (hwdb).

"An active ephemeral stream database which stores ephemeral events into a
fixed size memory buffer.  It links events into tables and supports
queries via a CQL variant able to express temporal and relational
operations on data.  The database supports a simple UDP-based RPC
interface enabling applications to subscribe to query results,
persisting output as desired."

This module is the database core: table management, inserts, one-shot
queries and continuous subscriptions.  The RPC front-end lives in
:mod:`repro.hwdb.rpc`, persistence in :mod:`repro.hwdb.persist`.
"""

from __future__ import annotations

import logging
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.clock import Clock
from ..core.errors import HwdbError, QueryError
from .cql.ast_nodes import CreateTable, Explain, Insert, Select
from .cql.executor import ResultSet, execute_select
from .cql.parser import parse
from .table import Column, StreamTable
from .types import type_by_name

logger = logging.getLogger(__name__)

SubscriptionCallback = Callable[[ResultSet], None]


class Subscription:
    """A continuous query: re-executed every ``interval`` seconds.

    This is hwdb's *active* behaviour — results are pushed to the
    subscriber rather than polled, which is how the paper's interfaces
    stay "dynamically updated from the active database".
    """

    _next_id = 1

    def __init__(
        self,
        db: "HomeworkDatabase",
        select: Select,
        interval: float,
        callback: SubscriptionCallback,
        deliver_empty: bool = False,
    ):
        self.id = Subscription._next_id
        Subscription._next_id += 1
        self.db = db
        self.select = select
        self.interval = interval
        self.callback = callback
        self.deliver_empty = deliver_empty
        self.active = True
        self.deliveries = 0
        self.executions = 0
        self._timer = None

    def fire(self) -> Optional[ResultSet]:
        """Execute once and deliver (subject to ``deliver_empty``).

        A query that can no longer execute (e.g. its table was dropped)
        cancels the subscription rather than crashing the scheduler.
        """
        if not self.active:
            return None
        timer = (
            self.db._registry.clock if self.db._registry is not None else None
        )
        started = timer() if timer is not None else None
        try:
            result = self.db.execute_parsed(self.select)
        except HwdbError:
            logger.warning(
                "subscription %d query no longer executable; cancelling", self.id
            )
            self.cancel()
            return None
        if started is not None:
            self.db._m_sub_fire.observe(timer() - started)
        self.executions += 1
        if result.rows or self.deliver_empty:
            self.deliveries += 1
            try:
                self.callback(result)
            except Exception:  # noqa: BLE001 - subscriber faults stay local
                logger.exception("subscription %d callback failed", self.id)
                if self.db._registry is not None:
                    self.db._registry.counter("hwdb.subscriber_error_total").inc()
        return result

    def cancel(self) -> None:
        self.active = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.db._drop_subscription(self.id)


class HomeworkDatabase:
    """hwdb: typed ring-buffer tables + CQL queries + subscriptions."""

    #: Latency sampling on the append path: time 1 insert in 16.  Keeps
    #: registry overhead far below the 5% budget bench_t1 enforces while
    #: still filling the histogram thousands of times per busy second.
    INSERT_SAMPLE_MASK = 0xF

    def __init__(self, clock: Clock, default_capacity: int = 4096, registry=None):
        self._clock = clock
        self.default_capacity = default_capacity
        self._tables: Dict[str, StreamTable] = {}
        self._subscriptions: Dict[int, Subscription] = {}
        self._scheduler = None  # set via attach_scheduler
        self._engine = None  # set via set_query_engine
        self._store = None  # set via set_store
        self.queries_executed = 0
        self.inserts = 0
        self.set_registry(registry)

    def set_registry(self, registry) -> None:
        """Attach (or detach) a metrics registry; None means no telemetry."""
        self._registry = registry
        if registry is None:
            self._m_inserts = None
            self._m_queries = None
            self._m_append = None
            self._m_query_lat = None
            self._m_subs_active = None
            self._m_sub_fire = None
        else:
            self._m_inserts = registry.counter("hwdb.insert_total")
            self._m_queries = registry.counter("hwdb.query_total")
            self._m_append = registry.histogram("hwdb.append_seconds")
            self._m_query_lat = registry.histogram("hwdb.query_seconds")
            self._m_subs_active = registry.gauge("hwdb.subscriptions_active")
            self._m_sub_fire = registry.histogram("hwdb.subscription_fire_seconds")

    def set_query_engine(self, engine) -> None:
        """Attach a continuous-query engine (duck-typed so hwdb never
        imports :mod:`repro.query`, which sits a layer above).

        When attached, SELECTs route through ``engine.execute_select``
        and EXPLAIN through ``engine.explain``; the engine is expected
        to be behaviourally identical to the legacy executor, falling
        back to it whenever in doubt.
        """
        self._engine = engine

    def set_store(self, store) -> None:
        """Attach a durable storage tier (duck-typed, like the query
        engine: hwdb never imports :mod:`repro.store`).

        The store is notified of table creation/drops so every ring
        gets its ``spill``/``archive`` hooks.  Attaching invalidates the
        query engine's plan cache — compiled plans capture whether a
        table's history extends past the ring.
        """
        self._store = store
        if self._engine is not None:
            self._engine.invalidate()

    @property
    def now(self) -> float:
        return self._clock.now()

    def attach_scheduler(self, scheduler) -> None:
        """Give the database a timer source (the simulator).

        Needed only for periodic subscriptions; one-shot queries and
        manually fired subscriptions work without it.
        """
        self._scheduler = scheduler

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[Tuple[str, str]],
        capacity: Optional[int] = None,
    ) -> StreamTable:
        """Create a ring-buffer table from (name, typename) pairs."""
        key = name.lower()
        if key in self._tables:
            raise HwdbError(f"table {name!r} already exists")
        cols = [Column(cname, type_by_name(tname)) for cname, tname in columns]
        table = StreamTable(key, cols, capacity or self.default_capacity)
        self._tables[key] = table
        if self._store is not None:
            self._store.on_create_table(table)
        if self._engine is not None:
            self._engine.invalidate()
        return table

    def drop_table(self, name: str) -> None:
        if name.lower() not in self._tables:
            raise HwdbError(f"no such table {name!r}")
        del self._tables[name.lower()]
        if self._store is not None:
            self._store.on_drop_table(name.lower())
        if self._engine is not None:
            self._engine.invalidate()

    def table(self, name: str) -> StreamTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise HwdbError(f"no such table {name!r}") from None

    def tables(self) -> List[str]:
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def insert(self, table_name: str, record: Union[Dict[str, Any], Sequence[Any]]) -> None:
        """Insert one event, timestamped with the database clock."""
        table = self.table(table_name)
        self.inserts += 1
        counter = self._m_inserts
        if counter is not None:
            # Inlined counter.inc(): this path runs per flow record, and
            # the attribute add is measurably cheaper than a method call.
            counter.value += 1
            if self.inserts & self.INSERT_SAMPLE_MASK == 0:
                timer = self._registry.clock
                t0 = timer()
                if isinstance(record, dict):
                    table.insert_dict(self.now, record)
                else:
                    table.insert(self.now, list(record))
                self._m_append.observe(timer() - t0)
                return
        if isinstance(record, dict):
            table.insert_dict(self.now, record)
        else:
            table.insert(self.now, list(record))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, text: str) -> ResultSet:
        """Parse and execute one statement (SELECT/INSERT/CREATE)."""
        statement = parse(text)
        return self.execute_parsed(statement)

    def execute_parsed(self, statement) -> ResultSet:
        self.queries_executed += 1
        if isinstance(statement, Select):
            if self._m_queries is not None:
                self._m_queries.inc()
                timer = self._registry.clock
                t0 = timer()
                result = self._execute_select(statement)
                self._m_query_lat.observe(timer() - t0)
                return result
            return self._execute_select(statement)
        if isinstance(statement, Explain):
            if self._engine is None:
                return ResultSet(
                    ["plan"],
                    [("legacy executor (no query engine attached)",)],
                    executed_at=self.now,
                )
            return self._engine.explain(statement, self._tables, self.now)
        if isinstance(statement, Insert):
            table = self.table(statement.table)
            if statement.columns is not None:
                if len(statement.columns) != len(statement.values):
                    raise QueryError("INSERT column/value count mismatch")
                record = dict(zip(statement.columns, statement.values))
                table.insert_dict(self.now, record)
            else:
                table.insert(self.now, statement.values)
            self.inserts += 1
            return ResultSet(["inserted"], [(1,)], executed_at=self.now)
        if isinstance(statement, CreateTable):
            self.create_table(statement.table, statement.columns, statement.buffer_rows)
            return ResultSet(["created"], [(statement.table,)], executed_at=self.now)
        raise QueryError(f"unsupported statement type {type(statement).__name__}")

    def _execute_select(self, statement: Select) -> ResultSet:
        if self._engine is not None:
            return self._engine.execute_select(statement, self._tables, self.now)
        return execute_select(statement, self._tables, self.now)

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------

    def subscribe(
        self,
        text: str,
        interval: float,
        callback: SubscriptionCallback,
        deliver_empty: bool = False,
        start: bool = True,
    ) -> Subscription:
        """Register a continuous query pushing results every ``interval`` s."""
        if interval <= 0:
            raise HwdbError(f"subscription interval must be positive: {interval}")
        statement = parse(text)
        if not isinstance(statement, Select):
            raise QueryError("only SELECT statements can be subscribed")
        subscription = Subscription(self, statement, interval, callback, deliver_empty)
        self._subscriptions[subscription.id] = subscription
        if self._m_subs_active is not None:
            self._m_subs_active.set(float(len(self._subscriptions)))
        if self._engine is not None:
            # Pin the compiled plan: subscriptions outlive ad-hoc cache
            # churn and carry the incremental state between fires.
            self._engine.attach_subscription(statement)
        if start:
            if self._scheduler is None:
                raise HwdbError(
                    "no scheduler attached; call attach_scheduler() or "
                    "use start=False and fire() manually"
                )
            subscription._timer = self._scheduler.schedule_periodic(
                interval, subscription.fire
            )
        return subscription

    def subscription(self, sub_id: int) -> Subscription:
        try:
            return self._subscriptions[sub_id]
        except KeyError:
            raise HwdbError(f"no subscription {sub_id}") from None

    def subscriptions(self) -> List[Subscription]:
        return list(self._subscriptions.values())

    def _drop_subscription(self, sub_id: int) -> None:
        subscription = self._subscriptions.pop(sub_id, None)
        if self._m_subs_active is not None:
            self._m_subs_active.set(float(len(self._subscriptions)))
        if subscription is not None and self._engine is not None:
            self._engine.detach_subscription(subscription.select)

    def stats(self) -> Dict[str, Any]:
        return {
            "tables": len(self._tables),
            "queries_executed": self.queries_executed,
            "inserts": self.inserts,
            "subscriptions": len(self._subscriptions),
            "rows_retained": sum(len(t) for t in self._tables.values()),
            "rows_overwritten": sum(t.overwritten for t in self._tables.values()),
        }

    def __repr__(self) -> str:
        return f"HomeworkDatabase(tables={self.tables()}, inserts={self.inserts})"
