"""Bandwidth aggregation for the visualisation interfaces.

Figure 1's display needs two views over the ``Flows`` table: bytes per
device, and bytes per protocol for one device.  Figure 2's Mode 2 needs
total bandwidth as a proportion of the last-day peak.  These functions
compute all three from hwdb.

Attribution: a flow is charged to the household device whose leased IP
appears as its source (upload) or destination (download) — so a video
stream *to* the TV counts as the TV's consumption, as a user expects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..core.errors import HwdbError
from ..hwdb.database import HomeworkDatabase
from ..net.addresses import AddressError, MACAddress
from .protocols import classify


class DeviceUsage:
    """One device's usage over a window."""

    __slots__ = ("mac", "hostname", "ip", "bytes_up", "bytes_down", "packets", "by_protocol")

    def __init__(self, mac: str, hostname: str = "", ip: str = ""):
        self.mac = mac
        self.hostname = hostname
        self.ip = ip
        self.bytes_up = 0
        self.bytes_down = 0
        self.packets = 0
        self.by_protocol: Dict[str, int] = {}

    @property
    def bytes(self) -> int:
        return self.bytes_up + self.bytes_down

    @property
    def display_name(self) -> str:
        return self.hostname or self.mac

    def __repr__(self) -> str:
        return f"DeviceUsage({self.display_name}, up={self.bytes_up}, down={self.bytes_down})"


class BandwidthAggregator:
    """Computes the per-device / per-protocol views from hwdb.

    The UIs poll these views every refresh tick, usually faster than new
    rows arrive.  Both the lease→device map and the full ``per_device``
    result are therefore memoized against table *generations* (each
    ``StreamTable.total_inserted`` counts every row ever written, so it
    is a perfect change detector): identical requests against an
    unchanged database are served from cache without re-running CQL.
    """

    #: Classification memo cap; a household sees far fewer distinct
    #: (proto, sport, dport) triples than this, so eviction is a
    #: pathological-traffic safety valve, not a steady-state event.
    CLASSIFY_MEMO_MAX = 16_384

    def __init__(self, db: HomeworkDatabase):
        self.db = db
        self._device_map_cache: Optional[Tuple[int, Dict[str, Tuple[str, str]]]] = None
        self._per_device_cache: Dict[
            float, Tuple[Tuple[int, int, float], List[DeviceUsage]]
        ] = {}
        # (proto, sport, dport) → protocol label.  classify() walks its
        # port tables per call; aggregation loops hit the same few
        # triples thousands of times per tick, so a flat dict probe
        # beats re-classifying every row (DESIGN.md §14).
        self._classify_memo: Dict[Tuple[int, int, int], str] = {}

    def _protocol_of(self, proto: int, sport: int, dport: int) -> str:
        memo_key = (proto, sport, dport)
        protocol = self._classify_memo.get(memo_key)
        if protocol is None:
            if len(self._classify_memo) >= self.CLASSIFY_MEMO_MAX:
                self._classify_memo.clear()
            protocol, _application = classify(proto, sport, dport)
            self._classify_memo[memo_key] = protocol
        return protocol

    def _generation(self, name: str) -> int:
        """Rows ever inserted into ``name`` (-1 when the table is absent)."""
        try:
            return self.db.table(name).total_inserted
        except HwdbError:
            return -1

    def _device_map(self) -> Dict[str, Tuple[str, str]]:
        """ip → (mac, hostname) from the latest lease grants.

        Cached against the leases-table generation: lease churn is rare
        (seconds to hours apart) while the UIs ask many times a second.
        """
        generation = self._generation("leases")
        if self._device_map_cache is not None and self._device_map_cache[0] == generation:
            return self._device_map_cache[1]
        result = self.db.query(
            "SELECT ip, last(mac) AS mac, last(hostname) AS hostname FROM leases "
            "WHERE action = 'granted' OR action = 'renewed' GROUP BY ip"
        )
        device_map = {row[0]: (row[1], row[2] or "") for row in result.rows}
        self._device_map_cache = (generation, device_map)
        return device_map

    def per_device(self, window: float) -> List[DeviceUsage]:
        """Per-device usage over the trailing ``window`` seconds.

        The left-hand side of Figure 1: bandwidth consumption per
        machine, heaviest first.  Flows touching no leased device (e.g.
        router-to-upstream control traffic) are ignored.

        Results are cached per window: a repeat call with no new flow or
        lease rows and an unchanged clock returns the same list again
        (a fresh list, but the same DeviceUsage objects) without
        touching hwdb.
        """
        key = (self._generation("flows"), self._generation("leases"), self.db.now)
        cached = self._per_device_cache.get(window)
        if cached is not None and cached[0] == key:
            return list(cached[1])
        device_map = self._device_map()
        result = self.db.query(
            f"SELECT src_ip, dst_ip, proto, src_port, dst_port, bytes, packets "
            f"FROM flows [RANGE {window} SECONDS]"
        )
        devices: Dict[str, DeviceUsage] = {}

        def usage_for(ip: str) -> Optional[DeviceUsage]:
            entry = device_map.get(ip)
            if entry is None:
                return None
            mac, hostname = entry
            usage = devices.get(mac)
            if usage is None:
                usage = DeviceUsage(mac, hostname, ip)
                devices[mac] = usage
            return usage

        for src_ip, dst_ip, proto, sport, dport, nbytes, packets in result.rows:
            protocol = self._protocol_of(proto, sport, dport)
            up = usage_for(src_ip)
            if up is not None:
                up.bytes_up += nbytes
                up.packets += packets
                up.by_protocol[protocol] = up.by_protocol.get(protocol, 0) + nbytes
            down = usage_for(dst_ip)
            if down is not None:
                down.bytes_down += nbytes
                down.packets += packets
                down.by_protocol[protocol] = down.by_protocol.get(protocol, 0) + nbytes
        ranked = sorted(devices.values(), key=lambda u: u.bytes, reverse=True)
        self._per_device_cache[window] = (key, ranked)
        return list(ranked)

    def per_protocol(
        self, device: Union[str, MACAddress], window: float
    ) -> List[Tuple[str, int]]:
        """One device's usage split by protocol (Figure 1, right-hand side).

        ``device`` may be a MAC or the device's leased IP.
        """
        device_map = self._device_map()
        target_ips = set()
        try:
            mac = str(MACAddress(device))
            target_ips = {ip for ip, (m, _h) in device_map.items() if m == mac}
        except AddressError:  # not a MAC, treat as IP
            target_ips = {str(device)}
        result = self.db.query(
            f"SELECT src_ip, dst_ip, proto, src_port, dst_port, bytes "
            f"FROM flows [RANGE {window} SECONDS]"
        )
        totals: Dict[str, int] = {}
        for src_ip, dst_ip, proto, sport, dport, nbytes in result.rows:
            if src_ip not in target_ips and dst_ip not in target_ips:
                continue
            protocol = self._protocol_of(proto, sport, dport)
            totals[protocol] = totals.get(protocol, 0) + nbytes
        return sorted(totals.items(), key=lambda item: item[1], reverse=True)

    def total_bytes(self, window: float) -> int:
        """Total bytes crossing the router in the trailing window."""
        result = self.db.query(
            f"SELECT sum(bytes) FROM flows [RANGE {window} SECONDS]"
        )
        value = result.scalar()
        return int(value or 0)

    def peak_rate(self, history: float = 86_400.0, bucket: float = 10.0) -> float:
        """Peak bytes/sec over ``history``, in ``bucket``-second bins.

        Mode 2 of the artifact maps "current total bandwidth usage of the
        network as a proportion of peak usage observed in the last day".
        """
        result = self.db.query(
            f"SELECT timestamp, bytes FROM flows [RANGE {history} SECONDS]"
        )
        if not result.rows:
            return 0.0
        buckets: Dict[int, int] = {}
        for timestamp, nbytes in result.rows:
            index = int(timestamp // bucket)
            buckets[index] = buckets.get(index, 0) + nbytes
        return max(buckets.values()) / bucket

    def utilisation(self, window: float = 10.0, history: float = 86_400.0) -> float:
        """Current rate as a proportion of the last-day peak, in [0, 1]."""
        peak = self.peak_rate(history)
        if peak <= 0:
            return 0.0
        current = self.total_bytes(window) / window
        return min(1.0, current / peak)
