"""The measurement plane: collectors into hwdb + aggregation views."""

from .aggregator import BandwidthAggregator, DeviceUsage
from .capture import PacketCapture
from .collectors import FlowCollector, LeaseCollector, LinkCollector
from .protocols import (
    TRANSPORT_NAMES,
    WELL_KNOWN,
    application_label,
    classify,
    protocol_label,
)

__all__ = [
    "BandwidthAggregator",
    "DeviceUsage",
    "PacketCapture",
    "FlowCollector",
    "LinkCollector",
    "LeaseCollector",
    "classify",
    "protocol_label",
    "application_label",
    "WELL_KNOWN",
    "TRANSPORT_NAMES",
]
