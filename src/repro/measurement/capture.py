"""Packet capture: mirror datapath traffic to pcap.

The Homework router sees every frame (the isolating DHCP allocation
guarantees it), so a tap on ``dp0`` is a complete household trace.
:class:`PacketCapture` attaches to a datapath and writes standard pcap
that external tools (tcpdump/wireshark) can read.
"""

from __future__ import annotations

from typing import BinaryIO, Optional, TYPE_CHECKING

from ..net.pcap import PcapWriter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..openflow.datapath import Datapath
    from ..sim.simulator import Simulator


class PacketCapture:
    """A datapath tap streaming frames into a pcap file."""

    def __init__(
        self,
        sim: "Simulator",
        datapath: "Datapath",
        stream: BinaryIO,
        snaplen: int = 65535,
        max_frames: Optional[int] = None,
    ):
        self.sim = sim
        self.datapath = datapath
        self.writer = PcapWriter(stream, snaplen=snaplen)
        self.max_frames = max_frames
        self.frames_captured = 0
        self.active = False

    def start(self) -> None:
        if not self.active:
            self.datapath.taps.append(self._tap)
            self.active = True

    def stop(self) -> None:
        if self.active:
            self.datapath.taps.remove(self._tap)
            self.active = False
        self.writer.flush()

    def _tap(self, raw: bytes, _in_port: int) -> None:
        if self.max_frames is not None and self.frames_captured >= self.max_frames:
            self.stop()
            return
        self.writer.write(self.sim.now, raw)
        self.frames_captured += 1

    def __enter__(self) -> "PacketCapture":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()
