"""Measurement collectors: the router's information plane feeds.

Three collectors populate hwdb's standard tables, mirroring the paper:

* :class:`FlowCollector` — polls the datapath's flow stats over the
  OpenFlow channel and writes per-interval deltas of active five-tuples
  into ``Flows``;
* :class:`LinkCollector` — samples each station's link (RSSI, retries)
  into ``Links``;
* :class:`LeaseCollector` — mirrors ``dhcp.*`` bus events into
  ``Leases`` (and ``dns.query`` events into ``Dns``).
"""

from __future__ import annotations

import logging
from typing import Dict, Optional, Tuple, TYPE_CHECKING, Union

from ..core.events import Event, EventBus
from ..hwdb.database import HomeworkDatabase
from ..net.addresses import MACAddress
from ..net.ethernet import ETH_TYPE_IPV4
from ..openflow.messages import STATS_FLOW, StatsReply

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..nox.controller import Controller
    from ..sim.link import Link
    from ..sim.simulator import Simulator

logger = logging.getLogger(__name__)

FlowStatsKey = Tuple[str, str, int, int, int, int]  # five-tuple + src mac


class FlowCollector:
    """Periodically observed active five-tuples → the ``Flows`` table.

    Two feeds: a periodic flow-stats poll over the OpenFlow channel, and
    flow-removed notifications that capture the tail of a flow's counters
    between its last poll and its expiry (otherwise those bytes would be
    lost to the measurement plane).
    """

    def __init__(
        self,
        sim: "Simulator",
        controller: "Controller",
        db: HomeworkDatabase,
        interval: float = 1.0,
    ):
        self.sim = sim
        self.controller = controller
        self.db = db
        self.interval = interval
        self._previous: Dict[FlowStatsKey, Tuple[int, int]] = {}
        self._timer = None
        self._removed_registration = None
        self.polls = 0
        self.rows_written = 0

    def start(self) -> None:
        self._timer = self.sim.schedule_periodic(self.interval, self.poll)
        from ..nox.controller import EV_FLOW_REMOVED

        self._removed_registration = self.controller.register_handler(
            EV_FLOW_REMOVED, self._on_flow_removed, priority=50, owner="flow_collector"
        )

    def _on_flow_removed(self, msg) -> int:
        """Final accounting for a flow leaving the table."""
        from ..nox.component import CONTINUE

        key = self._key_for_match(msg.match)
        if key is not None:
            prev_packets, prev_bytes = self._previous.pop(key, (0, 0))
            dp = msg.packet_count - prev_packets
            db = msg.byte_count - prev_bytes
            if dp > 0 or db > 0:
                self._write_row(key, max(dp, 0), max(db, 0))
        return CONTINUE

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._removed_registration is not None:
            self._removed_registration.cancel()
            self._removed_registration = None

    def poll(self) -> None:
        """Issue one flow-stats request; rows are written on the reply."""
        self.polls += 1
        self.controller.request_stats(STATS_FLOW, self._on_reply)

    @staticmethod
    def _key_for_match(match) -> Optional[FlowStatsKey]:
        if (
            match.dl_type != ETH_TYPE_IPV4
            or match.nw_src is None
            or match.nw_dst is None
            or match.nw_proto is None
            or match.dl_src is None
        ):
            return None
        return (
            str(match.nw_src),
            str(match.nw_dst),
            match.nw_proto,
            match.tp_src or 0,
            match.tp_dst or 0,
            int(match.dl_src),
        )

    def _write_row(self, key: FlowStatsKey, dp: int, db: int) -> None:
        src_ip, dst_ip, proto, sport, dport, src_mac = key
        self.db.insert(
            "flows",
            {
                "src_ip": src_ip,
                "dst_ip": dst_ip,
                "proto": proto,
                "src_port": sport,
                "dst_port": dport,
                "src_mac": MACAddress(src_mac),
                "packets": dp,
                "bytes": db,
            },
        )
        self.rows_written += 1

    def _on_reply(self, reply: StatsReply) -> None:
        current: Dict[FlowStatsKey, Tuple[int, int]] = {}
        for stats in reply.body:
            key = self._key_for_match(stats.match)
            if key is None:
                continue
            packets, nbytes = stats.packet_count, stats.byte_count
            previous = current.get(key)
            if previous is not None:
                packets += previous[0]
                nbytes += previous[1]
            current[key] = (packets, nbytes)
        for key, (packets, nbytes) in current.items():
            prev_packets, prev_bytes = self._previous.get(key, (0, 0))
            dp = packets - prev_packets
            db = nbytes - prev_bytes
            if dp < 0 or db < 0:
                # Flow was re-installed and counters reset.
                dp, db = packets, nbytes
            if dp == 0 and db == 0:
                continue
            self._write_row(key, dp, db)
        self._previous = current


class LinkCollector:
    """Link-layer samples (MAC, RSSI, retries) → the ``Links`` table."""

    def __init__(self, sim: "Simulator", db: HomeworkDatabase, interval: float = 1.0):
        self.sim = sim
        self.db = db
        self.interval = interval
        self._links: Dict[MACAddress, Tuple[Link, bool]] = {}
        self._prev_retries: Dict[MACAddress, int] = {}
        self._prev_frames: Dict[MACAddress, int] = {}
        self._timer = None
        self.rows_written = 0

    def register(self, mac: Union[str, MACAddress], link: "Link") -> None:
        """Track one station's access link."""
        mac = MACAddress(mac)
        # Structural check instead of isinstance: wireless links expose an
        # RSSI, and measurement must not import the simulator layer.
        wired = getattr(link, "rssi_dbm", None) is None
        self._links[mac] = (link, wired)

    def start(self) -> None:
        self._timer = self.sim.schedule_periodic(self.interval, self.poll)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def poll(self) -> None:
        for mac, (link, wired) in self._links.items():
            retries_total = getattr(link, "retries", 0)
            retries = retries_total - self._prev_retries.get(mac, 0)
            self._prev_retries[mac] = retries_total
            frames_total = link.frames_carried
            frames = frames_total - self._prev_frames.get(mac, 0)
            self._prev_frames[mac] = frames_total
            rssi = getattr(link, "rssi_dbm", 0.0)
            self.db.insert(
                "links",
                {
                    "mac": mac,
                    "rssi": rssi,
                    "retries": retries,
                    "packets": frames,
                    "wired": wired,
                },
            )
            self.rows_written += 1


class LeaseCollector:
    """Mirror DHCP and DNS events from the bus into hwdb tables."""

    _ACTIONS = {
        "dhcp.lease.granted": "granted",
        "dhcp.lease.renewed": "renewed",
        "dhcp.lease.revoked": "revoked",
        "dhcp.lease.denied": "denied",
    }

    def __init__(self, bus: EventBus, db: HomeworkDatabase):
        self.bus = bus
        self.db = db
        self.rows_written = 0
        self._subs = [
            bus.subscribe("dhcp.lease.*", self._on_lease),
            bus.subscribe("dns.query", self._on_dns),
        ]

    def stop(self) -> None:
        for sub in self._subs:
            sub.cancel()
        self._subs = []

    def _on_lease(self, event: Event) -> None:
        action = self._ACTIONS.get(event.name)
        if action is None:
            return
        self.db.insert(
            "leases",
            {
                "mac": event.get("mac", "00:00:00:00:00:00"),
                "ip": event.get("ip", "0.0.0.0"),
                "hostname": event.get("hostname", ""),
                "action": action,
                "expires": event.get("expires", 0.0),
            },
        )
        self.rows_written += 1

    def _on_dns(self, event: Event) -> None:
        self.db.insert(
            "dns",
            {
                "device_ip": event.get("device_ip", "0.0.0.0"),
                "name": event.get("name", ""),
                "resolved_ip": event.get("resolved_ip", "0.0.0.0"),
                "allowed": event.get("allowed", True),
            },
        )
        self.rows_written += 1
