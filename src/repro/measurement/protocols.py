"""The application–protocol mapping.

Figure 1 shows "per-device per-protocol bandwidth consumption ... to the
extent permitted by the imperfect application-protocol mapping".  The
mapping is imperfect by nature: it classifies flows by well-known port
and transport, which is exactly what we reproduce (e.g. everything on
443 is "web", even if it is really video).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from ..net.ipv4 import PROTO_ICMP, PROTO_TCP, PROTO_UDP

#: (proto, server-port) → (protocol label, application guess)
WELL_KNOWN: Dict[Tuple[int, int], Tuple[str, str]] = {
    (PROTO_TCP, 80): ("http", "web"),
    (PROTO_TCP, 443): ("https", "web"),
    (PROTO_TCP, 8080): ("http-alt", "web"),
    (PROTO_TCP, 22): ("ssh", "remote-access"),
    (PROTO_TCP, 23): ("telnet", "remote-access"),
    (PROTO_TCP, 25): ("smtp", "mail"),
    (PROTO_TCP, 143): ("imap", "mail"),
    (PROTO_TCP, 993): ("imaps", "mail"),
    (PROTO_TCP, 110): ("pop3", "mail"),
    (PROTO_TCP, 995): ("pop3s", "mail"),
    (PROTO_TCP, 1935): ("rtmp", "streaming"),
    (PROTO_TCP, 554): ("rtsp", "streaming"),
    (PROTO_TCP, 6881): ("bittorrent", "p2p"),
    (PROTO_UDP, 53): ("dns", "infrastructure"),
    (PROTO_TCP, 53): ("dns", "infrastructure"),
    (PROTO_UDP, 67): ("dhcp", "infrastructure"),
    (PROTO_UDP, 68): ("dhcp", "infrastructure"),
    (PROTO_UDP, 123): ("ntp", "infrastructure"),
    (PROTO_UDP, 987): ("hwdb-rpc", "infrastructure"),
    (PROTO_UDP, 8883): ("mqtt", "iot"),
    (PROTO_TCP, 8883): ("mqtts", "iot"),
    (PROTO_UDP, 5353): ("mdns", "infrastructure"),
}

TRANSPORT_NAMES = {PROTO_TCP: "tcp", PROTO_UDP: "udp", PROTO_ICMP: "icmp"}


@lru_cache(maxsize=4096)
def classify(proto: int, src_port: int, dst_port: int) -> Tuple[str, str]:
    """Classify a five-tuple into (protocol, application).

    The server side of a flow is guessed as the lower well-known port,
    checking both directions — the standard heuristic, imperfect as the
    paper admits.  Memoized: a household sees the same (proto, sport,
    dport) triples over and over, so repeat classifications skip the
    sorted-probe entirely.
    """
    if proto == PROTO_ICMP:
        return ("icmp", "infrastructure")
    for port in sorted((dst_port, src_port)):
        hit = WELL_KNOWN.get((proto, port))
        if hit is not None:
            return hit
    transport = TRANSPORT_NAMES.get(proto, f"proto-{proto}")
    return (transport, "other")


def protocol_label(proto: int, src_port: int, dst_port: int) -> str:
    return classify(proto, src_port, dst_port)[0]


def application_label(proto: int, src_port: int, dst_port: int) -> str:
    return classify(proto, src_port, dst_port)[1]
