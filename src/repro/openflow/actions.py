"""OpenFlow actions.

The paper: "There are four basic types of action, ranging from simply
dropping or forwarding the packet, to forwarding it to the controller for
further processing, to forwarding it through the switch's normal
processing pipeline.  Packets can be modified as they are forwarded."

An empty action list drops; :data:`PORT_CONTROLLER` punts to NOX;
:data:`PORT_NORMAL` hands the frame to the switch's learning pipeline;
``Set*`` actions rewrite headers in flight (how the router rewrites MACs
when routing between the per-device /30 networks).
"""

from __future__ import annotations

from typing import List, Union

from ..net.addresses import IPv4Address, MACAddress
from ..net.ethernet import Ethernet
from ..net.ipv4 import IPv4
from ..net.tcp import TCP
from ..net.udp import UDP

# Reserved port numbers, per OpenFlow 1.0.
PORT_MAX = 0xFF00
PORT_IN_PORT = 0xFFF8
PORT_TABLE = 0xFFF9
PORT_NORMAL = 0xFFFA
PORT_FLOOD = 0xFFFB
PORT_ALL = 0xFFFC
PORT_CONTROLLER = 0xFFFD
PORT_LOCAL = 0xFFFE
PORT_NONE = 0xFFFF

RESERVED_PORT_NAMES = {
    PORT_IN_PORT: "IN_PORT",
    PORT_TABLE: "TABLE",
    PORT_NORMAL: "NORMAL",
    PORT_FLOOD: "FLOOD",
    PORT_ALL: "ALL",
    PORT_CONTROLLER: "CONTROLLER",
    PORT_LOCAL: "LOCAL",
    PORT_NONE: "NONE",
}


class Action:
    """Base class; actions either forward (Output) or rewrite (Set*)."""

    def apply(self, frame: Ethernet) -> None:
        """Mutate ``frame`` in place (no-op for Output)."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == getattr(
            other, "__dict__", None
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class Output(Action):
    """Forward out a port (physical number or reserved constant)."""

    def __init__(self, port: int):
        self.port = int(port)

    def __repr__(self) -> str:
        name = RESERVED_PORT_NAMES.get(self.port, str(self.port))
        return f"Output({name})"


class SetDlSrc(Action):
    """Rewrite the Ethernet source address."""

    def __init__(self, mac: Union[str, MACAddress]):
        self.mac = MACAddress(mac)

    def apply(self, frame: Ethernet) -> None:
        frame.src = self.mac

    def __repr__(self) -> str:
        return f"SetDlSrc({self.mac})"


class SetDlDst(Action):
    """Rewrite the Ethernet destination address."""

    def __init__(self, mac: Union[str, MACAddress]):
        self.mac = MACAddress(mac)

    def apply(self, frame: Ethernet) -> None:
        frame.dst = self.mac

    def __repr__(self) -> str:
        return f"SetDlDst({self.mac})"


class SetNwSrc(Action):
    """Rewrite the IPv4 source address (NAT-style)."""

    def __init__(self, ip: Union[str, IPv4Address]):
        self.ip = IPv4Address(ip)

    def apply(self, frame: Ethernet) -> None:
        packet = frame.find(IPv4)
        if packet is not None:
            packet.src = self.ip

    def __repr__(self) -> str:
        return f"SetNwSrc({self.ip})"


class SetNwDst(Action):
    """Rewrite the IPv4 destination address."""

    def __init__(self, ip: Union[str, IPv4Address]):
        self.ip = IPv4Address(ip)

    def apply(self, frame: Ethernet) -> None:
        packet = frame.find(IPv4)
        if packet is not None:
            packet.dst = self.ip

    def __repr__(self) -> str:
        return f"SetNwDst({self.ip})"


class SetTpSrc(Action):
    """Rewrite the TCP/UDP source port."""

    def __init__(self, port: int):
        self.port = int(port)

    def apply(self, frame: Ethernet) -> None:
        for layer in (TCP, UDP):
            segment = frame.find(layer)
            if segment is not None:
                segment.sport = self.port
                return

    def __repr__(self) -> str:
        return f"SetTpSrc({self.port})"


class SetTpDst(Action):
    """Rewrite the TCP/UDP destination port."""

    def __init__(self, port: int):
        self.port = int(port)

    def apply(self, frame: Ethernet) -> None:
        for layer in (TCP, UDP):
            segment = frame.find(layer)
            if segment is not None:
                segment.dport = self.port
                return

    def __repr__(self) -> str:
        return f"SetTpDst({self.port})"


ActionList = List[Action]


def drop() -> ActionList:
    """The drop action list (empty, per OpenFlow semantics)."""
    return []


def output(port: int) -> ActionList:
    return [Output(port)]


def to_controller() -> ActionList:
    return [Output(PORT_CONTROLLER)]


def normal() -> ActionList:
    return [Output(PORT_NORMAL)]


def flood() -> ActionList:
    return [Output(PORT_FLOOD)]


def route_rewrite(
    src_mac: Union[str, MACAddress],
    dst_mac: Union[str, MACAddress],
    out_port: int,
) -> ActionList:
    """The router's standard L3 rewrite: new MACs, then output."""
    return [SetDlSrc(src_mac), SetDlDst(dst_mac), Output(out_port)]
