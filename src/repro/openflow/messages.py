"""OpenFlow protocol messages.

"An OpenFlow switch has three parts: a datapath, a secure channel
connecting to a controller, and the OpenFlow protocol used by the
controller to talk to the switch."  These are the protocol messages that
cross the secure channel, mirroring OpenFlow 1.0 message types.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from .actions import ActionList
from .flow_table import DEFAULT_PRIORITY, FlowEntry
from .match import Match

_xid_counter = itertools.count(1)


def next_xid() -> int:
    return next(_xid_counter)


class OpenFlowMessage:
    """Base class; every message carries a transaction id."""

    def __init__(self, xid: Optional[int] = None):
        self.xid = xid if xid is not None else next_xid()


class Hello(OpenFlowMessage):
    """Version negotiation greeting."""


class EchoRequest(OpenFlowMessage):
    """Liveness probe over the secure channel."""

    def __init__(self, data: bytes = b"", xid: Optional[int] = None):
        super().__init__(xid)
        self.data = data


class EchoReply(OpenFlowMessage):
    def __init__(self, data: bytes = b"", xid: Optional[int] = None):
        super().__init__(xid)
        self.data = data


class FeaturesRequest(OpenFlowMessage):
    """Controller asks the switch what it is."""


class PortDescription:
    """One physical port in a features reply / port status."""

    __slots__ = ("number", "name", "hw_addr", "up")

    def __init__(self, number: int, name: str, hw_addr: str = "", up: bool = True):
        self.number = number
        self.name = name
        self.hw_addr = hw_addr
        self.up = up

    def __repr__(self) -> str:
        return f"PortDescription({self.number}, {self.name!r}, up={self.up})"


class FeaturesReply(OpenFlowMessage):
    def __init__(
        self,
        datapath_id: int,
        ports: List[PortDescription],
        n_tables: int = 1,
        xid: Optional[int] = None,
    ):
        super().__init__(xid)
        self.datapath_id = datapath_id
        self.ports = list(ports)
        self.n_tables = n_tables


# Packet-in reasons.
REASON_NO_MATCH = 0
REASON_ACTION = 1


class PacketIn(OpenFlowMessage):
    """A packet punted to the controller (table miss or explicit action)."""

    def __init__(
        self,
        buffer_id: int,
        in_port: int,
        reason: int,
        data: bytes,
        total_len: Optional[int] = None,
        xid: Optional[int] = None,
    ):
        super().__init__(xid)
        self.buffer_id = buffer_id
        self.in_port = in_port
        self.reason = reason
        self.data = data
        self.total_len = total_len if total_len is not None else len(data)


NO_BUFFER = 0xFFFFFFFF


class PacketOut(OpenFlowMessage):
    """Controller-originated packet injection."""

    def __init__(
        self,
        actions: ActionList,
        data: bytes = b"",
        buffer_id: int = NO_BUFFER,
        in_port: int = 0xFFFF,
        xid: Optional[int] = None,
    ):
        super().__init__(xid)
        self.actions = list(actions)
        self.data = data
        self.buffer_id = buffer_id
        self.in_port = in_port


# Flow-mod commands.
FC_ADD = 0
FC_MODIFY = 1
FC_MODIFY_STRICT = 2
FC_DELETE = 3
FC_DELETE_STRICT = 4


class FlowMod(OpenFlowMessage):
    """Add/modify/delete rules in the datapath's flow table."""

    def __init__(
        self,
        command: int,
        match: Match,
        actions: Optional[ActionList] = None,
        priority: int = DEFAULT_PRIORITY,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: int = 0,
        out_port: Optional[int] = None,
        send_flow_removed: bool = False,
        buffer_id: int = NO_BUFFER,
        check_overlap: bool = False,
        xid: Optional[int] = None,
    ):
        super().__init__(xid)
        self.command = command
        self.match = match
        self.actions = list(actions or [])
        self.priority = priority
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.cookie = cookie
        self.out_port = out_port
        self.send_flow_removed = send_flow_removed
        self.buffer_id = buffer_id
        self.check_overlap = check_overlap

    @classmethod
    def add(cls, match: Match, actions: ActionList, **kwargs) -> "FlowMod":
        return cls(FC_ADD, match, actions, **kwargs)

    @classmethod
    def delete(cls, match: Match, strict: bool = False, **kwargs) -> "FlowMod":
        return cls(FC_DELETE_STRICT if strict else FC_DELETE, match, **kwargs)


# Flow-removed reasons.
RR_IDLE_TIMEOUT = 0
RR_HARD_TIMEOUT = 1
RR_DELETE = 2


class FlowRemoved(OpenFlowMessage):
    """Switch notification that a rule left the table."""

    def __init__(
        self,
        match: Match,
        priority: int,
        reason: int,
        cookie: int,
        duration: float,
        packet_count: int,
        byte_count: int,
        idle_timeout: float = 0.0,
        xid: Optional[int] = None,
    ):
        super().__init__(xid)
        self.match = match
        self.priority = priority
        self.reason = reason
        self.cookie = cookie
        self.duration = duration
        self.packet_count = packet_count
        self.byte_count = byte_count
        self.idle_timeout = idle_timeout

    @classmethod
    def from_entry(cls, entry: FlowEntry, reason: int) -> "FlowRemoved":
        return cls(
            match=entry.match,
            priority=entry.priority,
            reason=reason,
            cookie=entry.cookie,
            duration=entry.duration,
            packet_count=entry.packet_count,
            byte_count=entry.byte_count,
            idle_timeout=entry.idle_timeout,
        )


PS_ADD = 0
PS_DELETE = 1
PS_MODIFY = 2


class PortStatus(OpenFlowMessage):
    """Port added/removed/changed on the datapath."""

    def __init__(self, reason: int, port: PortDescription, xid: Optional[int] = None):
        super().__init__(xid)
        self.reason = reason
        self.port = port


# Stats request/reply kinds.
STATS_FLOW = 1
STATS_TABLE = 3
STATS_PORT = 4


class StatsRequest(OpenFlowMessage):
    def __init__(
        self,
        kind: int,
        match: Optional[Match] = None,
        port_no: Optional[int] = None,
        xid: Optional[int] = None,
    ):
        super().__init__(xid)
        self.kind = kind
        self.match = match
        self.port_no = port_no


class FlowStats:
    """Stats for a single flow entry (one element of a STATS_FLOW reply)."""

    __slots__ = (
        "match",
        "priority",
        "cookie",
        "duration",
        "packet_count",
        "byte_count",
        "idle_timeout",
        "hard_timeout",
    )

    def __init__(self, entry: FlowEntry, now: float):
        self.match = entry.match
        self.priority = entry.priority
        self.cookie = entry.cookie
        self.duration = now - entry.created_at
        self.packet_count = entry.packet_count
        self.byte_count = entry.byte_count
        self.idle_timeout = entry.idle_timeout
        self.hard_timeout = entry.hard_timeout


class PortStats:
    """Per-port counters (one element of a STATS_PORT reply)."""

    __slots__ = ("port_no", "rx_packets", "tx_packets", "rx_bytes", "tx_bytes")

    def __init__(
        self, port_no: int, rx_packets: int, tx_packets: int, rx_bytes: int, tx_bytes: int
    ):
        self.port_no = port_no
        self.rx_packets = rx_packets
        self.tx_packets = tx_packets
        self.rx_bytes = rx_bytes
        self.tx_bytes = tx_bytes


class TableStats:
    """Flow-table occupancy and hit counters."""

    __slots__ = ("active_count", "lookup_count", "matched_count", "max_entries")

    def __init__(
        self, active_count: int, lookup_count: int, matched_count: int, max_entries: int
    ):
        self.active_count = active_count
        self.lookup_count = lookup_count
        self.matched_count = matched_count
        self.max_entries = max_entries


class StatsReply(OpenFlowMessage):
    def __init__(self, kind: int, body: list, xid: Optional[int] = None):
        super().__init__(xid)
        self.kind = kind
        self.body = list(body)


class BarrierRequest(OpenFlowMessage):
    """Flush: the switch answers once all prior messages are processed."""


class BarrierReply(OpenFlowMessage):
    pass


class ErrorMessage(OpenFlowMessage):
    def __init__(self, error_type: str, detail: str = "", xid: Optional[int] = None):
        super().__init__(xid)
        self.error_type = error_type
        self.detail = detail

    def __repr__(self) -> str:
        return f"ErrorMessage({self.error_type!r}, {self.detail!r})"
