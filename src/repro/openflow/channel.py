"""The secure channel between the datapath and the NOX controller.

On the Homework router both run on the same box, so the channel is a
low-latency local TCP connection; we model it as an ordered message pipe
with configurable one-way latency, letting benches measure how channel
latency dominates the flow-setup path (experiment T2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..core.errors import SimulationError
from .messages import Hello, OpenFlowMessage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import Simulator
    from .datapath import Datapath

ControllerSink = Callable[[OpenFlowMessage], None]


class SecureChannel:
    """Ordered, bidirectional OpenFlow message pipe with latency."""

    def __init__(self, sim: "Simulator", latency: float = 0.0005):
        if latency < 0:
            raise SimulationError(f"channel latency must be >= 0: {latency}")
        self.sim = sim
        self.latency = latency
        self.datapath: Optional["Datapath"] = None
        self._controller_sink: Optional[ControllerSink] = None
        self.to_controller_count = 0
        self.to_switch_count = 0
        self.connected = False
        self.disconnects = 0
        self.reconnects = 0

    def connect(self, datapath: "Datapath", controller_sink: ControllerSink) -> None:
        """Wire both ends and exchange Hello messages."""
        self.datapath = datapath
        self._controller_sink = controller_sink
        datapath.attach_channel(self)
        self.connected = True
        self.to_controller(Hello())
        self.to_switch(Hello())

    def disconnect(self) -> None:
        """Drop the connection; in-flight and future messages are lost."""
        if self.connected:
            self.disconnects += 1
        self.connected = False

    def reconnect(self) -> None:
        """Re-establish a dropped connection (new Hello exchange).

        Models the switch's reconnect loop after a controller restart:
        messages lost while down stay lost, so reactive state (pending
        packet-ins) must be re-driven by retransmissions from the hosts.
        """
        if self.connected or self.datapath is None or self._controller_sink is None:
            return
        self.connected = True
        self.reconnects += 1
        self.to_controller(Hello())
        self.to_switch(Hello())

    def to_controller(self, msg: OpenFlowMessage) -> None:
        """Switch → controller delivery after one channel latency."""
        if not self.connected or self._controller_sink is None:
            return
        self.to_controller_count += 1
        sink = self._controller_sink
        if self.latency <= 0:
            sink(msg)
        else:
            self.sim.schedule(self.latency, lambda: sink(msg))

    def to_switch(self, msg: OpenFlowMessage) -> None:
        """Controller → switch delivery after one channel latency."""
        if not self.connected or self.datapath is None:
            return
        self.to_switch_count += 1
        datapath = self.datapath
        if self.latency <= 0:
            datapath.handle_message(msg)
        else:
            self.sim.schedule(self.latency, lambda: datapath.handle_message(msg))
