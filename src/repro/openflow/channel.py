"""The secure channel between the datapath and the NOX controller.

On the Homework router both run on the same box, so the channel is a
low-latency local TCP connection; we model it as an ordered message pipe
with configurable one-way latency, letting benches measure how channel
latency dominates the flow-setup path (experiment T2).

Deliveries are *coalesced* (DESIGN.md §14): messages sent in the same
simulated instant share one arrival time, so they ride a single
scheduled flush event instead of one heap entry each — a controller
callback emitting flow-mod + packet-out + stats-reply costs one push/pop
rather than three.  Ordering and the per-message event accounting are
unchanged, so fuzzer trace hashes are identical with coalescing on or
off (``COALESCE_DELIVERY`` is the test hook).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from ..core.errors import SimulationError
from ..net.trace import trace_of
from .messages import Hello, OpenFlowMessage, PacketIn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import Simulator
    from .datapath import Datapath

ControllerSink = Callable[[OpenFlowMessage], None]

#: Default for per-channel delivery coalescing; the golden-trace tests
#: flip it off to prove batched and unbatched runs hash identically.
COALESCE_DELIVERY = True


class _Flush:
    """Messages sharing one direction, sink and arrival time."""

    __slots__ = ("due", "deliver", "messages")

    def __init__(self, due: float, deliver: ControllerSink):
        self.due = due
        self.deliver = deliver
        self.messages: List[OpenFlowMessage] = []


class SecureChannel:
    """Ordered, bidirectional OpenFlow message pipe with latency."""

    def __init__(self, sim: "Simulator", latency: float = 0.0005):
        if latency < 0:
            raise SimulationError(f"channel latency must be >= 0: {latency}")
        self.sim = sim
        self.latency = latency
        self.datapath: Optional["Datapath"] = None
        self._controller_sink: Optional[ControllerSink] = None
        self.to_controller_count = 0
        self.to_switch_count = 0
        self.connected = False
        self.disconnects = 0
        self.reconnects = 0
        self.coalesce = COALESCE_DELIVERY
        self.flushes = 0
        self._pending_to_controller: Optional[_Flush] = None
        self._pending_to_switch: Optional[_Flush] = None

    def connect(self, datapath: "Datapath", controller_sink: ControllerSink) -> None:
        """Wire both ends and exchange Hello messages."""
        self.datapath = datapath
        self._controller_sink = controller_sink
        datapath.attach_channel(self)
        self.connected = True
        self.to_controller(Hello())
        self.to_switch(Hello())

    def disconnect(self) -> None:
        """Drop the connection; future messages are lost (in-flight ones
        were already serialised onto the wire and still arrive)."""
        if self.connected:
            self.disconnects += 1
        self.connected = False

    def reconnect(self) -> None:
        """Re-establish a dropped connection (new Hello exchange).

        Models the switch's reconnect loop after a controller restart:
        messages lost while down stay lost, so reactive state (pending
        packet-ins) must be re-driven by retransmissions from the hosts.
        """
        if self.connected or self.datapath is None or self._controller_sink is None:
            return
        self.connected = True
        self.reconnects += 1
        self.to_controller(Hello())
        self.to_switch(Hello())

    def _send(self, pending_attr: str, deliver: ControllerSink, msg: OpenFlowMessage) -> None:
        """Deliver ``msg`` after one channel latency, coalescing same-
        instant sends into one flush event."""
        if self.latency <= 0:
            deliver(msg)
            return
        if not self.coalesce:
            self.sim.schedule(self.latency, lambda: deliver(msg))
            return
        due = self.sim.now + self.latency
        flush = getattr(self, pending_attr)
        # Bound-method equality (same receiver, same function) keeps a
        # batch from outliving a connect() that swapped the sink.
        if flush is not None and flush.due == due and flush.deliver == deliver:
            flush.messages.append(msg)
            return
        flush = _Flush(due, deliver)
        flush.messages.append(msg)
        setattr(self, pending_attr, flush)
        self.sim.schedule(self.latency, lambda: self._run_flush(pending_attr, flush))

    def _run_flush(self, pending_attr: str, flush: _Flush) -> None:
        if getattr(self, pending_attr) is flush:
            setattr(self, pending_attr, None)
        self.flushes += 1
        messages = flush.messages
        self.sim.note_coalesced(len(messages) - 1)
        deliver = flush.deliver
        for msg in messages:
            deliver(msg)

    def to_controller(self, msg: OpenFlowMessage) -> None:
        """Switch → controller delivery after one channel latency."""
        ctx = trace_of(msg.data) if isinstance(msg, PacketIn) else None
        if not self.connected or self._controller_sink is None:
            if ctx is not None:
                ctx.finish("channel", "drop", decision="drop", cause="disconnected")
            return
        self.to_controller_count += 1
        if ctx is not None:
            ctx.hop("channel", "deliver", cause=f"latency={self.latency}")
        self._send("_pending_to_controller", self._controller_sink, msg)

    def to_switch(self, msg: OpenFlowMessage) -> None:
        """Controller → switch delivery after one channel latency."""
        if not self.connected or self.datapath is None:
            return
        self.to_switch_count += 1
        self._send("_pending_to_switch", self.datapath.handle_message, msg)
