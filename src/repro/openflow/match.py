"""OpenFlow 1.0-style flow matching.

A :class:`FlowKey` is the exact header tuple the datapath extracts from a
packet (what Open vSwitch's kernel flow extractor produces); a
:class:`Match` is a possibly-wildcarded pattern over those fields (what
flow-mod rules carry).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from ..net.addresses import IPv4Address, MACAddress
from ..net.arp import ARP
from ..net.ethernet import ETH_TYPE_ARP, ETH_TYPE_IPV4, Ethernet
from ..net.ipv4 import IPv4, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from ..net.packet import PacketError
from ..net.tcp import TCP
from ..net.udp import UDP

MATCH_FIELDS = (
    "in_port",
    "dl_src",
    "dl_dst",
    "dl_type",
    "nw_src",
    "nw_dst",
    "nw_proto",
    "tp_src",
    "tp_dst",
)


class FlowKey:
    """The exact header tuple of one packet as seen at a datapath port."""

    __slots__ = MATCH_FIELDS

    def __init__(
        self,
        in_port: int,
        dl_src: MACAddress,
        dl_dst: MACAddress,
        dl_type: int,
        nw_src: Optional[IPv4Address] = None,
        nw_dst: Optional[IPv4Address] = None,
        nw_proto: Optional[int] = None,
        tp_src: Optional[int] = None,
        tp_dst: Optional[int] = None,
    ):
        self.in_port = in_port
        self.dl_src = dl_src
        self.dl_dst = dl_dst
        self.dl_type = dl_type
        self.nw_src = nw_src
        self.nw_dst = nw_dst
        self.nw_proto = nw_proto
        self.tp_src = tp_src
        self.tp_dst = tp_dst

    @classmethod
    def extract(cls, frame: Union[bytes, Ethernet], in_port: int) -> "FlowKey":
        """Parse wire bytes into the canonical key (the "flow extract")."""
        if isinstance(frame, (bytes, bytearray)):
            frame = Ethernet.unpack(bytes(frame))
        key = cls(
            in_port=in_port,
            dl_src=frame.src,
            dl_dst=frame.dst,
            dl_type=frame.ethertype,
        )
        if frame.ethertype == ETH_TYPE_IPV4:
            ip = frame.find(IPv4)
            if ip is not None:
                key.nw_src = ip.src
                key.nw_dst = ip.dst
                key.nw_proto = ip.proto
                if ip.proto == PROTO_TCP:
                    tcp = ip.find(TCP)
                    if tcp is not None:
                        key.tp_src = tcp.sport
                        key.tp_dst = tcp.dport
                elif ip.proto == PROTO_UDP:
                    udp = ip.find(UDP)
                    if udp is not None:
                        key.tp_src = udp.sport
                        key.tp_dst = udp.dport
                elif ip.proto == PROTO_ICMP:
                    icmp = ip.payload
                    if hasattr(icmp, "icmp_type"):
                        key.tp_src = icmp.icmp_type
                        key.tp_dst = icmp.code
        elif frame.ethertype == ETH_TYPE_ARP:
            arp = frame.find(ARP)
            if arp is not None:
                key.nw_src = arp.sender_ip
                key.nw_dst = arp.target_ip
                key.nw_proto = arp.opcode
        return key

    def as_tuple(self) -> Tuple:
        """Hashable form used by the kernel-style exact-match cache."""
        return (
            self.in_port,
            int(self.dl_src),
            int(self.dl_dst),
            self.dl_type,
            int(self.nw_src) if self.nw_src is not None else None,
            int(self.nw_dst) if self.nw_dst is not None else None,
            self.nw_proto,
            self.tp_src,
            self.tp_dst,
        )

    def five_tuple(self) -> Optional[Tuple[str, str, int, int, int]]:
        """(src-ip, dst-ip, proto, sport, dport) for the hwdb Flows table."""
        if self.nw_src is None or self.nw_dst is None or self.nw_proto is None:
            return None
        return (
            str(self.nw_src),
            str(self.nw_dst),
            self.nw_proto,
            self.tp_src or 0,
            self.tp_dst or 0,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowKey):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        parts = [f"in_port={self.in_port}", f"dl_src={self.dl_src}", f"dl_dst={self.dl_dst}"]
        if self.nw_src is not None:
            parts.append(f"{self.nw_src}->{self.nw_dst} proto={self.nw_proto}")
        if self.tp_src is not None:
            parts.append(f"tp {self.tp_src}->{self.tp_dst}")
        return f"FlowKey({', '.join(parts)})"


class Match:
    """A wildcard-capable pattern over :data:`MATCH_FIELDS`.

    ``None`` fields are wildcarded.  ``nw_src``/``nw_dst`` accept an
    optional prefix length for CIDR matching, per OpenFlow 1.0.
    """

    __slots__ = MATCH_FIELDS + ("nw_src_prefix", "nw_dst_prefix")

    def __init__(
        self,
        in_port: Optional[int] = None,
        dl_src: Optional[Union[str, MACAddress]] = None,
        dl_dst: Optional[Union[str, MACAddress]] = None,
        dl_type: Optional[int] = None,
        nw_src: Optional[Union[str, IPv4Address]] = None,
        nw_dst: Optional[Union[str, IPv4Address]] = None,
        nw_proto: Optional[int] = None,
        tp_src: Optional[int] = None,
        tp_dst: Optional[int] = None,
        nw_src_prefix: int = 32,
        nw_dst_prefix: int = 32,
    ):
        self.in_port = in_port
        self.dl_src = MACAddress(dl_src) if dl_src is not None else None
        self.dl_dst = MACAddress(dl_dst) if dl_dst is not None else None
        self.dl_type = dl_type
        self.nw_src = IPv4Address(nw_src) if nw_src is not None else None
        self.nw_dst = IPv4Address(nw_dst) if nw_dst is not None else None
        self.nw_proto = nw_proto
        self.tp_src = tp_src
        self.tp_dst = tp_dst
        self.nw_src_prefix = nw_src_prefix
        self.nw_dst_prefix = nw_dst_prefix

    @classmethod
    def from_key(cls, key: FlowKey) -> "Match":
        """The fully-specified match for one flow key (microflow rule)."""
        return cls(
            in_port=key.in_port,
            dl_src=key.dl_src,
            dl_dst=key.dl_dst,
            dl_type=key.dl_type,
            nw_src=key.nw_src,
            nw_dst=key.nw_dst,
            nw_proto=key.nw_proto,
            tp_src=key.tp_src,
            tp_dst=key.tp_dst,
        )

    @classmethod
    def any(cls) -> "Match":
        """Match everything (the table-miss pattern)."""
        return cls()

    @property
    def is_exact(self) -> bool:
        """True when no field is wildcarded (kernel-cacheable)."""
        return (
            self.in_port is not None
            and self.dl_src is not None
            and self.dl_dst is not None
            and self.dl_type is not None
            and self.nw_src is not None
            and self.nw_dst is not None
            and self.nw_proto is not None
            and self.tp_src is not None
            and self.tp_dst is not None
            and self.nw_src_prefix == 32
            and self.nw_dst_prefix == 32
        )

    def wildcard_count(self) -> int:
        """Number of wildcarded fields (0 for exact matches)."""
        count = 0
        for field in MATCH_FIELDS:
            if getattr(self, field) is None:
                count += 1
        return count

    @staticmethod
    def _prefix_match(pattern: IPv4Address, prefixlen: int, value: Optional[IPv4Address]) -> bool:
        if value is None:
            return False
        if prefixlen <= 0:
            return True
        mask = ((1 << prefixlen) - 1) << (32 - prefixlen)
        return (int(pattern) & mask) == (int(value) & mask)

    def matches(self, key: FlowKey) -> bool:
        """True when this pattern covers ``key``."""
        if self.in_port is not None and self.in_port != key.in_port:
            return False
        if self.dl_src is not None and self.dl_src != key.dl_src:
            return False
        if self.dl_dst is not None and self.dl_dst != key.dl_dst:
            return False
        if self.dl_type is not None and self.dl_type != key.dl_type:
            return False
        if self.nw_src is not None and not self._prefix_match(
            self.nw_src, self.nw_src_prefix, key.nw_src
        ):
            return False
        if self.nw_dst is not None and not self._prefix_match(
            self.nw_dst, self.nw_dst_prefix, key.nw_dst
        ):
            return False
        if self.nw_proto is not None and self.nw_proto != key.nw_proto:
            return False
        if self.tp_src is not None and self.tp_src != key.tp_src:
            return False
        if self.tp_dst is not None and self.tp_dst != key.tp_dst:
            return False
        return True

    def same_pattern(self, other: "Match") -> bool:
        """Field-for-field equality (strict flow-mod matching)."""
        for field in MATCH_FIELDS:
            if getattr(self, field) != getattr(other, field):
                return False
        return (
            self.nw_src_prefix == other.nw_src_prefix
            and self.nw_dst_prefix == other.nw_dst_prefix
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self.same_pattern(other)

    def __hash__(self) -> int:
        return hash(
            tuple(
                int(v) if isinstance(v, (MACAddress, IPv4Address)) else v
                for v in (getattr(self, f) for f in MATCH_FIELDS)
            )
            + (self.nw_src_prefix, self.nw_dst_prefix)
        )

    def __repr__(self) -> str:
        parts = []
        for field in MATCH_FIELDS:
            value = getattr(self, field)
            if value is not None:
                parts.append(f"{field}={value}")
        return f"Match({', '.join(parts) if parts else '*'})"


def extract_key(frame: Union[bytes, Ethernet], in_port: int) -> Optional[FlowKey]:
    """Extract a flow key, returning None for unparseable frames."""
    try:
        return FlowKey.extract(frame, in_port)
    except PacketError:
        return None
