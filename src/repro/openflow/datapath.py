"""The Open vSwitch-style datapath (bridge ``dp0`` in paper Figure 5).

Two-tier lookup mirroring OVS's architecture:

* a **kernel fast path** — an exact-match microflow cache
  (``openvswitch_mod`` in the paper's stack), hit in O(1);
* a **userspace slow path** — the priority-ordered wildcard
  :class:`~repro.openflow.flow_table.FlowTable` (``ovs-vswitchd``).

A packet missing both tiers is punted over the secure channel to NOX as
a packet-in.  Flow-mods from the controller invalidate affected cache
entries; expired flows emit flow-removed messages.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..core.errors import DatapathError
from ..net.ethernet import Ethernet
from ..net.packet import PacketError
from ..net.port import Port
from ..net.trace import trace_of, with_trace
from .actions import (
    Action,
    ActionList,
    Output,
    PORT_ALL,
    PORT_CONTROLLER,
    PORT_FLOOD,
    PORT_IN_PORT,
    PORT_LOCAL,
    PORT_NONE,
    PORT_NORMAL,
    PORT_TABLE,
)
from .flow_table import FlowEntry, FlowTable
from .match import FlowKey, extract_key
from .messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FC_ADD,
    FC_DELETE,
    FC_DELETE_STRICT,
    FC_MODIFY,
    FC_MODIFY_STRICT,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    FlowStats,
    Hello,
    NO_BUFFER,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    PortDescription,
    PortStats,
    PortStatus,
    PS_MODIFY,
    REASON_ACTION,
    REASON_NO_MATCH,
    RR_DELETE,
    RR_HARD_TIMEOUT,
    RR_IDLE_TIMEOUT,
    StatsReply,
    StatsRequest,
    STATS_FLOW,
    STATS_PORT,
    STATS_TABLE,
    TableStats,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import Simulator
    from .channel import SecureChannel

logger = logging.getLogger(__name__)

LocalHandler = Callable[[bytes, int], None]


class _CacheEntry:
    """One kernel microflow: resolved actions plus a backlink for counters."""

    __slots__ = ("entry", "actions")

    def __init__(self, entry: FlowEntry):
        self.entry = entry
        self.actions = entry.actions


class Datapath:
    """The switch: ports + flow table + secure channel endpoint."""

    def __init__(
        self,
        sim: "Simulator",
        datapath_id: int = 1,
        name: str = "dp0",
        cache_size: int = 8192,
        enable_cache: bool = True,
        registry=None,
    ):
        self.sim = sim
        self.datapath_id = datapath_id
        self.name = name
        self.table = FlowTable()
        self.channel: Optional["SecureChannel"] = None
        self.local_handler: Optional[LocalHandler] = None

        self._ports: Dict[int, Port] = {}
        self._next_port = 1

        self.enable_cache = enable_cache
        self.cache_size = cache_size
        self._cache: Dict[Tuple, _CacheEntry] = {}

        self._buffers: Dict[int, Tuple[bytes, int]] = {}
        self._next_buffer_id = 1
        self.max_buffers = 256

        # Taps observe every frame entering the datapath (port mirroring
        # for the measurement plane, e.g. pcap capture).
        self.taps: List[Callable[[bytes, int], None]] = []

        # Statistics.
        self.cache_hits = 0
        self.table_hits = 0
        self.misses = 0
        self.packets_processed = 0
        self.packet_ins_sent = 0
        self.flow_mods_received = 0

        # Telemetry: punt time per buffered packet-in, so the flow-mod
        # that answers it yields the packet_in→flow_mod round trip in
        # simulated seconds (secure-channel latency both ways + NOX).
        self._punt_times: Dict[int, float] = {}
        self._pending_echoes: Dict[int, bytes] = {}
        if registry is None:
            self._m_flow_setup = None
        else:
            self._m_flow_setup = registry.histogram("openflow.flow_setup_sim_seconds")

        self._expiry_timer = None

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------

    def add_port(self, name: str, number: Optional[int] = None) -> Port:
        """Create and attach a numbered datapath port."""
        if number is None:
            number = self._next_port
        if number in self._ports:
            raise DatapathError(f"port {number} already exists on {self.name}")
        self._next_port = max(self._next_port, number + 1)
        port = Port(f"{self.name}.{name}", number)
        port.on_receive(self._on_frame)
        self._ports[number] = port
        return port

    def port(self, number: int) -> Port:
        try:
            return self._ports[number]
        except KeyError:
            raise DatapathError(f"no port {number} on {self.name}") from None

    def ports(self) -> Dict[int, Port]:
        return dict(self._ports)

    def port_descriptions(self) -> List[PortDescription]:
        return [
            PortDescription(number, port.name, up=port.up)
            for number, port in sorted(self._ports.items())
        ]

    # ------------------------------------------------------------------
    # Secure channel / controller side
    # ------------------------------------------------------------------

    def attach_channel(self, channel: "SecureChannel") -> None:
        self.channel = channel

    def probe_controller(self, data: bytes = b"") -> Optional[int]:
        """Send a liveness echo to the controller; the matching reply
        clears it, so a lingering xid means the control path is stuck."""
        if self.channel is None:
            return None
        request = EchoRequest(data)
        self._pending_echoes[request.xid] = data
        self.channel.to_controller(request)
        return request.xid

    def pending_echoes(self) -> List[int]:
        """Probe xids still awaiting a controller reply."""
        return sorted(self._pending_echoes)

    def set_port_state(self, number: int, up: bool) -> None:
        """Administratively flip a port and notify the controller.

        Models ``ifconfig ethX up/down`` on the router: the datapath
        keeps forwarding on its other ports and NOX learns about the
        change through a PORT_STATUS message.
        """
        try:
            port = self._ports[number]
        except KeyError:
            raise DatapathError(f"no port {number} on {self.name}") from None
        if port.up == up:
            return
        port.up = up
        if self.channel is not None:
            self.channel.to_controller(
                PortStatus(PS_MODIFY, PortDescription(number, port.name, up=up))
            )

    def start_expiry(self, interval: float = 1.0) -> None:
        """Begin periodic idle/hard timeout sweeps."""
        if self._expiry_timer is not None:
            self._expiry_timer.cancel()
        self._expiry_timer = self.sim.schedule_periodic(interval, self.expire_flows)

    def expire_flows(self) -> int:
        """Evict timed-out flows, emitting flow-removed where requested."""
        expired = self.table.expire(self.sim.now)
        for entry, reason in expired:
            self._invalidate_cache_for(entry)
            if entry.send_flow_removed and self.channel is not None:
                code = RR_IDLE_TIMEOUT if reason == "idle" else RR_HARD_TIMEOUT
                self.channel.to_controller(FlowRemoved.from_entry(entry, code))
        return len(expired)

    # SimulationError out of the reply sends is unreachable: the channel
    # latency it would come from is validated in SecureChannel.__init__.
    def handle_message(self, msg: OpenFlowMessage) -> None:  # repro: ignore[deep-except-escape]
        """Process one controller→switch protocol message."""
        if isinstance(msg, Hello):
            return
        if isinstance(msg, EchoRequest):
            self._reply(EchoReply(msg.data, xid=msg.xid))
        elif isinstance(msg, EchoReply):
            self._pending_echoes.pop(msg.xid, None)
        elif isinstance(msg, FeaturesRequest):
            self._reply(
                FeaturesReply(
                    self.datapath_id, self.port_descriptions(), xid=msg.xid
                )
            )
        elif isinstance(msg, FlowMod):
            self._handle_flow_mod(msg)
        elif isinstance(msg, PacketOut):
            self._handle_packet_out(msg)
        elif isinstance(msg, StatsRequest):
            self._handle_stats_request(msg)
        elif isinstance(msg, BarrierRequest):
            self._reply(BarrierReply(xid=msg.xid))
        else:
            self._reply(
                ErrorMessage("bad_request", type(msg).__name__, xid=msg.xid)
            )

    def _reply(self, msg: OpenFlowMessage) -> None:
        if self.channel is not None:
            self.channel.to_controller(msg)

    def _handle_flow_mod(self, mod: FlowMod) -> None:
        self.flow_mods_received += 1
        if mod.command == FC_ADD:
            entry = FlowEntry(
                match=mod.match,
                actions=mod.actions,
                priority=mod.priority,
                idle_timeout=mod.idle_timeout,
                hard_timeout=mod.hard_timeout,
                cookie=mod.cookie,
                created_at=self.sim.now,
                send_flow_removed=mod.send_flow_removed,
            )
            try:
                self.table.add(entry, check_overlap=getattr(mod, "check_overlap", False))
            except DatapathError as exc:
                self._reply(ErrorMessage("overlap", str(exc), xid=mod.xid))
                return
            self._invalidate_cache_for(entry)
            if mod.buffer_id != NO_BUFFER:
                punted_at = self._punt_times.pop(mod.buffer_id, None)
                if punted_at is not None and self._m_flow_setup is not None:
                    self._m_flow_setup.observe(self.sim.now - punted_at)
                self._release_buffer(mod.buffer_id, entry.actions, entry)
        elif mod.command in (FC_MODIFY, FC_MODIFY_STRICT):
            self.table.modify(
                mod.match,
                mod.actions,
                strict=(mod.command == FC_MODIFY_STRICT),
                priority=mod.priority,
            )
            self._cache.clear()
        elif mod.command in (FC_DELETE, FC_DELETE_STRICT):
            removed = self.table.delete(
                mod.match,
                strict=(mod.command == FC_DELETE_STRICT),
                priority=mod.priority,
                out_port=mod.out_port,
            )
            for entry in removed:
                self._invalidate_cache_for(entry)
                if entry.send_flow_removed and self.channel is not None:
                    self.channel.to_controller(
                        FlowRemoved.from_entry(entry, RR_DELETE)
                    )
        else:
            self._reply(ErrorMessage("bad_flow_mod", f"command={mod.command}"))

    def _handle_packet_out(self, msg: PacketOut) -> None:
        data = msg.data
        if msg.buffer_id != NO_BUFFER:
            self._punt_times.pop(msg.buffer_id, None)
            buffered = self._buffers.pop(msg.buffer_id, None)
            if buffered is None:
                self._reply(ErrorMessage("bad_buffer", str(msg.buffer_id)))
                return
            data = buffered[0]
        if not data:
            return
        self.apply_actions(data, msg.actions, in_port=msg.in_port)

    def _handle_stats_request(self, msg: StatsRequest) -> None:
        now = self.sim.now
        if msg.kind == STATS_FLOW:
            body = [
                FlowStats(entry, now)
                for entry in self.table
                if msg.match is None or _loose_match(msg.match, entry)
            ]
        elif msg.kind == STATS_PORT:
            numbers = (
                [msg.port_no]
                if msg.port_no is not None
                else sorted(self._ports)
            )
            body = [
                PortStats(
                    n,
                    self._ports[n].rx_packets,
                    self._ports[n].tx_packets,
                    self._ports[n].rx_bytes,
                    self._ports[n].tx_bytes,
                )
                for n in numbers
                if n in self._ports
            ]
        elif msg.kind == STATS_TABLE:
            body = [
                TableStats(
                    len(self.table),
                    self.table.lookup_count,
                    self.table.matched_count,
                    self.table.max_entries,
                )
            ]
        else:
            self._reply(ErrorMessage("bad_stats", f"kind={msg.kind}", xid=msg.xid))
            return
        self._reply(StatsReply(msg.kind, body, xid=msg.xid))

    # ------------------------------------------------------------------
    # Forwarding pipeline
    # ------------------------------------------------------------------

    def _on_frame(self, raw: bytes, port: Port) -> None:
        self.process_frame(raw, port.number)

    def process_frame(self, raw: bytes, in_port: int) -> None:
        """The datapath receive path: cache → table → controller."""
        self.packets_processed += 1
        for tap in self.taps:
            tap(raw, in_port)
        key = extract_key(raw, in_port)
        ctx = trace_of(raw)
        if key is None:
            if ctx is not None:
                ctx.finish("datapath", "drop", decision="drop", cause="unparseable")
            return  # unparseable, drop

        if self.enable_cache:
            cached = self._cache.get(key.as_tuple())
            if cached is not None:
                self.cache_hits += 1
                cached.entry.touch(self.sim.now, len(raw))
                # Fast path: per-hop work only for sampled/forced traces.
                if ctx is not None and ctx.active:
                    ctx.hop(
                        "datapath",
                        "lookup",
                        decision="cache_hit",
                        cause=f"priority={cached.entry.priority:#x} cookie={cached.entry.cookie}",
                    )
                self._execute(raw, cached.actions, in_port)
                return

        entry = self.table.lookup(key)
        if entry is not None:
            self.table_hits += 1
            entry.touch(self.sim.now, len(raw))
            if ctx is not None and ctx.active:
                ctx.hop(
                    "datapath",
                    "lookup",
                    decision="table_hit",
                    cause=f"priority={entry.priority:#x} cookie={entry.cookie}",
                )
            if self.enable_cache and self._cacheable(entry.actions):
                if len(self._cache) >= self.cache_size:
                    self._cache.clear()  # OVS-style wholesale flush
                self._cache[key.as_tuple()] = _CacheEntry(entry)
            self._execute(raw, entry.actions, in_port)
            return

        self.misses += 1
        if ctx is not None:
            # Slow path already pays a controller round trip: record
            # unconditionally so a later drop/deny keeps its prefix.
            ctx.hop("datapath", "lookup", decision="miss")
        self._punt(raw, in_port, REASON_NO_MATCH)

    @staticmethod
    def _cacheable(actions: ActionList) -> bool:
        """Controller punts are never cached (each packet must go up)."""
        return not any(
            isinstance(a, Output) and a.port == PORT_CONTROLLER for a in actions
        )

    def _punt(self, raw: bytes, in_port: int, reason: int) -> None:
        ctx = trace_of(raw)
        if self.channel is None:
            if ctx is not None:
                ctx.finish("datapath", "drop", decision="drop", cause="no_channel")
            return
        buffer_id = self._buffer_packet(raw, in_port)
        if self._m_flow_setup is not None:
            self._punt_times[buffer_id] = self.sim.now
        self.packet_ins_sent += 1
        if ctx is not None:
            ctx.hop(
                "datapath",
                "punt",
                decision="to_controller",
                cause=f"reason={reason} buffer={buffer_id}",
            )
        self.channel.to_controller(
            PacketIn(
                buffer_id=buffer_id,
                in_port=in_port,
                reason=reason,
                data=raw,
            )
        )

    def _buffer_packet(self, raw: bytes, in_port: int) -> int:
        if len(self._buffers) >= self.max_buffers:
            oldest = next(iter(self._buffers))
            del self._buffers[oldest]
            self._punt_times.pop(oldest, None)
        buffer_id = self._next_buffer_id
        self._next_buffer_id += 1
        self._buffers[buffer_id] = (raw, in_port)
        return buffer_id

    def _release_buffer(
        self, buffer_id: int, actions: ActionList, entry: Optional[FlowEntry] = None
    ) -> None:
        buffered = self._buffers.pop(buffer_id, None)
        if buffered is not None:
            raw, in_port = buffered
            if entry is not None:
                # The buffered packet counts against the new flow, as on
                # a real switch where it traverses the fresh entry.
                entry.touch(self.sim.now, len(raw))
            self._execute(raw, actions, in_port)

    def apply_actions(self, raw: bytes, actions: ActionList, in_port: int) -> None:
        """Public entry used by packet-out."""
        self._execute(raw, actions, in_port)

    def _execute(self, raw: bytes, actions: ActionList, in_port: int) -> None:
        if not actions:
            ctx = trace_of(raw)
            if ctx is not None:
                # Matching a drop flow is a terminal decision: always
                # traced, regardless of sampling.
                ctx.finish("datapath", "drop", decision="drop", cause="drop_flow")
            return  # drop
        needs_rewrite = any(not isinstance(a, Output) for a in actions)
        frame: Optional[Ethernet] = None
        if needs_rewrite:
            try:
                frame = Ethernet.unpack(raw)
            except PacketError:
                return
        for action in actions:
            if isinstance(action, Output):
                if frame is not None:
                    # Re-serialising makes fresh bytes; the lineage must
                    # ride the rewritten frame too.
                    data = with_trace(frame.pack(), trace_of(raw))
                else:
                    data = raw
                self._output(data, action.port, in_port)
            else:
                assert frame is not None
                action.apply(frame)

    def _output(self, data: bytes, out_port: int, in_port: int) -> None:
        if out_port == PORT_NONE:
            return
        if out_port == PORT_CONTROLLER:
            self._punt(data, in_port, REASON_ACTION)
            return
        if out_port == PORT_LOCAL:
            if self.local_handler is not None:
                self.local_handler(data, in_port)
            return
        if out_port == PORT_IN_PORT:
            port = self._ports.get(in_port)
            if port is not None:
                port.send(data)
            return
        if out_port in (PORT_FLOOD, PORT_ALL):
            for number, port in self._ports.items():
                if number != in_port:
                    port.send(data)
            return
        if out_port == PORT_TABLE:
            self.process_frame(data, in_port)
            return
        if out_port == PORT_NORMAL:
            # The "normal processing pipeline": handled by flooding here;
            # the NOX L2-learning component provides learned forwarding.
            for number, port in self._ports.items():
                if number != in_port:
                    port.send(data)
            return
        port = self._ports.get(out_port)
        if port is not None:
            port.send(data)

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------

    def _invalidate_cache_for(self, entry: FlowEntry) -> None:
        """Drop cached microflows covered by (or pointing at) ``entry``."""
        if not self._cache:
            return
        stale = [
            key_tuple
            for key_tuple, cached in self._cache.items()
            if cached.entry is entry or entry.match.matches(_key_from_tuple(key_tuple))
        ]
        for key_tuple in stale:
            del self._cache[key_tuple]

    def cache_len(self) -> int:
        return len(self._cache)

    def __repr__(self) -> str:
        return (
            f"Datapath(id={self.datapath_id}, ports={len(self._ports)}, "
            f"flows={len(self.table)}, cache={len(self._cache)})"
        )


def _key_from_tuple(key_tuple: Tuple) -> FlowKey:
    from ..net.addresses import IPv4Address, MACAddress

    (in_port, dl_src, dl_dst, dl_type, nw_src, nw_dst, nw_proto, tp_src, tp_dst) = key_tuple
    return FlowKey(
        in_port=in_port,
        dl_src=MACAddress(dl_src),
        dl_dst=MACAddress(dl_dst),
        dl_type=dl_type,
        nw_src=IPv4Address(nw_src) if nw_src is not None else None,
        nw_dst=IPv4Address(nw_dst) if nw_dst is not None else None,
        nw_proto=nw_proto,
        tp_src=tp_src,
        tp_dst=tp_dst,
    )


def _loose_match(pattern, entry: FlowEntry) -> bool:
    from .flow_table import _covers

    return _covers(pattern, entry.match)
