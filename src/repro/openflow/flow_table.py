"""The datapath's flow table: priority-ordered wildcard rules.

"Each OpenFlow datapath contains a set of physical ports, plus a flow
table and a set of actions associated with each flow entry."  Entries
carry priorities, idle/hard timeouts, cookies and packet/byte counters,
matching OpenFlow 1.0 semantics.

Lookup is indexed (DESIGN.md §14): exact-match rules live in one hash
table probed with the packet's key tuple, and wildcard rules are grouped
into buckets by wildcard mask — every rule in a bucket specifies the
same fields (with the same CIDR prefixes), so a single masked hash probe
finds all candidates at once.  Buckets are visited in descending
max-priority order with early exit, preserving the linear scan's exact
winner (priority, then insertion order).  :class:`LinearFlowTable` keeps
the original O(n) scan as the differential-testing reference.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from ..core.errors import DatapathError
from .actions import ActionList
from .match import FlowKey, MATCH_FIELDS, Match

DEFAULT_PRIORITY = 0x8000
NO_TIMEOUT = 0.0

#: Field indices (into MATCH_FIELDS / FlowKey.as_tuple()) of the two
#: CIDR-capable fields.
_NW_SRC_INDEX = MATCH_FIELDS.index("nw_src")
_NW_DST_INDEX = MATCH_FIELDS.index("nw_dst")


class FlowEntry:
    """One rule: match + priority + actions + timeouts + counters."""

    __slots__ = (
        "match",
        "priority",
        "actions",
        "idle_timeout",
        "hard_timeout",
        "cookie",
        "created_at",
        "last_used_at",
        "packet_count",
        "byte_count",
        "send_flow_removed",
        "_order",
        "_index_key",
    )

    def __init__(
        self,
        match: Match,
        actions: ActionList,
        priority: int = DEFAULT_PRIORITY,
        idle_timeout: float = NO_TIMEOUT,
        hard_timeout: float = NO_TIMEOUT,
        cookie: int = 0,
        created_at: float = 0.0,
        send_flow_removed: bool = False,
    ):
        self.match = match
        self.priority = int(priority)
        self.actions = list(actions)
        self.idle_timeout = float(idle_timeout)
        self.hard_timeout = float(hard_timeout)
        self.cookie = int(cookie)
        self.created_at = float(created_at)
        self.last_used_at = float(created_at)
        self.packet_count = 0
        self.byte_count = 0
        self.send_flow_removed = bool(send_flow_removed)
        # Index bookkeeping, owned by the FlowTable holding this entry:
        # insertion order (the priority tie-breaker) and the (mask, key)
        # pair locating the entry's bucket slot.
        self._order = 0
        self._index_key: Optional[Tuple[Tuple, Tuple]] = None

    def touch(self, now: float, nbytes: int) -> None:
        """Record one matched packet."""
        self.packet_count += 1
        self.byte_count += nbytes
        self.last_used_at = now

    def expired(self, now: float) -> Optional[str]:
        """Return 'idle'/'hard' when timed out at ``now``, else None."""
        if self.hard_timeout > 0 and now - self.created_at >= self.hard_timeout:
            return "hard"
        if self.idle_timeout > 0 and now - self.last_used_at >= self.idle_timeout:
            return "idle"
        return None

    @property
    def duration(self) -> float:
        return self.last_used_at - self.created_at

    def __repr__(self) -> str:
        return (
            f"FlowEntry(priority={self.priority}, match={self.match}, "
            f"actions={self.actions}, packets={self.packet_count})"
        )


def _prefix_mask(prefixlen: int) -> int:
    """The 32-bit netmask for a prefix length (<= 0 masks everything off)."""
    if prefixlen <= 0:
        return 0
    return ((1 << prefixlen) - 1) << (32 - prefixlen)


def _mask_of(match: Match) -> Tuple:
    """The wildcard mask identifying a match's bucket.

    One element per concrete field: ``(field_index, netmask-or-None)``.
    Two matches share a bucket iff they specify the same fields with the
    same CIDR prefixes, so a bucket probe is a single masked hash lookup.
    """
    spec: List[Tuple[int, Optional[int]]] = []
    for index, field in enumerate(MATCH_FIELDS):
        value = getattr(match, field)
        if value is None:
            continue
        if index == _NW_SRC_INDEX:
            spec.append((index, _prefix_mask(match.nw_src_prefix)))
        elif index == _NW_DST_INDEX:
            spec.append((index, _prefix_mask(match.nw_dst_prefix)))
        else:
            spec.append((index, None))
    return tuple(spec)


def _bucket_key(match: Match, mask: Tuple) -> Tuple:
    """A match's hash slot within its bucket: masked concrete values."""
    parts: List[int] = []
    for index, netmask in mask:
        value = int(getattr(match, MATCH_FIELDS[index]))
        parts.append(value if netmask is None else value & netmask)
    return tuple(parts)


class _Bucket:
    """All wildcard entries sharing one mask, hashed by concrete fields.

    ``slots`` maps a masked value tuple to the entries carrying exactly
    those concrete values, kept sorted best-first (descending priority,
    ascending insertion order) so a probe's winner is ``slot[0]``.
    """

    __slots__ = ("mask", "slots", "size", "_prio_counts", "_max_priority")

    def __init__(self, mask: Tuple):
        self.mask = mask
        self.slots: Dict[Tuple, List[FlowEntry]] = {}
        self.size = 0
        self._prio_counts: Dict[int, int] = {}
        self._max_priority = 0

    @property
    def max_priority(self) -> int:
        return self._max_priority

    def insert(self, key: Tuple, entry: FlowEntry) -> None:
        slot = self.slots.get(key)
        if slot is None:
            self.slots[key] = [entry]
        else:
            rank = (-entry.priority, entry._order)
            position = 0
            while position < len(slot) and (
                (-slot[position].priority, slot[position]._order) < rank
            ):
                position += 1
            slot.insert(position, entry)
        self.size += 1
        count = self._prio_counts.get(entry.priority, 0) + 1
        self._prio_counts[entry.priority] = count
        if entry.priority > self._max_priority:
            self._max_priority = entry.priority

    def remove(self, key: Tuple, entry: FlowEntry) -> None:
        slot = self.slots.get(key)
        if slot is None:
            return
        for position, existing in enumerate(slot):
            if existing is entry:
                del slot[position]
                break
        else:
            return
        if not slot:
            del self.slots[key]
        self.size -= 1
        count = self._prio_counts[entry.priority] - 1
        if count:
            self._prio_counts[entry.priority] = count
        else:
            del self._prio_counts[entry.priority]
            if entry.priority == self._max_priority:
                self._max_priority = (
                    max(self._prio_counts) if self._prio_counts else 0
                )

    def probe(self, key_tuple: Tuple) -> Optional[FlowEntry]:
        """Best entry matching the packet's key tuple, or None.

        Every entry in a slot genuinely matches (masked equality is the
        match condition field-for-field), so the best-first slot order
        makes the head the bucket's answer.
        """
        parts: List[int] = []
        for index, netmask in self.mask:
            value = key_tuple[index]
            if value is None:
                # Field concrete in the mask but absent from the packet
                # (e.g. a transport port on an ARP frame): no rule in
                # this bucket can match.
                return None
            parts.append(value if netmask is None else value & netmask)
        slot = self.slots.get(tuple(parts))
        return slot[0] if slot else None


class FlowTable:
    """Priority-ordered rule set with OpenFlow add/modify/delete semantics.

    Lookup resolves exactly as a descending-priority scan would
    (insertion order breaks ties, matching NOX-era switch behaviour) but
    probes the hash index instead of scanning.  The datapath keeps its
    exact-match fast path separately; this table is the "userspace" tier.
    """

    def __init__(self, max_entries: int = 65536):
        self._entries: List[FlowEntry] = []
        #: Negated priorities aligned with ``_entries`` so bisect finds
        #: insertion points without a Python-level walk.
        self._neg_priorities: List[int] = []
        self.max_entries = max_entries
        self.lookup_count = 0
        self.matched_count = 0
        # The index: exact-match rules in one dict keyed by the full key
        # tuple; wildcard rules in per-mask buckets.
        self._exact: Dict[Tuple, List[FlowEntry]] = {}
        self._exact_size = 0
        self._buckets: Dict[Tuple, _Bucket] = {}
        self._ordered_buckets: List[_Bucket] = []
        self._order_dirty = False
        self._next_order = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def entries(self) -> List[FlowEntry]:
        return list(self._entries)

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------

    def _index(self, entry: FlowEntry) -> None:
        if entry.match.is_exact:
            key = _bucket_key(entry.match, _EXACT_MASK)
            entry._index_key = (_EXACT_SENTINEL, key)
            slot = self._exact.get(key)
            if slot is None:
                self._exact[key] = [entry]
            else:
                rank = (-entry.priority, entry._order)
                position = 0
                while position < len(slot) and (
                    (-slot[position].priority, slot[position]._order) < rank
                ):
                    position += 1
                slot.insert(position, entry)
            self._exact_size += 1
            return
        mask = _mask_of(entry.match)
        key = _bucket_key(entry.match, mask)
        entry._index_key = (mask, key)
        bucket = self._buckets.get(mask)
        if bucket is None:
            bucket = _Bucket(mask)
            self._buckets[mask] = bucket
            self._order_dirty = True
        bucket.insert(key, entry)
        self._order_dirty = True

    def _unindex(self, entry: FlowEntry) -> None:
        if entry._index_key is None:
            return
        mask, key = entry._index_key
        entry._index_key = None
        if mask is _EXACT_SENTINEL:
            slot = self._exact.get(key)
            if slot is None:
                return
            for position, existing in enumerate(slot):
                if existing is entry:
                    del slot[position]
                    self._exact_size -= 1
                    break
            if not slot:
                del self._exact[key]
            return
        bucket = self._buckets.get(mask)
        if bucket is None:
            return
        bucket.remove(key, entry)
        if bucket.size == 0:
            del self._buckets[mask]
        self._order_dirty = True

    def _bucket_order(self) -> List[_Bucket]:
        if self._order_dirty:
            self._ordered_buckets = sorted(
                self._buckets.values(), key=lambda b: -b.max_priority
            )
            self._order_dirty = False
        return self._ordered_buckets

    def _replace_candidate(self, entry: FlowEntry) -> Optional[FlowEntry]:
        """An installed rule with the same pattern and priority, if any."""
        if entry.match.is_exact:
            slot = self._exact.get(_bucket_key(entry.match, _EXACT_MASK))
        else:
            mask = _mask_of(entry.match)
            bucket = self._buckets.get(mask)
            slot = (
                bucket.slots.get(_bucket_key(entry.match, mask))
                if bucket is not None
                else None
            )
        if not slot:
            return None
        for existing in slot:
            if existing.priority == entry.priority and existing.match.same_pattern(
                entry.match
            ):
                return existing
        return None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(
        self, entry: FlowEntry, replace: bool = True, check_overlap: bool = False
    ) -> None:
        """Insert ``entry``; replaces an identical (match, priority) rule.

        ``check_overlap`` implements OpenFlow's OFPFF_CHECK_OVERLAP: the
        insert is refused when another same-priority rule could match a
        common packet (an ambiguity the controller asked to be told of).

        Keeps the list sorted by descending priority; stable within a
        priority so earlier rules win ties.
        """
        if check_overlap:
            for existing in self._entries:
                if existing.priority == entry.priority and _overlaps(
                    existing.match, entry.match
                ):
                    raise DatapathError(
                        f"overlap check failed: {entry.match} overlaps "
                        f"{existing.match} at priority {entry.priority}"
                    )
        if replace:
            existing = self._replace_candidate(entry)
            if existing is not None:
                # Take over the old rule's list position and tie-break
                # order, exactly as the in-place replacement did.
                entry._order = existing._order
                position = self._entries.index(existing)
                self._entries[position] = entry
                self._unindex(existing)
                self._index(entry)
                return
        if len(self._entries) >= self.max_entries:
            raise DatapathError(f"flow table full ({self.max_entries} entries)")
        entry._order = self._next_order
        self._next_order += 1
        index = bisect_right(self._neg_priorities, -entry.priority)
        self._entries.insert(index, entry)
        self._neg_priorities.insert(index, -entry.priority)
        self._index(entry)

    def lookup(self, key: FlowKey) -> Optional[FlowEntry]:
        """Highest-priority entry matching ``key``, or None (table miss)."""
        self.lookup_count += 1
        key_tuple = key.as_tuple()
        best: Optional[FlowEntry] = None
        slot = self._exact.get(key_tuple)
        if slot:
            best = slot[0]
        for bucket in self._bucket_order():
            if best is not None and bucket.max_priority < best.priority:
                break
            candidate = bucket.probe(key_tuple)
            if candidate is not None and (
                best is None
                or (-candidate.priority, candidate._order)
                < (-best.priority, best._order)
            ):
                best = candidate
        if best is not None:
            self.matched_count += 1
        return best

    def modify(
        self, match: Match, actions: ActionList, strict: bool = False,
        priority: int = DEFAULT_PRIORITY,
    ) -> int:
        """Update actions on matching entries; returns count modified."""
        modified = 0
        for entry in self._entries:
            if self._mod_matches(entry, match, strict, priority):
                entry.actions = list(actions)
                modified += 1
        return modified

    def delete(
        self,
        match: Match,
        strict: bool = False,
        priority: int = DEFAULT_PRIORITY,
        out_port: Optional[int] = None,
    ) -> List[FlowEntry]:
        """Remove matching entries; returns them (for flow-removed events)."""
        removed: List[FlowEntry] = []
        kept: List[FlowEntry] = []
        for entry in self._entries:
            if self._mod_matches(entry, match, strict, priority) and self._out_port_matches(
                entry, out_port
            ):
                removed.append(entry)
            else:
                kept.append(entry)
        if removed:
            self._entries = kept
            self._neg_priorities = [-entry.priority for entry in kept]
            for entry in removed:
                self._unindex(entry)
        return removed

    @staticmethod
    def _out_port_matches(entry: FlowEntry, out_port: Optional[int]) -> bool:
        if out_port is None:
            return True
        from .actions import Output

        return any(
            isinstance(action, Output) and action.port == out_port
            for action in entry.actions
        )

    @staticmethod
    def _mod_matches(
        entry: FlowEntry, match: Match, strict: bool, priority: int
    ) -> bool:
        if strict:
            return entry.priority == priority and entry.match.same_pattern(match)
        # Loose: the given match must be equal-or-wider than the entry's.
        return _covers(match, entry.match)

    def expire(self, now: float) -> List[tuple]:
        """Remove timed-out entries; returns [(entry, reason), ...]."""
        expired: List[tuple] = []
        kept: List[FlowEntry] = []
        for entry in self._entries:
            reason = entry.expired(now)
            if reason is None:
                kept.append(entry)
            else:
                expired.append((entry, reason))
        if expired:
            self._entries = kept
            self._neg_priorities = [-entry.priority for entry in kept]
            for entry, _reason in expired:
                self._unindex(entry)
        return expired

    def clear(self) -> int:
        count = len(self._entries)
        self._entries = []
        self._neg_priorities = []
        self._exact = {}
        self._exact_size = 0
        self._buckets = {}
        self._ordered_buckets = []
        self._order_dirty = False
        return count

    def index_stats(self) -> Dict[str, int]:
        """Index shape, for diagnostics and the hot-path bench."""
        return {
            "entries": len(self._entries),
            "exact": self._exact_size,
            "wildcard_buckets": len(self._buckets),
        }


#: Sentinel mask marking entries indexed in the exact-match dict.
_EXACT_SENTINEL: Tuple = ("exact",)

#: The all-concrete mask: every field, full netmasks on the CIDR fields.
_EXACT_MASK: Tuple = tuple(
    (index, 0xFFFFFFFF if index in (_NW_SRC_INDEX, _NW_DST_INDEX) else None)
    for index in range(len(MATCH_FIELDS))
)

#: The indexed table is the default; the explicit name documents intent
#: where the index itself is under test.
IndexedFlowTable = FlowTable


class LinearFlowTable(FlowTable):
    """The original O(n) priority scan, kept as the testing reference.

    Mutation semantics are inherited (the entry list is maintained
    identically); only ``lookup`` differs — a literal walk of the
    priority-sorted list.  The differential property tests assert this
    and :class:`FlowTable` always pick the identical winner.
    """

    def lookup(self, key: FlowKey) -> Optional[FlowEntry]:
        self.lookup_count += 1
        for entry in self._entries:
            if entry.match.matches(key):
                self.matched_count += 1
                return entry
        return None


def _overlaps(a: Match, b: Match) -> bool:
    """True when some packet could match both ``a`` and ``b``.

    Field-wise: the matches are disjoint iff some field is specified by
    both with incompatible values; otherwise a witness packet exists.
    """
    for field in MATCH_FIELDS:
        value_a = getattr(a, field)
        value_b = getattr(b, field)
        if value_a is None or value_b is None:
            continue
        if field in ("nw_src", "nw_dst"):
            prefix = min(
                getattr(a, field + "_prefix"), getattr(b, field + "_prefix")
            )
            mask = ((1 << prefix) - 1) << (32 - prefix) if prefix else 0
            if (int(value_a) & mask) != (int(value_b) & mask):
                return False
        elif value_a != value_b:
            return False
    return True


def _covers(wide: Match, narrow: Match) -> bool:
    """True when every packet matched by ``narrow`` is matched by ``wide``."""
    for field in MATCH_FIELDS:
        wide_value = getattr(wide, field)
        if wide_value is None:
            continue
        narrow_value = getattr(narrow, field)
        if field in ("nw_src", "nw_dst"):
            wide_prefix = getattr(wide, field + "_prefix")
            narrow_prefix = getattr(narrow, field + "_prefix")
            if narrow_value is None or narrow_prefix < wide_prefix:
                return False
            mask = ((1 << wide_prefix) - 1) << (32 - wide_prefix) if wide_prefix else 0
            if (int(wide_value) & mask) != (int(narrow_value) & mask):
                return False
        elif narrow_value != wide_value:
            return False
    return True
