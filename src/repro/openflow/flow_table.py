"""The datapath's flow table: priority-ordered wildcard rules.

"Each OpenFlow datapath contains a set of physical ports, plus a flow
table and a set of actions associated with each flow entry."  Entries
carry priorities, idle/hard timeouts, cookies and packet/byte counters,
matching OpenFlow 1.0 semantics.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..core.errors import DatapathError
from .actions import ActionList
from .match import FlowKey, Match

DEFAULT_PRIORITY = 0x8000
NO_TIMEOUT = 0.0


class FlowEntry:
    """One rule: match + priority + actions + timeouts + counters."""

    __slots__ = (
        "match",
        "priority",
        "actions",
        "idle_timeout",
        "hard_timeout",
        "cookie",
        "created_at",
        "last_used_at",
        "packet_count",
        "byte_count",
        "send_flow_removed",
    )

    def __init__(
        self,
        match: Match,
        actions: ActionList,
        priority: int = DEFAULT_PRIORITY,
        idle_timeout: float = NO_TIMEOUT,
        hard_timeout: float = NO_TIMEOUT,
        cookie: int = 0,
        created_at: float = 0.0,
        send_flow_removed: bool = False,
    ):
        self.match = match
        self.priority = int(priority)
        self.actions = list(actions)
        self.idle_timeout = float(idle_timeout)
        self.hard_timeout = float(hard_timeout)
        self.cookie = int(cookie)
        self.created_at = float(created_at)
        self.last_used_at = float(created_at)
        self.packet_count = 0
        self.byte_count = 0
        self.send_flow_removed = bool(send_flow_removed)

    def touch(self, now: float, nbytes: int) -> None:
        """Record one matched packet."""
        self.packet_count += 1
        self.byte_count += nbytes
        self.last_used_at = now

    def expired(self, now: float) -> Optional[str]:
        """Return 'idle'/'hard' when timed out at ``now``, else None."""
        if self.hard_timeout > 0 and now - self.created_at >= self.hard_timeout:
            return "hard"
        if self.idle_timeout > 0 and now - self.last_used_at >= self.idle_timeout:
            return "idle"
        return None

    @property
    def duration(self) -> float:
        return self.last_used_at - self.created_at

    def __repr__(self) -> str:
        return (
            f"FlowEntry(priority={self.priority}, match={self.match}, "
            f"actions={self.actions}, packets={self.packet_count})"
        )


class FlowTable:
    """Priority-ordered rule set with OpenFlow add/modify/delete semantics.

    Lookup scans entries in descending priority (insertion order breaks
    ties, matching NOX-era switch behaviour).  The datapath keeps its
    exact-match fast path separately; this table is the "userspace" tier.
    """

    def __init__(self, max_entries: int = 65536):
        self._entries: List[FlowEntry] = []
        self.max_entries = max_entries
        self.lookup_count = 0
        self.matched_count = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def entries(self) -> List[FlowEntry]:
        return list(self._entries)

    def add(
        self, entry: FlowEntry, replace: bool = True, check_overlap: bool = False
    ) -> None:
        """Insert ``entry``; replaces an identical (match, priority) rule.

        ``check_overlap`` implements OpenFlow's OFPFF_CHECK_OVERLAP: the
        insert is refused when another same-priority rule could match a
        common packet (an ambiguity the controller asked to be told of).

        Keeps the list sorted by descending priority; stable within a
        priority so earlier rules win ties.
        """
        if check_overlap:
            for existing in self._entries:
                if existing.priority == entry.priority and _overlaps(
                    existing.match, entry.match
                ):
                    raise DatapathError(
                        f"overlap check failed: {entry.match} overlaps "
                        f"{existing.match} at priority {entry.priority}"
                    )
        if replace:
            for index, existing in enumerate(self._entries):
                if (
                    existing.priority == entry.priority
                    and existing.match.same_pattern(entry.match)
                ):
                    self._entries[index] = entry
                    return
        if len(self._entries) >= self.max_entries:
            raise DatapathError(f"flow table full ({self.max_entries} entries)")
        index = 0
        while (
            index < len(self._entries)
            and self._entries[index].priority >= entry.priority
        ):
            index += 1
        self._entries.insert(index, entry)

    def lookup(self, key: FlowKey) -> Optional[FlowEntry]:
        """Highest-priority entry matching ``key``, or None (table miss)."""
        self.lookup_count += 1
        for entry in self._entries:
            if entry.match.matches(key):
                self.matched_count += 1
                return entry
        return None

    def modify(
        self, match: Match, actions: ActionList, strict: bool = False,
        priority: int = DEFAULT_PRIORITY,
    ) -> int:
        """Update actions on matching entries; returns count modified."""
        modified = 0
        for entry in self._entries:
            if self._mod_matches(entry, match, strict, priority):
                entry.actions = list(actions)
                modified += 1
        return modified

    def delete(
        self,
        match: Match,
        strict: bool = False,
        priority: int = DEFAULT_PRIORITY,
        out_port: Optional[int] = None,
    ) -> List[FlowEntry]:
        """Remove matching entries; returns them (for flow-removed events)."""
        removed: List[FlowEntry] = []
        kept: List[FlowEntry] = []
        for entry in self._entries:
            if self._mod_matches(entry, match, strict, priority) and self._out_port_matches(
                entry, out_port
            ):
                removed.append(entry)
            else:
                kept.append(entry)
        self._entries = kept
        return removed

    @staticmethod
    def _out_port_matches(entry: FlowEntry, out_port: Optional[int]) -> bool:
        if out_port is None:
            return True
        from .actions import Output

        return any(
            isinstance(action, Output) and action.port == out_port
            for action in entry.actions
        )

    @staticmethod
    def _mod_matches(
        entry: FlowEntry, match: Match, strict: bool, priority: int
    ) -> bool:
        if strict:
            return entry.priority == priority and entry.match.same_pattern(match)
        # Loose: the given match must be equal-or-wider than the entry's.
        return _covers(match, entry.match)

    def expire(self, now: float) -> List[tuple]:
        """Remove timed-out entries; returns [(entry, reason), ...]."""
        expired: List[tuple] = []
        kept: List[FlowEntry] = []
        for entry in self._entries:
            reason = entry.expired(now)
            if reason is None:
                kept.append(entry)
            else:
                expired.append((entry, reason))
        self._entries = kept
        return expired

    def clear(self) -> int:
        count = len(self._entries)
        self._entries = []
        return count


def _overlaps(a: Match, b: Match) -> bool:
    """True when some packet could match both ``a`` and ``b``.

    Field-wise: the matches are disjoint iff some field is specified by
    both with incompatible values; otherwise a witness packet exists.
    """
    from .match import MATCH_FIELDS

    for field in MATCH_FIELDS:
        value_a = getattr(a, field)
        value_b = getattr(b, field)
        if value_a is None or value_b is None:
            continue
        if field in ("nw_src", "nw_dst"):
            prefix = min(
                getattr(a, field + "_prefix"), getattr(b, field + "_prefix")
            )
            mask = ((1 << prefix) - 1) << (32 - prefix) if prefix else 0
            if (int(value_a) & mask) != (int(value_b) & mask):
                return False
        elif value_a != value_b:
            return False
    return True


def _covers(wide: Match, narrow: Match) -> bool:
    """True when every packet matched by ``narrow`` is matched by ``wide``."""
    from .match import MATCH_FIELDS

    for field in MATCH_FIELDS:
        wide_value = getattr(wide, field)
        if wide_value is None:
            continue
        narrow_value = getattr(narrow, field)
        if field in ("nw_src", "nw_dst"):
            wide_prefix = getattr(wide, field + "_prefix")
            narrow_prefix = getattr(narrow, field + "_prefix")
            if narrow_value is None or narrow_prefix < wide_prefix:
                return False
            mask = ((1 << wide_prefix) - 1) << (32 - wide_prefix) if wide_prefix else 0
            if (int(wide_value) & mask) != (int(narrow_value) & mask):
                return False
        elif narrow_value != wide_value:
            return False
    return True
