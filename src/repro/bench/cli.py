"""``python -m repro bench`` — run the perf harness and gate on baseline.

Typical uses::

    python -m repro bench                       # full run, gate vs BENCH_HOTPATH.json
    python -m repro bench --quick --out /tmp/b.json   # CI smoke
    python -m repro bench --write-baseline      # refresh the committed baseline
    python -m repro bench --store               # also gate the durable-store suite
    python -m repro bench --suites t2_flow_setup --suites-out bench-out

Exit status is nonzero when the regression gate fails (a ratio floor is
violated or throughput falls outside the tolerance band) — that is the
CI contract for the ``bench-gate`` job.
"""

from __future__ import annotations

import argparse
import json
import logging
from pathlib import Path
from typing import List, Optional

from ..core.logging_setup import configure_logging
from .gate import DEFAULT_TOLERANCE, check_gate, load_baseline, make_report
from .hotpath import run_hotpath
from .store import STORE_FLOORS, STORE_THROUGHPUT_KEYS, run_store
from .suites import SUITES, run_suites

logger = logging.getLogger("repro.bench")

#: The committed baselines live at the repo root, next to pyproject.
DEFAULT_BASELINE = Path(__file__).resolve().parents[3] / "BENCH_HOTPATH.json"
DEFAULT_STORE_BASELINE = Path(__file__).resolve().parents[3] / "BENCH_STORE.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="hot-path perf harness with a baseline regression gate",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced iteration counts (CI smoke; not for baselines)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline report to gate against (default: committed BENCH_HOTPATH.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write this run's report to the baseline path instead of gating",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="minimum fraction of baseline throughput that still passes "
        f"(default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="report only; skip floors and baseline comparison",
    )
    parser.add_argument(
        "--store",
        action="store_true",
        help="also run the durable-store suite and gate it against its baseline",
    )
    parser.add_argument(
        "--store-baseline",
        type=Path,
        default=DEFAULT_STORE_BASELINE,
        help="store-suite baseline (default: committed BENCH_STORE.json)",
    )
    parser.add_argument(
        "--suites",
        action="append",
        default=[],
        metavar="NAME",
        help="also run a standalone benchmarks/ suite "
        f"({', '.join(sorted(SUITES))} or 'all'); repeatable",
    )
    parser.add_argument(
        "--suites-out",
        type=Path,
        default=Path("bench-out"),
        help="directory the suite BENCH_*.json reports are written to",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(verbose=args.verbose)

    logger.info("running hot-path microbenches (%s)", "quick" if args.quick else "full")
    results = run_hotpath(quick=args.quick)
    report = make_report(results, quick=args.quick)
    logger.info(
        "flow lookup: indexed %.0f ops/s, linear %.0f ops/s, speedup %.1fx",
        results["flow_lookup_indexed_512"],
        results["flow_lookup_linear_512"],
        results["flow_lookup_speedup_512"],
    )
    logger.info("sim dispatch: %.0f events/s", results["sim_dispatch_events"])
    logger.info("classification: %.0f ops/s", results["classify_memoized"])
    logger.info(
        "trace overhead: untraced %.0f pps, sampled %.0f pps, ratio %.3f",
        results["trace_untraced_pps"],
        results["trace_sampled_pps"],
        results["trace_overhead_ratio_sampled"],
    )

    store_results = None
    store_report = None
    if args.store:
        logger.info("running durable-store benches")
        store_results = run_store(quick=args.quick)
        store_report = make_report(store_results, quick=args.quick, floors=STORE_FLOORS)
        logger.info(
            "store: append ratio %.3f, commit %.0f rows/s, "
            "recover %.0f rows/s, scan %.0f rows/s",
            store_results["store_insert_append_ratio"],
            store_results["store_wal_commit_rows_per_sec"],
            store_results["store_recover_rows_per_sec"],
            store_results["store_archive_scan_rows_per_sec"],
        )

    if args.suites:
        names = sorted(SUITES) if "all" in args.suites else args.suites
        run_suites(names, args.suites_out, quick=args.quick)

    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        logger.info("report written to %s", args.out)
        if store_report is not None:
            store_out = args.out.with_name(args.out.stem + "_store" + args.out.suffix)
            with open(store_out, "w", encoding="utf-8") as fh:
                json.dump(store_report, fh, indent=2, sort_keys=True)
            logger.info("store report written to %s", store_out)

    if args.write_baseline:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        logger.info("baseline written to %s", args.baseline)
        if store_report is not None:
            with open(args.store_baseline, "w", encoding="utf-8") as fh:
                json.dump(store_report, fh, indent=2, sort_keys=True)
            logger.info("store baseline written to %s", args.store_baseline)
        return 0

    if args.no_gate:
        return 0

    baseline = load_baseline(args.baseline)
    if baseline is None:
        logger.warning(
            "no usable baseline at %s; gating on ratio floors only", args.baseline
        )
    gate = check_gate(results, baseline, tolerance=args.tolerance)
    failures = list(gate.failures)
    checked = gate.checked
    if store_results is not None:
        store_baseline = load_baseline(args.store_baseline)
        if store_baseline is None:
            logger.warning(
                "no usable store baseline at %s; gating on ratio floors only",
                args.store_baseline,
            )
        store_gate = check_gate(
            store_results,
            store_baseline,
            tolerance=args.tolerance,
            floors=STORE_FLOORS,
            throughput_keys=STORE_THROUGHPUT_KEYS,
        )
        failures.extend(store_gate.failures)
        checked += store_gate.checked
    if not failures:
        logger.info("bench gate PASSED (%d checks)", checked)
        return 0
    for failure in failures:
        logger.error("bench gate: %s", failure)
    logger.error("bench gate FAILED (%d of %d checks)", len(failures), checked)
    return 1
