"""Runner for the standalone ``benchmarks/bench_*.py`` suites.

The suites live outside the installed package (repo ``benchmarks/``
directory), so they are loaded by file path with :mod:`importlib` and
gated: a missing directory (installed wheel) or a missing optional
dependency (``pytest`` imported at a suite's top level) skips the suite
with a log line instead of failing the bench run.
"""

from __future__ import annotations

import importlib.util
import inspect
import logging
from pathlib import Path
from typing import Dict, List, Optional

logger = logging.getLogger("repro.bench.suites")

#: Suite name → (module file, main() kwargs overriding iteration counts
#: in --quick mode).  Names match the bench_<name>.py files.
SUITES: Dict[str, Dict[str, object]] = {
    "t1_hwdb": {"quick": {"inserts": 2_000, "query_reps": 20}},
    "t2_flow_setup": {"quick": {"packets": 300, "misses": 30}},
    "t3_dhcp": {"quick": {"alloc_reps": 1_000}},
    "t4_dns": {"quick": {"lookups": 20, "checks": 1_000}},
    "t5_query": {"quick": {"rounds": 1, "ticks": 50}},
    "e1_nat": {"quick": {"flows": 20, "bind_reps": 1_500}},
    "store": {"quick": {"quick": True}},
}


def benchmarks_dir(root: Optional[Path] = None) -> Optional[Path]:
    """The repo's ``benchmarks/`` directory, or ``None`` when absent."""
    if root is not None:
        candidate = Path(root) / "benchmarks"
        return candidate if candidate.is_dir() else None
    # src/repro/bench/suites.py → repo root is three levels above repro.
    candidate = Path(__file__).resolve().parents[3] / "benchmarks"
    return candidate if candidate.is_dir() else None


def _load_main(path: Path):
    spec = importlib.util.spec_from_file_location(f"repro_bench_{path.stem}", path)
    if spec is None or spec.loader is None:
        return None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return getattr(module, "main", None)


def run_suites(
    names: List[str],
    out_dir: Path,
    quick: bool = False,
    root: Optional[Path] = None,
) -> Dict[str, Optional[dict]]:
    """Run the named suites; each writes its ``BENCH_*.json`` into
    ``out_dir`` and contributes its report dict (``None`` = skipped)."""
    reports: Dict[str, Optional[dict]] = {}
    directory = benchmarks_dir(root)
    if directory is None:
        logger.warning("benchmarks/ directory not found; skipping suites")
        return {name: None for name in names}
    out_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        if name not in SUITES:
            logger.warning("unknown bench suite %r; skipping", name)
            reports[name] = None
            continue
        path = directory / f"bench_{name}.py"
        if not path.is_file():
            logger.warning("suite file %s missing; skipping", path)
            reports[name] = None
            continue
        try:
            main = _load_main(path)
        except ImportError as exc:
            # e.g. a suite importing pytest at module level in an
            # environment without it — skip, don't fail the gate.
            logger.warning("suite %s needs missing dependency (%s); skipping", name, exc)
            reports[name] = None
            continue
        if main is None:
            logger.warning("suite %s has no main(); skipping", name)
            reports[name] = None
            continue
        kwargs = dict(SUITES[name]["quick"]) if quick else {}
        out_path = out_dir / f"BENCH_{name.split('_')[0].upper()}.json"
        # The suites name their output parameter either out_path or output.
        out_param = "out_path" if "out_path" in inspect.signature(main).parameters else "output"
        kwargs[out_param] = str(out_path)
        reports[name] = main(**kwargs)
        logger.info("suite %s complete -> %s", name, out_path)
    return reports
