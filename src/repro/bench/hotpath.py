"""Hot-path microbenchmarks: the three kernels DESIGN.md §14 optimises.

Each bench times a tight loop with an injectable :class:`Clock` (the
gate-trip test injects a deliberately slow fake; production use passes a
:class:`WallClock`) and reports operations/second plus the structural
numbers the regression gate's *ratio floors* check — most importantly
the indexed-vs-linear flow-lookup speedup, which is machine-independent
and therefore gated hard while absolute throughputs get a generous
tolerance band.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.clock import Clock, WallClock
from ..hwdb.database import HomeworkDatabase
from ..measurement.aggregator import BandwidthAggregator
from ..net import ETH_TYPE_IPV4, PROTO_TCP, PROTO_UDP
from ..net.addresses import IPv4Address, MACAddress
from ..net.ethernet import Ethernet
from ..net.ipv4 import IPv4
from ..net.trace import with_trace
from ..net.udp import UDP
from ..obs.trace import Tracer
from ..openflow.actions import PORT_NONE, output
from ..openflow.datapath import Datapath
from ..openflow.flow_table import FlowEntry, FlowTable, LinearFlowTable
from ..openflow.match import FlowKey, Match
from ..sim.simulator import Simulator

#: Entry count at which the acceptance criterion's speedup is measured.
FLOW_TABLE_ENTRIES = 512

#: (iterations per bench) for full and --quick runs.
FULL_ITERATIONS = {
    "flow_lookup": 200_000,
    "sim_dispatch": 200_000,
    "classify": 200_000,
    "trace": 50_000,
}
QUICK_ITERATIONS = {
    "flow_lookup": 20_000,
    "sim_dispatch": 20_000,
    "classify": 20_000,
    "trace": 5_000,
}

#: Sampling rate the trace-overhead ratio is measured at (the default
#: production setting; the gated acceptance criterion's operating point).
TRACE_BENCH_SAMPLE = 0.01

#: Linear-scan lookups are ~50x slower; cap their loop so a full run
#: doesn't spend most of its wall time inside the reference path.
LINEAR_ITERATION_CAP = 20_000


def _timed_ops(fn: Callable[[int], None], iterations: int, clock: Clock, repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` throughput of ``fn(iterations)`` in ops/sec."""
    best: Optional[float] = None
    for _ in range(repeats):
        start = clock.now()
        fn(iterations)
        elapsed = clock.now() - start
        if best is None or elapsed < best:
            best = elapsed
    elapsed = max(best if best is not None else 0.0, 1e-9)
    return {
        "iterations": iterations,
        "seconds": elapsed,
        "ops_per_sec": iterations / elapsed,
    }


def _build_flow_tables(entries: int = FLOW_TABLE_ENTRIES):
    """Identical rule sets in the indexed and reference linear tables.

    A realistic mix: half host/flow rules wildcarding only the untracked
    fields (one masked bucket), a quarter fully-concrete 9-field rules
    (the exact index), and a quarter port-only wildcards (a second
    bucket), spread over several priorities.
    """
    indexed, linear = FlowTable(), LinearFlowTable()
    keys = []
    for i in range(entries):
        mac = MACAddress(f"02:bb:00:00:{(i >> 8) & 0xFF:02x}:{i & 0xFF:02x}")
        ip = IPv4Address(f"10.2.{(i >> 8) & 0xFF}.{i & 0xFF}")
        port = 10_000 + i
        if i % 4 == 3:
            match = Match(nw_proto=PROTO_TCP, tp_dst=port)
        elif i % 4 == 1:
            match = Match(
                in_port=1,
                dl_src=mac,
                dl_dst=MACAddress("02:bb:00:00:00:aa"),
                dl_type=ETH_TYPE_IPV4,
                nw_src=IPv4Address("10.2.0.1"),
                nw_dst=ip,
                nw_proto=PROTO_TCP,
                tp_src=40_000,
                tp_dst=port,
            )
        else:
            match = Match(dl_src=mac, nw_dst=ip, nw_proto=PROTO_TCP, tp_dst=port)
        for table in (indexed, linear):
            table.add(FlowEntry(match, output(2), priority=10 + (i % 37)))
        keys.append(
            FlowKey(
                in_port=1,
                dl_src=mac,
                dl_dst=MACAddress("02:bb:00:00:00:aa"),
                dl_type=ETH_TYPE_IPV4,
                nw_src=IPv4Address("10.2.0.1"),
                nw_dst=ip,
                nw_proto=PROTO_TCP,
                tp_src=40_000,
                tp_dst=port,
            )
        )
    return indexed, linear, keys


def bench_flow_lookup(iterations: int, clock: Clock) -> Dict[str, object]:
    """Indexed vs reference linear lookup over the same 512 rules."""
    indexed, linear, keys = _build_flow_tables()
    nkeys = len(keys)

    def loop(table):
        def run(count: int) -> None:
            lookup = table.lookup
            for i in range(count):
                lookup(keys[i % nkeys])

        return run

    indexed_stats = _timed_ops(loop(indexed), iterations, clock)
    linear_stats = _timed_ops(
        loop(linear), min(iterations, LINEAR_ITERATION_CAP), clock
    )
    speedup = indexed_stats["ops_per_sec"] / max(linear_stats["ops_per_sec"], 1e-9)
    return {
        "entries": FLOW_TABLE_ENTRIES,
        "indexed": indexed_stats,
        "linear": linear_stats,
        "speedup": speedup,
        "index": indexed.index_stats(),
    }


def bench_sim_dispatch(iterations: int, clock: Clock) -> Dict[str, object]:
    """Batched same-timestamp dispatch throughput (events/sec).

    The workload is the shape batching targets: many callbacks landing
    on few distinct timestamps (a traffic burst arriving at one port).
    """

    def run(count: int) -> None:
        sim = Simulator(seed=1)
        timestamps = max(count // 100, 1)
        noop = _noop
        for i in range(count):
            sim.schedule_at(float(i % timestamps + 1), noop)
        sim.run_until(float(timestamps + 1))

    stats = _timed_ops(run, iterations, clock)
    return {"events": stats}


def _noop() -> None:
    return None


def bench_classify(iterations: int, clock: Clock) -> Dict[str, object]:
    """Memoized protocol classification over a realistic triple mix."""
    db = HomeworkDatabase(Simulator(seed=1).clock)
    aggregator = BandwidthAggregator(db)
    triples = [
        (PROTO_TCP, 40_000 + (i % 64), (80, 443, 22, 53, 1935, 8080)[i % 6])
        for i in range(256)
    ] + [(PROTO_UDP, 5_004, 53), (PROTO_UDP, 5_004, 123)]
    ntriples = len(triples)

    def run(count: int) -> None:
        protocol_of = aggregator._protocol_of
        for i in range(count):
            proto, sport, dport = triples[i % ntriples]
            protocol_of(proto, sport, dport)

    stats = _timed_ops(run, iterations, clock)
    return {"classify": stats, "memo_entries": len(aggregator._classify_memo)}


def bench_trace(iterations: int, clock: Clock) -> Dict[str, object]:
    """Datapath fast-path cost of lineage tracing at the default sample.

    The loop is the microflow-cache hit path — the hottest packet path
    in the system — once untraced and once with a Tracer minting a
    context per packet at ``TRACE_BENCH_SAMPLE``.  The gated number is
    the ratio: traced throughput must stay ≥ 90% of untraced.
    """

    def build_datapath() -> Datapath:
        sim = Simulator(seed=1)
        dp = Datapath(sim)
        # A concrete UDP flow whose action is Output(PORT_NONE): the
        # frame matches (cache hit after the first packet) and then
        # vanishes, so the bench needs no ports, links or controller.
        dp.table.add(
            FlowEntry(
                Match(dl_type=ETH_TYPE_IPV4, nw_proto=PROTO_UDP, tp_dst=9),
                output(PORT_NONE),
                priority=100,
            )
        )
        return dp

    raw = Ethernet(
        dst="02:bb:00:00:00:aa",
        src="02:bb:00:00:00:01",
        ethertype=ETH_TYPE_IPV4,
        payload=IPv4(
            src="10.2.0.5",
            dst="10.2.0.6",
            proto=PROTO_UDP,
            payload=UDP(sport=40_000, dport=9, payload=b"x" * 32),
        ),
    ).pack()

    dp_plain = build_datapath()

    def run_untraced(count: int) -> None:
        process = dp_plain.process_frame
        for _ in range(count):
            process(raw, 1)

    dp_traced = build_datapath()
    tracer = Tracer(
        clock=dp_traced.sim.clock.now, sample=TRACE_BENCH_SAMPLE, enabled=True
    )

    def run_traced(count: int) -> None:
        process = dp_traced.process_frame
        begin = tracer.begin
        for _ in range(count):
            ctx = begin()
            process(with_trace(raw, ctx), 1)

    # The gated number is a ratio of two timed loops.  CI machines drift
    # on a seconds scale (frequency scaling, noisy neighbours), so timing
    # the phases back-to-back in alternation — rather than best-of on two
    # separated phases — ensures both sides sample the same noise windows
    # before best-of collapses them.
    repeats = 7
    best_untraced: Optional[float] = None
    best_traced: Optional[float] = None
    for _ in range(repeats):
        start = clock.now()
        run_untraced(iterations)
        elapsed = clock.now() - start
        if best_untraced is None or elapsed < best_untraced:
            best_untraced = elapsed
        start = clock.now()
        run_traced(iterations)
        elapsed = clock.now() - start
        if best_traced is None or elapsed < best_traced:
            best_traced = elapsed
    untraced_stats = {
        "iterations": iterations,
        "seconds": max(best_untraced, 1e-9),
        "ops_per_sec": iterations / max(best_untraced, 1e-9),
    }
    traced_stats = {
        "iterations": iterations,
        "seconds": max(best_traced, 1e-9),
        "ops_per_sec": iterations / max(best_traced, 1e-9),
    }
    ratio = traced_stats["ops_per_sec"] / max(untraced_stats["ops_per_sec"], 1e-9)
    return {
        "sample": TRACE_BENCH_SAMPLE,
        "untraced": untraced_stats,
        "traced": traced_stats,
        "overhead_ratio": ratio,
    }


def run_hotpath(quick: bool = False, clock: Optional[Clock] = None) -> Dict[str, object]:
    """Run all hot-path microbenches; returns the results section of the
    ``repro.bench/1`` report."""
    clock = clock if clock is not None else WallClock()
    budget = QUICK_ITERATIONS if quick else FULL_ITERATIONS
    flow = bench_flow_lookup(budget["flow_lookup"], clock)
    dispatch = bench_sim_dispatch(budget["sim_dispatch"], clock)
    classify = bench_classify(budget["classify"], clock)
    trace = bench_trace(budget["trace"], clock)
    return {
        "flow_lookup_indexed_512": flow["indexed"]["ops_per_sec"],
        "flow_lookup_linear_512": flow["linear"]["ops_per_sec"],
        "flow_lookup_speedup_512": flow["speedup"],
        "sim_dispatch_events": dispatch["events"]["ops_per_sec"],
        "classify_memoized": classify["classify"]["ops_per_sec"],
        "trace_untraced_pps": trace["untraced"]["ops_per_sec"],
        "trace_sampled_pps": trace["traced"]["ops_per_sec"],
        "trace_overhead_ratio_sampled": trace["overhead_ratio"],
        "detail": {
            "flow_lookup": flow,
            "sim_dispatch": dispatch,
            "classify": classify,
            "trace": trace,
        },
    }
