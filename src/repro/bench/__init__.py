"""``repro.bench`` — the hot-path perf harness and regression gate.

``python -m repro bench`` runs the hot-path microbenches (indexed flow
lookup, batched event dispatch, memoized protocol classification),
optionally the standalone ``benchmarks/bench_*.py`` suites, and compares
the results against the committed ``BENCH_HOTPATH.json`` baseline —
exiting nonzero on regression so CI can gate merges on performance
(DESIGN.md §14).
"""

from .gate import GateResult, check_gate, load_baseline
from .hotpath import run_hotpath

__all__ = ["GateResult", "check_gate", "load_baseline", "run_hotpath"]
