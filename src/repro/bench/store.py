"""Durable-store microbenches: append overhead, commit, recovery, scan.

Four measurements, one per store code path that sits on a hot loop:

* **Append overhead** (``store_insert_append_ratio``) — insert
  throughput with a durable store attached vs a bare ring, with group
  commit and sealing deferred so only the per-insert hook cost is in
  frame (the WAL's design puts encoding and I/O on the amortized flush
  path; see :mod:`repro.store.wal`).  Interleaved best-of-N sampling,
  same as the T1 bench: scheduler jitter hits both variants alike and
  ``max`` discards it.  Measured ratio is ~0.87 (observed 0.81–0.93 on
  a noisy shared machine) — the hooks cost about 1.4 µs on a ~10 µs
  insert: two bound-method calls, one pending-list append, one tuple,
  one clock read for the flush-interval check.  The floor sits at 0.75,
  under the observed spread but far above what moving encoding or I/O
  back onto this path would leave (inline encode alone halves the
  ratio).  The gap to the <5 % aspiration is the Python method-dispatch
  tax, not I/O: group commit keeps encoding and writes off this path
  entirely.
* **Group commit** (``store_wal_commit_rows_per_sec``) — the realistic
  write path: appends through the WAL with a production group size, so
  periodic encode+write+flush is amortized in.
* **Recovery** (``store_recover_rows_per_sec``) — rebuild ring + archive
  from manifest, segments and WAL tail, measured over the rows
  materialized into the recovered database.
* **Archive scan** (``store_archive_scan_rows_per_sec``) — tier-spanning
  read throughput over sealed segments plus the pending spill buffer.

Ratio floors are machine-independent; the throughput numbers gate with
the generous baseline band (see :mod:`repro.bench.gate`) against the
committed ``BENCH_STORE.json``.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from typing import Callable, Dict, Optional

from ..core.clock import SimulatedClock
from ..hwdb.database import HomeworkDatabase
from ..store import DurableStore, recover_store

#: Ratio floors for the store suite (see module docstring for why 0.75).
STORE_FLOORS: Dict[str, float] = {
    "store_insert_append_ratio": 0.75,
}

#: Store throughputs the baseline tolerance band applies to.
STORE_THROUGHPUT_KEYS = (
    "store_wal_commit_rows_per_sec",
    "store_recover_rows_per_sec",
    "store_archive_scan_rows_per_sec",
)

SCHEMA = [
    ("src_ip", "ipaddr"),
    ("dst_ip", "ipaddr"),
    ("proto", "integer"),
    ("src_port", "integer"),
    ("dst_port", "integer"),
    ("src_mac", "macaddr"),
    ("packets", "integer"),
    ("bytes", "integer"),
]

ROW = ("10.2.0.6", "31.13.72.36", 6, 50000, 443, "02:aa:00:00:00:01", 10, 4096)

#: A config that never flushes or seals on its own: isolates the
#: per-insert hook cost for the append-ratio measurement.
_DEFERRED = dict(flush_interval=1e9, group_records=10**9, segment_rows=10**9)


def _make_db(capacity: int = 4096):
    clock = SimulatedClock()
    db = HomeworkDatabase(clock)
    db.create_table("flows", SCHEMA, capacity)
    return clock, db


def run_store(
    quick: bool = False,
    timer: Optional[Callable[[], float]] = None,
) -> Dict[str, object]:
    """Run the store suite; returns a flat results dict (plus detail).

    ``timer`` overrides ``time.perf_counter`` (tests inject a jumping
    clock to trip the gate deterministically).
    """
    now = time.perf_counter if timer is None else timer
    batch = 2_000 if quick else 5_000
    rounds = 3 if quick else 8
    commit_rows = 10_000 if quick else 40_000
    # Recover/scan throughput depends on the image shape (rows per
    # segment materialized per unit work), so quick and full build the
    # *same* image — only repetition counts differ.  Keeps a --quick CI
    # run comparable against the committed full-run baseline.
    archive_rows = 8_000
    scan_reps = 3 if quick else 10

    results: Dict[str, object] = {}

    # -- append-path ratio: bare ring vs deferred-flush store ----------
    bare_clock, bare_db = _make_db()
    stored_clock, stored_db = _make_db()
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    store = DurableStore(root, stored_clock, **_DEFERRED)
    store.attach(stored_db)

    def sample(clock, db) -> float:
        start = now()
        for _ in range(batch):
            clock.advance(0.0001)
            db.insert("flows", ROW)
        return batch / max(now() - start, 1e-9)

    sample(bare_clock, bare_db)  # warm-up both sides
    sample(stored_clock, stored_db)
    bare = stored = 0.0
    for _ in range(rounds):
        bare = max(bare, sample(bare_clock, bare_db))
        stored = max(stored, sample(stored_clock, stored_db))
    store.close()
    shutil.rmtree(root, ignore_errors=True)
    results["store_insert_bare_per_sec"] = bare
    results["store_insert_stored_per_sec"] = stored
    results["store_insert_append_ratio"] = stored / bare if bare else 0.0

    # -- group commit: the realistic WAL write path --------------------
    clock, db = _make_db()
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    store = DurableStore(
        root, clock, flush_interval=1e9, group_records=256, segment_rows=10**9
    )
    store.attach(db)
    wal = store.wal
    start = now()
    for seq in range(commit_rows):
        wal.append("flows", seq + 1, seq * 1e-4, ROW)
    wal.flush()
    elapsed = max(now() - start, 1e-9)
    results["store_wal_commit_rows_per_sec"] = commit_rows / elapsed
    store.close()
    shutil.rmtree(root, ignore_errors=True)

    # -- populate one store for the recovery and scan benches ----------
    # Small ring so most rows evict into segments; small segments so the
    # scan crosses many manifest entries.
    clock, db = _make_db(capacity=256)
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    store = DurableStore(
        root, clock, flush_interval=1e9, group_records=512, segment_rows=512
    )
    store.attach(db)
    for _ in range(archive_rows):
        clock.advance(0.0001)
        db.insert("flows", ROW)
    store.flush()
    segments = len(store.tier("flows").segments)
    store.close()

    scratch = HomeworkDatabase(SimulatedClock())
    start = now()
    recovered = recover_store(root, scratch)
    elapsed = max(now() - start, 1e-9)
    audit = recovered.tables["flows"]
    rebuilt = audit["ring_rows"] + audit["pending_rows"] + audit["sealed_rows"]
    results["store_recover_rows_per_sec"] = rebuilt / elapsed

    tier = recovered.store.tier("flows")
    best = 0.0
    scanned = 0
    for _ in range(scan_reps):
        start = now()
        rows, info = tier.scan_since(0.0)
        elapsed = max(now() - start, 1e-9)
        best = max(best, len(rows) / elapsed)
        scanned = len(rows)
    results["store_archive_scan_rows_per_sec"] = best
    recovered.store.close()
    shutil.rmtree(root, ignore_errors=True)

    results["detail"] = {
        "append": {"batch": batch, "rounds": rounds},
        "commit": {"rows": commit_rows, "group_records": 256},
        "recover": {"rows_rebuilt": rebuilt, "segments": segments},
        "scan": {"rows": scanned, "reps": scan_reps},
    }
    return results


__all__ = ["STORE_FLOORS", "STORE_THROUGHPUT_KEYS", "run_store"]
