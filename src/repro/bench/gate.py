"""The bench regression gate: floors and tolerance against a baseline.

Two kinds of check, chosen for CI robustness (DESIGN.md §14):

* **Ratio floors** — machine-independent structural ratios (e.g. the
  indexed flow lookup must stay ≥ 5x the linear reference).  These are
  sharp: a violated floor means the optimisation itself regressed, not
  the CI machine.
* **Throughput tolerance** — absolute ops/sec compared against the
  committed baseline with a generous band (default: fail only below
  20% of baseline), absorbing machine-speed variance while still
  catching order-of-magnitude regressions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

SCHEMA = "repro.bench/1"

#: Ratio floors checked against the *current* run (machine-independent).
DEFAULT_FLOORS: Dict[str, float] = {
    "flow_lookup_speedup_512": 5.0,
    # Lineage tracing at the default 1% sample must cost the datapath
    # fast path at most 10% throughput (ISSUE 10 acceptance criterion).
    "trace_overhead_ratio_sampled": 0.90,
}

#: Current throughput must be at least this fraction of baseline.
DEFAULT_TOLERANCE = 0.2

#: The result keys the tolerance band applies to (ops/sec throughputs).
THROUGHPUT_KEYS = (
    "flow_lookup_indexed_512",
    "sim_dispatch_events",
    "classify_memoized",
    "trace_sampled_pps",
)


class GateResult:
    """Outcome of one gate evaluation."""

    __slots__ = ("passed", "failures", "checked")

    def __init__(self, passed: bool, failures: List[str], checked: int):
        self.passed = passed
        self.failures = failures
        self.checked = checked


def load_baseline(path: Union[str, Path]) -> Optional[dict]:
    """Read a baseline report; ``None`` when absent or unreadable."""
    path = Path(path)
    if not path.is_file():
        return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(baseline, dict) or baseline.get("schema") != SCHEMA:
        return None
    return baseline


def check_gate(
    results: Dict[str, object],
    baseline: Optional[dict] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    floors: Optional[Dict[str, float]] = None,
    throughput_keys: Optional[Sequence[str]] = None,
) -> GateResult:
    """Evaluate floors (always) and the baseline band (when given).

    ``floors`` and ``throughput_keys`` default to the hot-path set; the
    store suite passes its own (see :mod:`repro.bench.store`).
    """
    failures: List[str] = []
    checked = 0
    effective_floors = dict(DEFAULT_FLOORS if floors is None else floors)
    if baseline is not None:
        for key, value in baseline.get("floors", {}).items():
            effective_floors.setdefault(key, float(value))

    for key, floor in sorted(effective_floors.items()):
        checked += 1
        value = results.get(key)
        if not isinstance(value, (int, float)):
            failures.append(f"{key}: missing from results (floor {floor:g})")
        elif value < floor:
            failures.append(f"{key}: {value:.2f} below floor {floor:g}")

    if baseline is not None:
        base_results = baseline.get("results", {})
        for key in THROUGHPUT_KEYS if throughput_keys is None else throughput_keys:
            base = base_results.get(key)
            value = results.get(key)
            if not isinstance(base, (int, float)) or base <= 0:
                continue
            checked += 1
            if not isinstance(value, (int, float)):
                failures.append(f"{key}: missing from results (baseline {base:.0f})")
            elif value < base * tolerance:
                failures.append(
                    f"{key}: {value:.0f} ops/s is below {tolerance:.0%} of "
                    f"baseline {base:.0f} ops/s"
                )

    return GateResult(passed=not failures, failures=failures, checked=checked)


def make_report(
    results: Dict[str, object],
    quick: bool,
    floors: Optional[Dict[str, float]] = None,
) -> dict:
    """Wrap bench results in the versioned report envelope.

    The stamped floors travel with the baseline, so a gate run against
    an old report enforces the floors that report was produced under.
    """
    return {
        "schema": SCHEMA,
        "quick": quick,
        "results": results,
        "floors": dict(DEFAULT_FLOORS if floors is None else floors),
    }
