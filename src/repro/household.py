"""Household composition: specs in, running router + workloads out.

:func:`build_household` wires a :class:`~repro.core.router.HomeworkRouter`
to a simulated household described by :class:`~repro.sim.topology.DeviceSpec`
rows.  It lives at the application layer — above both ``core.router`` and
``sim`` — because it is the one place that composes them; the scenario
*data* (``DeviceSpec``, ``Household``, ``STANDARD_HOUSEHOLD``) stays in
:mod:`repro.sim.topology`, which must not import the router (repro-lint's
``layering`` rule enforces this).
"""

from __future__ import annotations

from typing import Optional, Sequence

from .core.config import RouterConfig
from .core.router import HomeworkRouter
from .sim.simulator import Simulator
from .sim.topology import DeviceSpec, Household, STANDARD_HOUSEHOLD
from .sim.traffic import DEFAULT_WORKLOADS


def build_household(
    specs: Sequence[DeviceSpec] = STANDARD_HOUSEHOLD,
    seed: int = 7,
    config: Optional[RouterConfig] = None,
    join_seconds: float = 5.0,
    start_traffic: bool = True,
) -> Household:
    """Build, join and (optionally) load a household in one call."""
    sim = Simulator(seed=seed)
    router = HomeworkRouter(
        sim, config=config or RouterConfig(default_permit=True)
    )
    router.start()
    household = Household(sim, router)
    for spec in specs:
        host = router.add_device(
            spec.name,
            spec.mac,
            wireless=spec.wireless,
            position=spec.position,
            device_class=spec.device_class,
        )
        household.hosts[spec.name] = host
        host.start_dhcp()
    sim.run_for(join_seconds)
    if start_traffic:
        delay = 0.2
        for spec in specs:
            for generator_cls in DEFAULT_WORKLOADS.get(spec.device_class, ()):
                generator = generator_cls(household.hosts[spec.name])
                generator.start(delay)
                household.generators.append(generator)
                delay += 0.3
    return household
