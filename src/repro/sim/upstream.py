"""The simulated Internet beyond the home router's upstream port.

The paper's router uplinks to a real ISP; here a single
:class:`InternetCloud` node terminates every outbound connection.  It
answers TCP on the well-known service ports for any destination address,
runs an authoritative DNS zone of "web-hosted services" (facebook.com,
youtube.com, ...), and echoes ICMP — enough to exercise the DNS proxy's
permitted-sites enforcement and the measurement plane end to end.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Callable, Dict, Optional, Union

from ..net.addresses import IPv4Address, MACAddress
from ..net.dns_msg import (
    DNSMessage,
    DNSRecord,
    RCODE_NXDOMAIN,
    TYPE_A,
)
from ..net.ipv4 import IPv4
from ..net.packet import PacketError
from ..net.tcp import TCP
from ..net.udp import PORT_DNS, UDP
from .host import Host, TCPConnection

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import Simulator

logger = logging.getLogger(__name__)

# Default "web-hosted services" zone for the home deployment's examples.
DEFAULT_ZONE: Dict[str, str] = {
    "facebook.com": "31.13.72.36",
    "www.facebook.com": "31.13.72.36",
    "youtube.com": "142.250.180.14",
    "www.youtube.com": "142.250.180.14",
    "bbc.co.uk": "151.101.0.81",
    "www.bbc.co.uk": "151.101.0.81",
    "mail.example.org": "93.184.216.40",
    "www.example.org": "93.184.216.34",
    "homework.example.net": "93.184.216.50",
    "updates.example.io": "93.184.216.60",
    "cdn.example.io": "93.184.216.61",
    "iot.example.io": "93.184.216.70",
}


class InternetCloud(Host):
    """A host that impersonates every upstream server.

    Accepts IP packets for *any* destination, serves a configurable byte
    payload on well-known TCP ports, and answers DNS from its zone.
    """

    def __init__(
        self,
        sim: "Simulator",
        ip: Union[str, IPv4Address] = "82.10.0.1",
        mac: Union[str, MACAddress] = "02:00:00:00:ff:01",
        zone: Optional[Dict[str, str]] = None,
        response_size: int = 8192,
    ):
        super().__init__(sim, "internet", mac, device_class="infrastructure")
        # Everything is "on-link" for the cloud by default; the router
        # narrows this to the upstream /30 with itself as gateway.
        self.configure_static(ip, netmask="0.0.0.0")
        self.zone: Dict[str, IPv4Address] = {
            name: IPv4Address(addr) for name, addr in (zone or DEFAULT_ZONE).items()
        }
        self.response_size = response_size
        self.connections_served = 0
        self.dns_queries_served = 0
        self.on_serve: Optional[Callable[[TCPConnection], None]] = None
        self._current_dst: Optional[IPv4Address] = None

    def add_site(self, name: str, addr: Union[str, IPv4Address]) -> None:
        self.zone[name.rstrip(".").lower()] = IPv4Address(addr)

    def lookup(self, name: str) -> Optional[IPv4Address]:
        return self.zone.get(name.rstrip(".").lower())

    def reverse_lookup(self, addr: Union[str, IPv4Address]) -> Optional[str]:
        addr = IPv4Address(addr)
        for name, ip in self.zone.items():
            if ip == addr:
                return name
        return None

    # -- Accept traffic for any address --------------------------------

    def _handle_ip(self, ip: IPv4) -> None:
        self._current_dst = ip.dst
        try:
            if ip.proto == 17:
                udp = ip.find(UDP)
                if udp is not None and udp.dport == PORT_DNS:
                    self._serve_dns(udp, ip)
                    return
            # Fall through to the normal stack with dst filtering disabled.
            original_ip = self.ip
            self.ip = ip.dst
            try:
                super()._handle_ip(ip)
            finally:
                self.ip = original_ip
        finally:
            self._current_dst = None

    def _handle_tcp(self, segment: TCP, src_ip: IPv4Address) -> None:
        key = (segment.dport, src_ip, segment.sport)
        conn = self._tcp_conns.get(key)
        if conn is None and segment.is_syn:
            # Auto-listen: every port serves.
            child = TCPConnection(self, segment.dport, src_ip, segment.sport)
            child.state = "LISTEN_CHILD"
            child.ack = segment.seq + 1
            child.local_ip = self._current_dst
            self._tcp_conns[child.key] = child
            self.connections_served += 1
            child.on_data = lambda data, c=child: self._serve_request(c, data)
            if self.on_serve:
                self.on_serve(child)
            from ..net.tcp import ACK, SYN

            child._send_segment(SYN | ACK)
            child.seq += 1
            return
        if conn is not None:
            conn.handle(segment, src_ip)

    def _serve_request(self, conn: TCPConnection, data: bytes) -> None:
        """Answer a request with a body.

        Requests of the form ``GET <n>`` receive exactly ``n`` bytes, so
        traffic generators control per-application response sizes; other
        request bytes get the default ``response_size``.
        """
        if conn.state != "ESTABLISHED":
            return
        size = self.response_size
        if data.startswith(b"GET "):
            digits = data[4:].split(b" ", 1)[0].split(b"\r", 1)[0]
            if digits.isdigit():
                size = min(int(digits), 50_000_000)
        conn.send(b"X" * size)

    # -- Authoritative DNS ----------------------------------------------

    def _serve_dns(self, udp: UDP, ip: IPv4) -> None:
        try:
            query = DNSMessage.unpack(udp.pack_payload())
        except PacketError:
            return
        if query.is_response or not query.questions:
            return
        self.dns_queries_served += 1
        question = query.questions[0]
        address = self.zone.get(question.qname) if question.qtype == TYPE_A else None
        if address is not None:
            response = query.respond([DNSRecord.a(question.qname, address)])
        else:
            response = query.respond(rcode=RCODE_NXDOMAIN)
        reply = UDP(sport=PORT_DNS, dport=udp.sport, payload=response.pack())
        self.send_ip(ip.src, 17, reply, src=ip.dst)

    def __repr__(self) -> str:
        return f"InternetCloud(ip={self.ip}, sites={len(self.zone)})"
