"""Ports and links: the physical layer of the simulated home network.

A :class:`Port` belongs to a node (host or switch); a :class:`Link`
connects two ports with latency and bandwidth.  :class:`WirelessLink`
adds the RSSI/retry behaviour the paper's artifact Mode 1 and Mode 3
visualise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from ..core.errors import SimulationError
from ..net.port import Port, ReceiveHandler
from ..net.trace import trace_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import Simulator

__all__ = ["Link", "Port", "ReceiveHandler", "WirelessLink"]

#: Default for per-destination delivery coalescing (DESIGN.md §14): frames
#: arriving at the same port at the same instant share one scheduled flush
#: event.  The golden-trace tests flip this off to prove batched and
#: unbatched delivery produce identical traces.
COALESCE_DELIVERY = True


class _DeliveryBatch:
    """Frames sharing one destination port and arrival time."""

    __slots__ = ("due", "frames")

    def __init__(self, due: float):
        self.due = due
        self.frames: List[bytes] = []


class Link:
    """A full-duplex wired link between two ports.

    Serialisation delay is ``len(frame) / bandwidth`` plus fixed
    ``latency``.  Frames on one direction are delivered in order.
    """

    def __init__(
        self,
        sim: "Simulator",
        a: Port,
        b: Port,
        latency: float = 0.0002,
        bandwidth_bps: float = 1_000_000_000.0,
    ):
        if a.link is not None or b.link is not None:
            raise SimulationError("port already attached to a link")
        if latency < 0 or bandwidth_bps <= 0:
            raise SimulationError("bad link parameters")
        self.sim = sim
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        a.link = self
        b.link = self
        self.frames_carried = 0
        self.bytes_carried = 0
        self.frames_dropped = 0
        self.coalesce = COALESCE_DELIVERY
        self.flushes = 0
        # Track per-direction busy-until time so back-to-back frames queue.
        self._busy_until = {id(a): 0.0, id(b): 0.0}
        # Per-destination open delivery batch (coalescing); keyed by the
        # destination port's id, like _busy_until.
        self._pending: Dict[int, Tuple[Port, _DeliveryBatch]] = {}
        # Optional fault-injection hook (repro.check): when set, every
        # transmission asks the fault for a delivery plan — a sequence of
        # extra-latency offsets.  () drops the frame, (0.0,) is a normal
        # delivery, (0.0, 0.0) duplicates, (delta,) reorders past frames
        # queued behind it.
        self.fault = None

    def peer(self, port: Port) -> Port:
        if port is self.a:
            return self.b
        if port is self.b:
            return self.a
        raise SimulationError("port not on this link")

    def _serialization_delay(self, frame: bytes) -> float:
        return len(frame) * 8.0 / self.bandwidth_bps

    def _delivery_plan(self, frame: bytes):
        """Extra-latency offsets for each copy to deliver (fault hook)."""
        if self.fault is None:
            return (0.0,)
        return self.fault.plan(self.sim, frame)

    def _schedule_delivery(self, destination: Port, arrival: float, frame: bytes) -> None:
        """Deliver ``frame`` to ``destination`` at ``arrival``, coalescing
        identical-arrival frames into one flush event."""
        if not self.coalesce:
            self.sim.schedule_at(arrival, lambda: destination.deliver(frame))
            return
        key = id(destination)
        pending = self._pending.get(key)
        if pending is not None and pending[1].due == arrival:
            pending[1].frames.append(frame)
            return
        batch = _DeliveryBatch(arrival)
        batch.frames.append(frame)
        self._pending[key] = (destination, batch)
        self.sim.schedule_at(arrival, lambda: self._run_flush(key, destination, batch))

    def _run_flush(self, key: int, destination: Port, batch: _DeliveryBatch) -> None:
        pending = self._pending.get(key)
        if pending is not None and pending[1] is batch:
            del self._pending[key]
        self.flushes += 1
        frames = batch.frames
        self.sim.note_coalesced(len(frames) - 1)
        for frame in frames:
            destination.deliver(frame)

    def transmit(self, from_port: Port, frame: bytes) -> None:
        """Schedule delivery of ``frame`` at the far end."""
        destination = self.peer(from_port)
        plan = self._delivery_plan(frame)
        ctx = trace_of(frame)
        if not plan:
            self.frames_dropped += 1
            if ctx is not None:
                # A drop always publishes its lineage (sampling bypassed).
                ctx.finish("link", "drop", decision="drop", cause="link_fault")
            return
        if ctx is not None and ctx.active:
            ctx.hop("link", "deliver", cause=f"wired dst={destination.name}")
        start = max(self.sim.now, self._busy_until[id(from_port)])
        done = start + self._serialization_delay(frame)
        self._busy_until[id(from_port)] = done
        self.frames_carried += 1
        self.bytes_carried += len(frame)
        for extra in plan:
            arrival = done + self.latency + extra
            self._schedule_delivery(destination, arrival, frame)

    def __repr__(self) -> str:
        return f"Link({self.a.name} <-> {self.b.name})"


class WirelessLink(Link):
    """An 802.11-style link with signal-dependent loss and retries.

    Loss probability is derived from the receiver's RSSI (set via
    :meth:`set_rssi`, typically by :class:`~repro.sim.wireless.RadioEnvironment`).
    Each lost transmission is retried up to ``max_retries`` times, and the
    retry count is observable — the artifact's Mode 3 flashes red when the
    retry proportion is high.
    """

    def __init__(
        self,
        sim: "Simulator",
        a: Port,
        b: Port,
        latency: float = 0.002,
        bandwidth_bps: float = 54_000_000.0,
        rssi_dbm: float = -50.0,
        max_retries: int = 7,
    ):
        super().__init__(sim, a, b, latency=latency, bandwidth_bps=bandwidth_bps)
        self.rssi_dbm = rssi_dbm
        self.max_retries = max_retries
        self.retries = 0
        self.transmissions = 0

    def set_rssi(self, rssi_dbm: float) -> None:
        self.rssi_dbm = float(rssi_dbm)

    def loss_probability(self) -> float:
        """Per-attempt loss probability as a function of RSSI.

        Piecewise model: clean above -60 dBm, unusable below -90 dBm,
        linear in between — a standard simplification of 802.11 rate/
        error behaviour.
        """
        if self.rssi_dbm >= -60.0:
            return 0.001
        if self.rssi_dbm <= -90.0:
            return 0.95
        span = (-60.0 - self.rssi_dbm) / 30.0
        return 0.001 + span * (0.95 - 0.001)

    def retry_proportion(self) -> float:
        """Fraction of transmissions that were retries (Mode 3 input)."""
        if self.transmissions == 0:
            return 0.0
        return self.retries / self.transmissions

    def transmit(self, from_port: Port, frame: bytes) -> None:
        destination = self.peer(from_port)
        loss = self.loss_probability()
        attempts = 1
        while attempts <= self.max_retries and self.sim.random.random() < loss:
            attempts += 1
        self.transmissions += attempts
        self.retries += attempts - 1
        ctx = trace_of(frame)
        if attempts > self.max_retries:
            self.frames_dropped += 1
            if ctx is not None:
                ctx.finish(
                    "link",
                    "drop",
                    decision="drop",
                    cause=f"retries_exceeded rssi={self.rssi_dbm:.1f}dBm",
                )
            return
        plan = self._delivery_plan(frame)
        if not plan:
            self.frames_dropped += 1
            if ctx is not None:
                ctx.finish("link", "drop", decision="drop", cause="link_fault")
            return
        if ctx is not None and ctx.active:
            ctx.hop(
                "link",
                "deliver",
                cause=f"wireless rssi={self.rssi_dbm:.1f}dBm retries={attempts - 1}",
            )
        start = max(self.sim.now, self._busy_until[id(from_port)])
        done = start + attempts * self._serialization_delay(frame)
        self._busy_until[id(from_port)] = done
        self.frames_carried += 1
        self.bytes_carried += len(frame)
        for extra in plan:
            arrival = done + self.latency + extra
            self._schedule_delivery(destination, arrival, frame)

    def __repr__(self) -> str:
        return (
            f"WirelessLink({self.a.name} <-> {self.b.name}, "
            f"rssi={self.rssi_dbm:.1f} dBm)"
        )
