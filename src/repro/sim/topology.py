"""Household topology data: device specs and the built-household record.

Declare a household as (name, class, wired/wireless, position) rows.
The composition step that turns these rows into a running router lives
above this layer, in :func:`repro.household.build_household` — ``sim``
never imports the router (repro-lint's ``layering`` rule enforces this).
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from .host import Host
from .simulator import Simulator
from .traffic import TrafficGenerator

if TYPE_CHECKING:  # pragma: no cover - the router lives above this layer
    from ..core.router import HomeworkRouter


class DeviceSpec:
    """One row of the household plan."""

    __slots__ = ("name", "mac", "device_class", "wireless", "position")

    def __init__(
        self,
        name: str,
        mac: str,
        device_class: str = "generic",
        wireless: bool = False,
        position: Optional[Tuple[float, float]] = None,
    ):
        self.name = name
        self.mac = mac
        self.device_class = device_class
        self.wireless = wireless
        self.position = position


#: The four-device household used across the benchmarks and demos.
STANDARD_HOUSEHOLD = [
    DeviceSpec("toms-air", "02:aa:00:00:00:01", "laptop", wireless=True, position=(4, 3)),
    DeviceSpec("living-room-tv", "02:aa:00:00:00:02", "tv"),
    DeviceSpec("workstation", "02:aa:00:00:00:03", "workstation"),
    DeviceSpec("door-sensor", "02:aa:00:00:00:04", "iot", wireless=True, position=(9, 1)),
]


class Household:
    """A built household: router + joined devices + running workloads."""

    def __init__(self, sim: Simulator, router: "HomeworkRouter"):
        self.sim = sim
        self.router = router
        self.hosts: Dict[str, Host] = {}
        self.generators: List[TrafficGenerator] = []

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def stop_traffic(self) -> None:
        for generator in self.generators:
            generator.stop()
