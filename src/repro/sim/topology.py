"""Household topology builder.

A convenience layer for experiments and demos: declare a household as
(name, class, wired/wireless, position) rows and get a fully joined
router with the class-appropriate traffic mix from
:data:`~repro.sim.traffic.DEFAULT_WORKLOADS` already running.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TYPE_CHECKING, Tuple

from .host import Host
from .simulator import Simulator
from .traffic import DEFAULT_WORKLOADS, TrafficGenerator

if TYPE_CHECKING:  # pragma: no cover - avoid the core<->sim import cycle
    from ..core.config import RouterConfig
    from ..core.router import HomeworkRouter


class DeviceSpec:
    """One row of the household plan."""

    __slots__ = ("name", "mac", "device_class", "wireless", "position")

    def __init__(
        self,
        name: str,
        mac: str,
        device_class: str = "generic",
        wireless: bool = False,
        position: Optional[Tuple[float, float]] = None,
    ):
        self.name = name
        self.mac = mac
        self.device_class = device_class
        self.wireless = wireless
        self.position = position


#: The four-device household used across the benchmarks and demos.
STANDARD_HOUSEHOLD = [
    DeviceSpec("toms-air", "02:aa:00:00:00:01", "laptop", wireless=True, position=(4, 3)),
    DeviceSpec("living-room-tv", "02:aa:00:00:00:02", "tv"),
    DeviceSpec("workstation", "02:aa:00:00:00:03", "workstation"),
    DeviceSpec("door-sensor", "02:aa:00:00:00:04", "iot", wireless=True, position=(9, 1)),
]


class Household:
    """A built household: router + joined devices + running workloads."""

    def __init__(self, sim: Simulator, router: "HomeworkRouter"):
        self.sim = sim
        self.router = router
        self.hosts: Dict[str, Host] = {}
        self.generators: List[TrafficGenerator] = []

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def stop_traffic(self) -> None:
        for generator in self.generators:
            generator.stop()


def build_household(
    specs: Sequence[DeviceSpec] = STANDARD_HOUSEHOLD,
    seed: int = 7,
    config: Optional["RouterConfig"] = None,
    join_seconds: float = 5.0,
    start_traffic: bool = True,
) -> Household:
    """Build, join and (optionally) load a household in one call."""
    from ..core.config import RouterConfig
    from ..core.router import HomeworkRouter

    sim = Simulator(seed=seed)
    router = HomeworkRouter(
        sim, config=config or RouterConfig(default_permit=True)
    )
    router.start()
    household = Household(sim, router)
    for spec in specs:
        host = router.add_device(
            spec.name,
            spec.mac,
            wireless=spec.wireless,
            position=spec.position,
            device_class=spec.device_class,
        )
        household.hosts[spec.name] = host
        host.start_dhcp()
    sim.run_for(join_seconds)
    if start_traffic:
        delay = 0.2
        for spec in specs:
            for generator_cls in DEFAULT_WORKLOADS.get(spec.device_class, ()):
                generator = generator_cls(household.hosts[spec.name])
                generator.start(delay)
                household.generators.append(generator)
                delay += 0.3
    return household
