"""Radio environment: positions, path loss and RSSI.

Paper Figure 2 / Mode 1: "Wireless signal strength from the artifact to
the hub is mapped to the number of lit LEDs, allowing the user to carry
the artifact around to expose areas of high or low signal strength in the
home."  That requires a spatial model: devices have (x, y) positions in
the house, and RSSI follows a log-distance path-loss model with
wall attenuation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from .link import WirelessLink

Position = Tuple[float, float]


class PathLossModel:
    """Log-distance path loss: ``PL(d) = PL0 + 10·n·log10(d/d0)``.

    Defaults approximate 2.4 GHz indoors: PL0 = 40 dB at 1 m, exponent
    n = 3.0, plus a per-wall penalty.
    """

    def __init__(
        self,
        tx_power_dbm: float = 20.0,
        pl0_db: float = 40.0,
        exponent: float = 3.0,
        wall_loss_db: float = 5.0,
        reference_m: float = 1.0,
    ):
        self.tx_power_dbm = tx_power_dbm
        self.pl0_db = pl0_db
        self.exponent = exponent
        self.wall_loss_db = wall_loss_db
        self.reference_m = reference_m

    def rssi(self, distance_m: float, walls: int = 0) -> float:
        """Received signal strength in dBm at ``distance_m`` through ``walls``."""
        d = max(distance_m, self.reference_m)
        path_loss = self.pl0_db + 10.0 * self.exponent * math.log10(d / self.reference_m)
        return self.tx_power_dbm - path_loss - walls * self.wall_loss_db


class Wall:
    """A line segment wall between two points, attenuating signals crossing it."""

    def __init__(self, p1: Position, p2: Position):
        self.p1 = p1
        self.p2 = p2

    def crossed_by(self, a: Position, b: Position) -> bool:
        """True when segment a-b intersects this wall segment."""

        def orient(p: Position, q: Position, r: Position) -> float:
            return (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])

        o1 = orient(a, b, self.p1)
        o2 = orient(a, b, self.p2)
        o3 = orient(self.p1, self.p2, a)
        o4 = orient(self.p1, self.p2, b)
        return (o1 * o2 < 0) and (o3 * o4 < 0)


class RadioEnvironment:
    """Tracks node positions and keeps wireless links' RSSI up to date.

    The access point (the Homework router's ``wlan0``) sits at a fixed
    position; stations move via :meth:`move`, and each registered
    :class:`WirelessLink` gets its RSSI recomputed from the geometry.
    """

    def __init__(
        self,
        ap_position: Position = (0.0, 0.0),
        model: Optional[PathLossModel] = None,
        walls: Optional[List[Wall]] = None,
    ):
        self.ap_position = ap_position
        self.model = model or PathLossModel()
        self.walls: List[Wall] = list(walls or [])
        self._positions: Dict[str, Position] = {}
        self._links: Dict[str, WirelessLink] = {}

    def add_wall(self, p1: Position, p2: Position) -> None:
        self.walls.append(Wall(p1, p2))

    def register(self, name: str, link: WirelessLink, position: Position) -> None:
        """Bind a station's wireless link to a position in the house."""
        self._positions[name] = position
        self._links[name] = link
        self._update(name)

    def position_of(self, name: str) -> Position:
        return self._positions[name]

    def walls_between(self, a: Position, b: Position) -> int:
        return sum(1 for wall in self.walls if wall.crossed_by(a, b))

    def rssi_at(self, position: Position) -> float:
        """RSSI from the AP at an arbitrary position (artifact Mode 1)."""
        dx = position[0] - self.ap_position[0]
        dy = position[1] - self.ap_position[1]
        distance = math.hypot(dx, dy)
        walls = self.walls_between(self.ap_position, position)
        return self.model.rssi(distance, walls)

    def move(self, name: str, position: Position) -> float:
        """Move a station; returns its new RSSI."""
        if name not in self._positions:
            raise KeyError(f"unknown station {name!r}")
        self._positions[name] = position
        return self._update(name)

    def _update(self, name: str) -> float:
        rssi = self.rssi_at(self._positions[name])
        self._links[name].set_rssi(rssi)
        return rssi

    def station_rssi(self, name: str) -> float:
        return self._links[name].rssi_dbm

    def stations(self) -> List[str]:
        return sorted(self._positions)
