"""Application traffic generators.

Paper Figure 1 shows "per-device per-protocol bandwidth consumption ...
how their devices and their applications, to the extent permitted by the
imperfect application-protocol mapping, are using the network".  These
generators produce that household mix: web browsing, video streaming,
mail sync, ssh sessions, bulk downloads and IoT telemetry — each with the
port signature the measurement plane's protocol mapping recognises.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Optional

from ..net.addresses import IPv4Address
from ..net.tcp import (
    PORT_HTTP,
    PORT_HTTPS,
    PORT_IMAPS,
    PORT_SSH,
)
from .host import Host, TCPConnection

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import Simulator

logger = logging.getLogger(__name__)


class TrafficGenerator:
    """Base class: a recurring application behaviour on one host."""

    #: TCP destination port this application signature uses.
    port = PORT_HTTP
    #: Site name resolved before each session.
    site = "www.example.org"

    def __init__(self, host: Host, site: Optional[str] = None):
        self.host = host
        self.sim = host.sim
        if site is not None:
            self.site = site
        self.sessions_started = 0
        self.sessions_completed = 0
        self.sessions_failed = 0
        self.bytes_downloaded = 0
        self.bytes_uploaded = 0
        self._running = False
        self._timer = None

    # -- knobs subclasses override --------------------------------------

    def session_interval(self) -> float:
        """Seconds between session starts (jittered by subclasses)."""
        return 10.0

    def request_size(self) -> int:
        return 400

    def response_size(self) -> int:
        return 64_000

    # -- lifecycle -------------------------------------------------------

    def start(self, initial_delay: float = 0.0) -> None:
        self._running = True
        self._timer = self.sim.schedule(initial_delay, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self._running:
            return
        self.run_session()
        self._timer = self.sim.schedule(self.session_interval(), self._tick)

    # -- one application session ------------------------------------------

    def run_session(self) -> None:
        """Resolve the site and run one request/response exchange."""
        self.sessions_started += 1

        def resolved(address: Optional[IPv4Address], _rcode: int) -> None:
            if address is None:
                self.sessions_failed += 1
                return
            self._open(address)

        try:
            self.host.resolve(self.site, resolved)
        except ConnectionError:
            self.sessions_failed += 1

    def _open(self, address: IPv4Address) -> None:
        try:
            conn = self.host.tcp_connect(address, self.port)
        except ConnectionError:
            self.sessions_failed += 1
            return
        request = f"GET {self.response_size()} /{self.site}".encode()
        pad = self.request_size() - len(request)
        if pad > 0:
            request += b" " * pad

        def connected(c: TCPConnection = conn) -> None:
            c.send(request)
            self.bytes_uploaded += len(request)

        expected = self.response_size()
        received = {"n": 0}

        def on_data(data: bytes, c: TCPConnection = conn) -> None:
            received["n"] += len(data)
            self.bytes_downloaded += len(data)
            if received["n"] >= expected:
                self.sessions_completed += 1
                c.close()

        conn.on_connect = connected
        conn.on_data = on_data


class WebBrowsing(TrafficGenerator):
    """Interactive browsing: frequent medium-size page loads over HTTPS."""

    port = PORT_HTTPS
    site = "www.bbc.co.uk"

    def session_interval(self) -> float:
        return self.sim.random.uniform(4.0, 12.0)

    def response_size(self) -> int:
        return self.sim.random.randrange(30_000, 300_000)


class VideoStreaming(TrafficGenerator):
    """Streaming video: steady large chunk fetches (DASH-style)."""

    port = PORT_HTTPS
    site = "www.youtube.com"

    def __init__(self, host: Host, site: Optional[str] = None, bitrate_bps: float = 4_000_000.0):
        super().__init__(host, site)
        self.bitrate_bps = bitrate_bps
        self.chunk_seconds = 2.0

    def session_interval(self) -> float:
        return self.chunk_seconds

    def response_size(self) -> int:
        return int(self.bitrate_bps * self.chunk_seconds / 8)

    def request_size(self) -> int:
        return 200


class MailSync(TrafficGenerator):
    """Periodic IMAP sync: small exchanges on 993."""

    port = PORT_IMAPS
    site = "mail.example.org"

    def session_interval(self) -> float:
        return self.sim.random.uniform(20.0, 40.0)

    def response_size(self) -> int:
        return self.sim.random.randrange(2_000, 20_000)


class SSHSession(TrafficGenerator):
    """Interactive ssh: tiny frequent exchanges on 22."""

    port = PORT_SSH
    site = "homework.example.net"

    def session_interval(self) -> float:
        return self.sim.random.uniform(0.5, 2.0)

    def request_size(self) -> int:
        return 64

    def response_size(self) -> int:
        return self.sim.random.randrange(80, 800)


class BulkDownload(TrafficGenerator):
    """A software update: rare, very large transfer over HTTP."""

    port = PORT_HTTP
    site = "updates.example.io"

    def session_interval(self) -> float:
        return self.sim.random.uniform(120.0, 300.0)

    def response_size(self) -> int:
        return self.sim.random.randrange(5_000_000, 20_000_000)


class IoTTelemetry(TrafficGenerator):
    """An IoT gadget posting tiny UDP datagrams to its cloud."""

    site = "iot.example.io"
    udp_port = 8883

    def run_session(self) -> None:
        self.sessions_started += 1

        def resolved(address: Optional[IPv4Address], _rcode: int) -> None:
            if address is None:
                self.sessions_failed += 1
                return
            payload = b'{"temp": 21.5, "ok": true}'
            try:
                self.host.udp_send(address, self.udp_port, payload)
                self.bytes_uploaded += len(payload)
                self.sessions_completed += 1
            except ConnectionError:
                self.sessions_failed += 1

        try:
            self.host.resolve(self.site, resolved)
        except ConnectionError:
            self.sessions_failed += 1

    def session_interval(self) -> float:
        return self.sim.random.uniform(5.0, 15.0)


#: Mapping used by topology helpers to give each device class a workload.
DEFAULT_WORKLOADS = {
    "laptop": (WebBrowsing, MailSync),
    "phone": (WebBrowsing,),
    "tv": (VideoStreaming,),
    "console": (BulkDownload,),
    "iot": (IoTTelemetry,),
    "workstation": (SSHSession, WebBrowsing),
}
