"""Simulated end hosts (the household's devices).

Each :class:`Host` runs a small but real network stack: a DHCP client
state machine, ARP resolution, UDP sockets, a simplified-but-stateful TCP,
a DNS stub resolver and ICMP echo.  Frames are genuine wire bytes, so the
router's OpenFlow datapath classifies them exactly as it would on the
paper's testbed.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

from ..net.addresses import IPv4Address, IPv4Network, MACAddress
from ..net.arp import ARP
from ..net.dhcp_msg import (
    DHCPACK,
    DHCPMessage,
    DHCPNAK,
    DHCPOFFER,
    OPT_DNS_SERVER,
    OPT_LEASE_TIME,
    OPT_ROUTER,
    OPT_SUBNET_MASK,
)
from ..net.dns_msg import DNSMessage, RCODE_NOERROR, TYPE_A
from ..net.ethernet import ETH_TYPE_ARP, ETH_TYPE_IPV4, Ethernet
from ..net.icmp import ICMP
from ..net.ipv4 import IPv4, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from ..net.packet import PacketError
from ..net.tcp import ACK, FIN, SYN, TCP
from ..net.trace import trace_of, with_trace
from ..net.udp import PORT_DHCP_CLIENT, PORT_DHCP_SERVER, PORT_DNS, UDP
from .link import Port

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import Simulator

logger = logging.getLogger(__name__)

UdpHandler = Callable[[bytes, IPv4Address, int], None]
DnsCallback = Callable[[Optional[IPv4Address], int], None]
PingCallback = Callable[[bool, float], None]

# DHCP client states.
DHCP_INIT = "INIT"
DHCP_SELECTING = "SELECTING"
DHCP_REQUESTING = "REQUESTING"
DHCP_BOUND = "BOUND"
DHCP_RENEWING = "RENEWING"


class TCPConnection:
    """One endpoint of a simplified TCP connection.

    Models the handshake, in-order data transfer and FIN teardown —
    enough to produce realistic five-tuple flows with correct byte
    counts for the measurement plane, without retransmission logic
    (the simulated links deliver in order; wireless loss is absorbed
    by link-level retries).
    """

    def __init__(
        self,
        host: "Host",
        local_port: int,
        remote_ip: IPv4Address,
        remote_port: int,
    ):
        self.host = host
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.local_ip: Optional[IPv4Address] = None  # cloud hosts answer per-IP
        self.state = "CLOSED"
        self.seq = host.sim.random.randrange(1 << 31)
        self.ack = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_connect: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[], None]] = None

    @property
    def key(self) -> Tuple[int, IPv4Address, int]:
        return (self.local_port, self.remote_ip, self.remote_port)

    def connect(self) -> None:
        self.state = "SYN_SENT"
        self._send_segment(SYN)
        self.seq += 1

    def send(self, data: bytes, mss: int = 1400) -> None:
        """Send application data, segmented at ``mss`` bytes."""
        if self.state != "ESTABLISHED":
            raise ConnectionError(f"TCP connection not established: {self.state}")
        for start in range(0, len(data), mss):
            chunk = data[start : start + mss]
            self._send_segment(ACK, chunk)
            self.seq += len(chunk)
            self.bytes_sent += len(chunk)

    def close(self) -> None:
        if self.state in ("ESTABLISHED", "SYN_RECEIVED"):
            self._send_segment(FIN | ACK)
            self.seq += 1
            self.state = "FIN_WAIT"

    def _send_segment(self, flags: int, data: bytes = b"") -> None:
        segment = TCP(
            sport=self.local_port,
            dport=self.remote_port,
            seq=self.seq,
            ack=self.ack,
            flags=flags,
            payload=data,
        )
        self.host.send_ip(self.remote_ip, PROTO_TCP, segment, src=self.local_ip)

    def handle(self, segment: TCP, src_ip: IPv4Address) -> None:
        payload = segment.pack_payload()
        if segment.is_rst:
            self.state = "CLOSED"
            if self.on_close:
                self.on_close()
            return
        if self.state == "SYN_SENT" and segment.is_synack:
            self.ack = segment.seq + 1
            self.state = "ESTABLISHED"
            self._send_segment(ACK)
            if self.on_connect:
                self.on_connect()
            return
        if self.state == "LISTEN_CHILD" and segment.flags & ACK and not payload:
            self.state = "ESTABLISHED"
            if self.on_connect:
                self.on_connect()
            return
        if payload:
            self.ack = segment.seq + len(payload)
            self.bytes_received += len(payload)
            self._send_segment(ACK)
            if self.state == "LISTEN_CHILD":
                self.state = "ESTABLISHED"
                if self.on_connect:
                    self.on_connect()
            if self.on_data:
                self.on_data(payload)
        if segment.is_fin:
            self.ack = segment.seq + len(payload) + 1
            if self.state == "FIN_WAIT":
                self._send_segment(ACK)
                self.state = "CLOSED"
            else:
                self._send_segment(FIN | ACK)
                self.seq += 1
                self.state = "CLOSED"
            if self.on_close:
                self.on_close()


class Host:
    """A device on the home network.

    Created unconfigured; call :meth:`start_dhcp` to acquire a lease from
    the router (the normal path — the paper's DHCP server is the
    gatekeeper for network access), or :meth:`configure_static` in tests.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        mac: Union[str, MACAddress],
        device_class: str = "generic",
    ):
        self.sim = sim
        self.name = name
        self.mac = MACAddress(mac)
        self.device_class = device_class
        self.port = Port(f"{name}.eth0")
        self.port.on_receive(self._on_frame)

        self.ip: Optional[IPv4Address] = None
        self.netmask: Optional[IPv4Address] = None
        self.gateway: Optional[IPv4Address] = None
        self.dns_server: Optional[IPv4Address] = None

        self._arp_table: Dict[IPv4Address, MACAddress] = {}
        self._arp_pending: Dict[IPv4Address, List[IPv4]] = {}
        self._udp_handlers: Dict[int, UdpHandler] = {}
        self._tcp_listeners: Dict[int, Callable[[TCPConnection], None]] = {}
        self._tcp_conns: Dict[Tuple[int, IPv4Address, int], TCPConnection] = {}
        self._next_ephemeral = 49152

        # DHCP client state.
        self.dhcp_state = DHCP_INIT
        self._dhcp_xid = 0
        self._dhcp_server: Optional[IPv4Address] = None
        self._lease_time: float = 0.0
        self._lease_expires_at: float = 0.0
        self._renew_event = None
        self._dhcp_retry_timer = None
        self._dhcp_retry_interval: float = 5.0
        self.dhcp_active = False
        self.on_lease: Optional[Callable[["Host"], None]] = None
        self.dhcp_nak_count = 0
        self.dhcp_offer_count = 0

        # DNS stub resolver state.
        self._dns_pending: Dict[int, Tuple[str, DnsCallback]] = {}
        self._dns_ident = sim.random.randrange(1, 0xFFFF)
        self.dns_cache: Dict[str, IPv4Address] = {}

        # ICMP echo state.
        self._ping_pending: Dict[Tuple[int, int], Tuple[float, PingCallback]] = {}
        self._ping_ident = sim.random.randrange(1, 0xFFFF)
        self._ping_seq = 0

        self.frames_received = 0
        self.frames_sent = 0

        # Packet-lineage flight recorder; the router injects its Tracer
        # when the device attaches (None = tracing off, zero cost).
        self.tracer = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def configure_static(
        self,
        ip: Union[str, IPv4Address],
        netmask: Union[str, IPv4Address] = "255.255.0.0",
        gateway: Optional[Union[str, IPv4Address]] = None,
        dns_server: Optional[Union[str, IPv4Address]] = None,
    ) -> None:
        """Bypass DHCP and set addresses directly (tests and servers)."""
        self.ip = IPv4Address(ip)
        self.netmask = IPv4Address(netmask)
        self.gateway = IPv4Address(gateway) if gateway else None
        self.dns_server = IPv4Address(dns_server) if dns_server else None
        self.dhcp_state = DHCP_BOUND

    @property
    def network(self) -> Optional[IPv4Network]:
        if self.ip is None or self.netmask is None:
            return None
        prefixlen = bin(int(self.netmask)).count("1")
        return IPv4Network((self.ip, prefixlen))

    # ------------------------------------------------------------------
    # Frame TX/RX
    # ------------------------------------------------------------------

    def send_frame(self, frame: Ethernet) -> None:
        self.frames_sent += 1
        raw = frame.pack()
        if self.tracer is not None:
            ctx = self.tracer.begin()
            if ctx is not None:
                raw = with_trace(raw, ctx)
                ctx.hop(
                    "host",
                    "tx",
                    cause=f"device={self.name} ethertype={frame.ethertype:#06x}",
                )
        self.port.send(raw)

    def _on_frame(self, raw: bytes, _port: Port) -> None:
        self.frames_received += 1
        try:
            frame = Ethernet.unpack(raw)
        except PacketError:
            return
        if frame.dst != self.mac and not frame.dst.is_broadcast and not frame.dst.is_multicast:
            return  # not for us (promiscuous mode not modelled)
        ctx = trace_of(raw)
        if ctx is not None:
            # First matching receiver ends the trace (finish is
            # idempotent, so broadcast copies are harmless).
            ctx.finish("host", "rx", decision="delivered", cause=f"device={self.name}")
        if frame.ethertype == ETH_TYPE_ARP:
            arp = frame.find(ARP)
            if arp is not None:
                self._handle_arp(arp)
        elif frame.ethertype == ETH_TYPE_IPV4:
            ip = frame.find(IPv4)
            if ip is not None:
                self._handle_ip(ip)

    # ------------------------------------------------------------------
    # ARP
    # ------------------------------------------------------------------

    def _handle_arp(self, arp: ARP) -> None:
        self._arp_table[arp.sender_ip] = arp.sender_mac
        if (
            arp.opcode == 1
            and self.ip is not None
            and arp.target_ip == self.ip
        ):
            reply = ARP.reply(self.mac, self.ip, arp.sender_mac, arp.sender_ip)
            self.send_frame(
                Ethernet(arp.sender_mac, self.mac, ETH_TYPE_ARP, reply)
            )
        # Encapsulate and flush packets queued behind resolution.
        queued = self._arp_pending.pop(arp.sender_ip, [])
        for packet in queued:
            self.send_frame(
                Ethernet(arp.sender_mac, self.mac, ETH_TYPE_IPV4, packet)
            )

    def _resolve_and_send(self, next_hop: IPv4Address, packet: IPv4) -> None:
        mac = self._arp_table.get(next_hop)
        if mac is not None:
            self.send_frame(Ethernet(mac, self.mac, ETH_TYPE_IPV4, packet))
            return
        pending = self._arp_pending.setdefault(next_hop, [])
        pending.append(packet)
        if len(pending) > 1:
            return  # resolution already in flight
        request = ARP.request(self.mac, self.ip or IPv4Address.any(), next_hop)
        self.send_frame(
            Ethernet(MACAddress.broadcast(), self.mac, ETH_TYPE_ARP, request)
        )

    # ------------------------------------------------------------------
    # IP send/receive
    # ------------------------------------------------------------------

    def send_ip(
        self,
        dst: Union[str, IPv4Address],
        proto: int,
        payload,
        src: Optional[Union[str, IPv4Address]] = None,
    ) -> None:
        """Route an IP packet: on-link destinations direct, else gateway.

        Under the paper's isolating /30 allocation nothing is on-link
        except the router, so all traffic goes through the gateway — the
        property the Homework DHCP server engineers deliberately.  ``src``
        overrides the source address (used by the simulated Internet cloud
        which answers for many addresses).
        """
        if self.ip is None and src is None:
            raise ConnectionError(f"host {self.name} has no address yet")
        dst = IPv4Address(dst)
        source = IPv4Address(src) if src is not None else self.ip
        packet = IPv4(src=source, dst=dst, proto=proto, payload=payload)
        network = self.network
        if network is not None and dst in network:
            next_hop = dst
        elif self.gateway is not None:
            next_hop = self.gateway
        else:
            raise ConnectionError(f"host {self.name} has no route to {dst}")
        self._resolve_and_send(next_hop, packet)

    def _handle_ip(self, ip: IPv4) -> None:
        if (
            self.ip is not None
            and ip.dst != self.ip
            and not ip.dst.is_broadcast
            and ip.dst != IPv4Address("255.255.255.255")
        ):
            return
        if ip.proto == PROTO_UDP:
            udp = ip.find(UDP)
            if udp is not None:
                self._handle_udp(udp, ip.src)
        elif self.ip is None:
            # No address (lease lost mid-conversation): TCP and ICMP both
            # answer with transmissions we cannot source.  A real stack
            # drops late segments for a deconfigured interface; only UDP
            # stays open above, since DHCP rides it to get us an address.
            return
        elif ip.proto == PROTO_TCP:
            tcp = ip.find(TCP)
            if tcp is not None:
                self._handle_tcp(tcp, ip.src)
        elif ip.proto == PROTO_ICMP:
            icmp = ip.find(ICMP)
            if icmp is not None:
                self._handle_icmp(icmp, ip.src)

    # ------------------------------------------------------------------
    # UDP
    # ------------------------------------------------------------------

    def udp_bind(self, port: int, handler: UdpHandler) -> None:
        """Register a handler for datagrams to local ``port``."""
        self._udp_handlers[port] = handler

    def udp_unbind(self, port: int) -> None:
        self._udp_handlers.pop(port, None)

    def udp_send(
        self, dst: Union[str, IPv4Address], dport: int, data: bytes, sport: int = 0
    ) -> int:
        """Send a datagram; returns the source port used."""
        if sport == 0:
            sport = self._ephemeral_port()
        self.send_ip(dst, PROTO_UDP, UDP(sport=sport, dport=dport, payload=data))
        return sport

    def _handle_udp(self, udp: UDP, src_ip: IPv4Address) -> None:
        if udp.dport == PORT_DHCP_CLIENT:
            msg = udp.find(DHCPMessage) if hasattr(udp.payload, "pack") else None
            if msg is None:
                try:
                    msg = DHCPMessage.unpack(udp.pack_payload())
                except PacketError:
                    return
            self._handle_dhcp(msg)
            return
        handler = self._udp_handlers.get(udp.dport)
        if handler is not None:
            handler(udp.pack_payload(), src_ip, udp.sport)

    def _ephemeral_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > 65535:
            self._next_ephemeral = 49152
        return port

    # ------------------------------------------------------------------
    # DHCP client
    # ------------------------------------------------------------------

    def start_dhcp(self, retry_interval: float = 5.0) -> None:
        """Begin address acquisition (DISCOVER broadcast).

        Retries DISCOVER every ``retry_interval`` seconds until bound —
        the behaviour the paper's control UI relies on: a pending device
        keeps knocking until the user permits it.
        """
        self.dhcp_active = True
        self._dhcp_retry_interval = retry_interval
        self.dhcp_state = DHCP_SELECTING
        self._dhcp_xid = self.sim.random.randrange(1, 0xFFFFFFFF)
        discover = DHCPMessage.discover(self.mac, self._dhcp_xid, hostname=self.name)
        self._broadcast_dhcp(discover)
        if self._dhcp_retry_timer is not None:
            self._dhcp_retry_timer.cancel()
            self._dhcp_retry_timer = None
        if retry_interval > 0:
            self._dhcp_retry_timer = self.sim.schedule(
                retry_interval, lambda: self._dhcp_retry(retry_interval)
            )

    def _dhcp_retry(self, retry_interval: float) -> None:
        if self.dhcp_state in (DHCP_SELECTING, DHCP_REQUESTING, DHCP_INIT):
            self.start_dhcp(retry_interval)

    def _broadcast_dhcp(self, msg: DHCPMessage) -> None:
        udp = UDP(sport=PORT_DHCP_CLIENT, dport=PORT_DHCP_SERVER, payload=msg)
        packet = IPv4(
            src=self.ip or IPv4Address.any(),
            dst=IPv4Address.broadcast(),
            proto=PROTO_UDP,
            payload=udp,
        )
        self.send_frame(
            Ethernet(MACAddress.broadcast(), self.mac, ETH_TYPE_IPV4, packet)
        )

    def _handle_dhcp(self, msg: DHCPMessage) -> None:
        if msg.xid != self._dhcp_xid or msg.chaddr != self.mac:
            return
        mtype = msg.message_type
        if mtype == DHCPOFFER and self.dhcp_state == DHCP_SELECTING:
            self.dhcp_offer_count += 1
            self._dhcp_server = msg.server_id
            self.dhcp_state = DHCP_REQUESTING
            request = DHCPMessage.request(
                self.mac,
                self._dhcp_xid,
                requested_ip=msg.yiaddr,
                server_id=msg.server_id or IPv4Address.any(),
                hostname=self.name,
            )
            self._broadcast_dhcp(request)
        elif mtype == DHCPACK and self.dhcp_state in (DHCP_REQUESTING, DHCP_RENEWING):
            self.ip = msg.yiaddr
            mask = msg.options.get(OPT_SUBNET_MASK)
            self.netmask = IPv4Address(mask) if mask else IPv4Address("255.255.255.0")
            router = msg.options.get(OPT_ROUTER)
            self.gateway = IPv4Address(router[:4]) if router else None
            dns = msg.options.get(OPT_DNS_SERVER)
            self.dns_server = IPv4Address(dns[:4]) if dns else None
            lease = msg.options.get(OPT_LEASE_TIME)
            self._lease_time = float(int.from_bytes(lease, "big")) if lease else 3600.0
            self._lease_expires_at = self.sim.now + self._lease_time
            self.dhcp_state = DHCP_BOUND
            self._schedule_renewal()
            if self.on_lease:
                self.on_lease(self)
        elif mtype == DHCPNAK:
            self.dhcp_nak_count += 1
            self.ip = None
            self.dhcp_state = DHCP_INIT
            if self._renew_event is not None:
                self._renew_event.cancel()
                self._renew_event = None
            # Re-enter discovery: a NAK while bound/renewing must not
            # strand the client with no pending timer (the old retry
            # chain died the moment we first bound).
            if self._dhcp_retry_interval > 0:
                self.start_dhcp(self._dhcp_retry_interval)

    def _schedule_renewal(self) -> None:
        if self._renew_event is not None:
            self._renew_event.cancel()
        # T1: renew at half the lease time, per RFC 2131.
        self._renew_event = self.sim.schedule(self._lease_time / 2, self._renew)

    def _renew(self) -> None:
        if self.dhcp_state not in (DHCP_BOUND, DHCP_RENEWING) or self.ip is None:
            return
        if self.sim.now >= self._lease_expires_at:
            # Every renewal attempt went unanswered and the lease has
            # now lapsed: fall back to a fresh DISCOVER cycle.
            self.ip = None
            self.dhcp_state = DHCP_INIT
            if self._dhcp_retry_interval > 0:
                self.start_dhcp(self._dhcp_retry_interval)
            return
        self.dhcp_state = DHCP_RENEWING
        request = DHCPMessage.request(
            self.mac,
            self._dhcp_xid,
            requested_ip=self.ip,
            server_id=self._dhcp_server or IPv4Address.any(),
            hostname=self.name,
        )
        self._broadcast_dhcp(request)
        # A lost REQUEST must not strand us in RENEWING: retry at half
        # the remaining lease time (RFC 2131's T1/T2 backoff, squashed).
        delay = max((self._lease_expires_at - self.sim.now) / 2, 1.0)
        if self._renew_event is not None:
            self._renew_event.cancel()
        self._renew_event = self.sim.schedule(delay, self._renew)

    def release_dhcp(self) -> None:
        """Send DHCPRELEASE and forget the address."""
        self.dhcp_active = False
        if self.ip is None or self._dhcp_server is None:
            return
        release = DHCPMessage.release(
            self.mac, self._dhcp_xid, ciaddr=self.ip, server_id=self._dhcp_server
        )
        self._broadcast_dhcp(release)
        self.ip = None
        self.dhcp_state = DHCP_INIT
        if self._renew_event is not None:
            self._renew_event.cancel()
            self._renew_event = None
        if self._dhcp_retry_timer is not None:
            self._dhcp_retry_timer.cancel()
            self._dhcp_retry_timer = None

    def dhcp_timer_pending(self, now: float) -> bool:
        """True if a future DHCP wakeup (retry or renewal) is scheduled.

        The liveness property the fuzzer checks: an active client that is
        not parked by choice always has some timer that will eventually
        fire, so it can never be stranded by a single lost packet.
        """
        for event in (self._dhcp_retry_timer, self._renew_event):
            if event is not None and not event.cancelled and event.when > now:
                return True
        return False

    # ------------------------------------------------------------------
    # DNS stub resolver
    # ------------------------------------------------------------------

    def resolve(self, name: str, callback: DnsCallback) -> None:
        """Resolve ``name`` to an A record via the configured DNS server.

        ``callback(address, rcode)`` fires when the response arrives;
        ``address`` is None on failure (e.g. the proxy blocked the name).
        """
        name = name.rstrip(".").lower()
        cached = self.dns_cache.get(name)
        if cached is not None:
            self.sim.schedule(0.0, lambda: callback(cached, RCODE_NOERROR))
            return
        if self.dns_server is None:
            raise ConnectionError(f"host {self.name} has no DNS server")
        self._dns_ident = (self._dns_ident + 1) & 0xFFFF or 1
        ident = self._dns_ident
        query = DNSMessage.query(name, TYPE_A, ident=ident)
        sport = self._ephemeral_port()
        self._dns_pending[ident] = (name, callback)
        self.udp_bind(sport, self._on_dns_response)
        self.udp_send(self.dns_server, PORT_DNS, query.pack(), sport=sport)

    def _on_dns_response(self, data: bytes, _src: IPv4Address, _sport: int) -> None:
        try:
            msg = DNSMessage.unpack(data)
        except PacketError:
            return
        pending = self._dns_pending.pop(msg.ident, None)
        if pending is None:
            return
        name, callback = pending
        a_records = msg.a_records()
        if msg.rcode == RCODE_NOERROR and a_records:
            address = a_records[0].address
            if address is not None:
                self.dns_cache[name] = address
            callback(address, msg.rcode)
        else:
            callback(None, msg.rcode)

    # ------------------------------------------------------------------
    # TCP
    # ------------------------------------------------------------------

    def tcp_listen(self, port: int, on_accept: Callable[[TCPConnection], None]) -> None:
        """Accept incoming connections on ``port``."""
        self._tcp_listeners[port] = on_accept

    def tcp_connect(
        self, remote_ip: Union[str, IPv4Address], remote_port: int
    ) -> TCPConnection:
        """Open a connection; returns it in SYN_SENT state."""
        conn = TCPConnection(
            self, self._ephemeral_port(), IPv4Address(remote_ip), remote_port
        )
        self._tcp_conns[conn.key] = conn
        conn.connect()
        return conn

    def _handle_tcp(self, segment: TCP, src_ip: IPv4Address) -> None:
        key = (segment.dport, src_ip, segment.sport)
        conn = self._tcp_conns.get(key)
        if conn is not None:
            conn.handle(segment, src_ip)
            return
        if segment.is_syn and segment.dport in self._tcp_listeners:
            child = TCPConnection(self, segment.dport, src_ip, segment.sport)
            child.state = "LISTEN_CHILD"
            child.ack = segment.seq + 1
            self._tcp_conns[child.key] = child
            self._tcp_listeners[segment.dport](child)
            child._send_segment(SYN | ACK)
            child.seq += 1
            return
        # No listener: refuse with RST, as a real stack would.
        if not segment.is_rst:
            rst = TCP(
                sport=segment.dport,
                dport=segment.sport,
                seq=segment.ack,
                flags=0x04 | ACK,
                ack=segment.seq + 1,
            )
            try:
                self.send_ip(src_ip, PROTO_TCP, rst)
            except ConnectionError:
                pass

    # ------------------------------------------------------------------
    # ICMP echo
    # ------------------------------------------------------------------

    def ping(self, dst: Union[str, IPv4Address], callback: PingCallback) -> None:
        """Send an echo request; ``callback(success, rtt)`` on reply."""
        self._ping_seq += 1
        key = (self._ping_ident, self._ping_seq)
        self._ping_pending[key] = (self.sim.now, callback)
        echo = ICMP.echo_request(self._ping_ident, self._ping_seq, b"homework")
        self.send_ip(dst, PROTO_ICMP, echo)

    def _handle_icmp(self, icmp: ICMP, src_ip: IPv4Address) -> None:
        if icmp.is_echo_request:
            reply = ICMP.echo_reply(icmp.ident, icmp.seq, icmp.pack_payload())
            self.send_ip(src_ip, PROTO_ICMP, reply)
        elif icmp.is_echo_reply:
            key = (icmp.ident, icmp.seq)
            pending = self._ping_pending.pop(key, None)
            if pending is not None:
                sent_at, callback = pending
                callback(True, self.sim.now - sent_at)

    def __repr__(self) -> str:
        return f"Host({self.name!r}, mac={self.mac}, ip={self.ip})"
