"""Discrete-event home-network simulator: the testbed substitute."""

from .host import Host, TCPConnection
from .link import Link, Port, WirelessLink
from .simulator import ScheduledEvent, Simulator
from .traffic import (
    BulkDownload,
    DEFAULT_WORKLOADS,
    IoTTelemetry,
    MailSync,
    SSHSession,
    TrafficGenerator,
    VideoStreaming,
    WebBrowsing,
)
from .topology import DeviceSpec, Household, STANDARD_HOUSEHOLD
from .upstream import DEFAULT_ZONE, InternetCloud
from .wireless import PathLossModel, RadioEnvironment, Wall

__all__ = [
    "Host",
    "TCPConnection",
    "Link",
    "Port",
    "WirelessLink",
    "ScheduledEvent",
    "Simulator",
    "TrafficGenerator",
    "WebBrowsing",
    "VideoStreaming",
    "MailSync",
    "SSHSession",
    "BulkDownload",
    "IoTTelemetry",
    "DEFAULT_WORKLOADS",
    "InternetCloud",
    "DEFAULT_ZONE",
    "DeviceSpec",
    "Household",
    "STANDARD_HOUSEHOLD",
    "PathLossModel",
    "RadioEnvironment",
    "Wall",
]
