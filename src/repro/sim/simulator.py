"""Discrete-event simulation engine.

The reproduction substitutes the paper's physical testbed (a small
form-factor PC bridging the home's wired and wireless segments) with a
deterministic discrete-event simulator.  Every component — links, host
stacks, the OpenFlow datapath, DHCP lease timers, hwdb collectors, the
artifact's animation — schedules work on this engine and reads time from
its :class:`~repro.core.clock.SimulatedClock`.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, List, Optional, Tuple

from ..core.clock import SimulatedClock
from ..core.errors import SimulationError
from ..core.events import EventBus

Action = Callable[[], Any]

#: Default for :class:`Simulator`'s same-timestamp run draining.  The
#: golden-trace determinism tests flip this off to prove batched and
#: unbatched dispatch produce byte-identical event traces.
BATCH_DISPATCH = True


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("when", "seq", "action", "cancelled", "periodic", "interval", "owner")

    def __init__(
        self,
        when: float,
        seq: int,
        action: Action,
        periodic: bool = False,
        interval: float = 0.0,
        owner: Optional["Simulator"] = None,
    ):
        self.when = when
        self.seq = seq
        self.action = action
        self.cancelled = False
        self.periodic = periodic
        self.interval = interval
        self.owner = owner

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            if self.owner is not None:
                self.owner._note_cancelled()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class Simulator:
    """A deterministic event-driven simulator.

    Callbacks fire in timestamp order; ties break in scheduling order, so
    runs are reproducible given the same seed.  The simulator owns the
    :class:`SimulatedClock` and an :class:`EventBus` shared by all
    simulated components.
    """

    #: Compaction threshold: rebuild the heap once more than half of it
    #: is lazily-deleted (cancelled) entries.  Small heaps are left alone
    #: — rebuilding 30 entries costs more bookkeeping than it saves.
    COMPACT_MIN_SIZE = 64

    def __init__(self, seed: int = 0, start_time: float = 0.0):
        self.clock = SimulatedClock(start_time)
        self.bus = EventBus()
        self.random = random.Random(seed)
        self._queue: List[ScheduledEvent] = []
        self._seq = itertools.count()
        self._running = False
        self.events_executed = 0
        self._cancelled_in_queue = 0
        self.compactions = 0
        self.batch_dispatch = BATCH_DISPATCH

    @property
    def now(self) -> float:
        return self.clock.now()

    def schedule(self, delay: float, action: Action) -> ScheduledEvent:
        """Run ``action`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        event = ScheduledEvent(self.now + delay, next(self._seq), action, owner=self)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, when: float, action: Action) -> ScheduledEvent:
        """Run ``action`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self.now}")
        event = ScheduledEvent(when, next(self._seq), action, owner=self)
        heapq.heappush(self._queue, event)
        return event

    def schedule_periodic(
        self, interval: float, action: Action, first_delay: Optional[float] = None
    ) -> ScheduledEvent:
        """Run ``action`` every ``interval`` seconds until cancelled.

        Returns the handle for the *series*; cancelling it stops future
        firings.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive: {interval}")
        delay = interval if first_delay is None else first_delay
        event = ScheduledEvent(
            self.now + delay,
            next(self._seq),
            action,
            periodic=True,
            interval=interval,
            owner=self,
        )
        heapq.heappush(self._queue, event)
        return event

    def _note_cancelled(self) -> None:
        """A handle we issued was cancelled; compact once garbage dominates.

        Cancelled entries stay in the heap (lazy deletion) until either a
        pop skips them or this threshold rebuild drops them wholesale —
        without it, long runs that cancel many timers (DHCP renewals, NAT
        sweeps, fault windows) bloat the heap and slow every push/pop.
        """
        self._cancelled_in_queue += 1
        if (
            len(self._queue) >= self.COMPACT_MIN_SIZE
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Heap order among live events is fully determined by
        ``(when, seq)``, so dropping garbage never changes which event
        runs next — determinism is unaffected.  The rebuild is in place:
        the batched dispatch loop holds a reference to the queue list
        across callbacks, and a cancel inside a callback can land here.
        """
        self._queue[:] = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0
        self.compactions += 1

    def _pop_due(self, horizon: float) -> Optional[ScheduledEvent]:
        while self._queue:
            head = self._queue[0]
            if head.when > horizon:
                return None
            heapq.heappop(self._queue)
            if head.cancelled:
                if self._cancelled_in_queue > 0:
                    self._cancelled_in_queue -= 1
                continue
            return head
        return None

    def _execute(self, event: ScheduledEvent) -> None:
        self.clock.advance_to(event.when)
        self.events_executed += 1
        event.action()
        if event.periodic and not event.cancelled:
            event.when += event.interval
            event.seq = next(self._seq)
            heapq.heappush(self._queue, event)

    def note_coalesced(self, extra: int) -> None:
        """Account for callbacks delivered inside one batched event.

        A :class:`~repro.sim.link.Link` or secure-channel flush that
        delivers ``k`` coalesced messages from a single scheduled event
        reports ``k - 1`` here, so ``events_executed`` — part of the
        fuzzer's determinism digest — counts delivered callbacks
        identically whether dispatch is batched or not.
        """
        if extra > 0:
            self.events_executed += extra

    def run_until(self, when: float) -> int:
        """Execute events up to and including time ``when``.

        The clock always lands on ``when`` afterwards (even if the queue
        drains early).  Returns the number of events executed.

        With ``batch_dispatch`` on (the default), all events sharing a
        timestamp are popped as one *run* and dispatched in a tight
        loop: one clock advance and one heap-head inspection per run
        instead of per event.  Order is unchanged — runs pop in
        ``(when, seq)`` order, callbacks scheduling into the current
        timestamp get fresh (larger) seqs and are drained as a
        follow-up run before time moves on.
        """
        if when < self.now:
            raise SimulationError(f"cannot run backwards to {when}")
        executed = 0
        if not self.batch_dispatch:
            while True:
                event = self._pop_due(when)
                if event is None:
                    break
                self._execute(event)
                executed += 1
            self.clock.advance_to(when)
            return executed
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        while queue:
            head = queue[0]
            if head.when > when:
                break
            run_at = head.when
            run: List[ScheduledEvent] = [pop(queue)]
            while queue and queue[0].when == run_at:
                run.append(pop(queue))
            self.clock.advance_to(run_at)
            position = 0
            try:
                while position < len(run):
                    event = run[position]
                    position += 1
                    if event.cancelled:
                        if self._cancelled_in_queue > 0:
                            self._cancelled_in_queue -= 1
                        continue
                    self.events_executed += 1
                    event.action()
                    if event.periodic and not event.cancelled:
                        event.when += event.interval
                        event.seq = next(self._seq)
                        push(queue, event)
                    executed += 1
            except BaseException:
                # A callback blew up mid-run: restore the unexecuted
                # tail (seqs unchanged, so heap order is preserved) and
                # let the caller see exactly the unbatched behaviour.
                for leftover in run[position:]:
                    push(queue, leftover)
                raise
        self.clock.advance_to(when)
        return executed

    def run_for(self, duration: float) -> int:
        """Execute events for the next ``duration`` seconds."""
        return self.run_until(self.now + duration)

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the whole queue (one-shot events), up to ``max_events``."""
        executed = 0
        while self._queue and executed < max_events:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                if self._cancelled_in_queue > 0:
                    self._cancelled_in_queue -= 1
                continue
            if event.periodic:
                # Draining with periodic events would never terminate;
                # re-queue and stop at this timestamp instead.
                heapq.heappush(self._queue, event)
                break
            self._execute(event)
            executed += 1
        return executed

    def pending(self) -> int:
        """Number of scheduled, uncancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)
