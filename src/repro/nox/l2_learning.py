"""Reference L2-learning switch component (NOX's classic ``pyswitch``).

Not used on the Homework router itself — its switching component routes
through the controller deliberately — but included as the baseline NOX
application for the flow-setup benchmarks (experiment T2) and as the
canonical example of the component API.
"""

from __future__ import annotations

import logging
from typing import Dict

from ..net.addresses import MACAddress
from ..openflow.actions import flood, output
from ..openflow.match import FlowKey, Match, extract_key
from ..openflow.messages import NO_BUFFER, PacketIn
from .component import CONTINUE, Component, STOP
from .controller import EV_PACKET_IN

logger = logging.getLogger(__name__)


class L2LearningSwitch(Component):
    """Learn source MACs; install exact flows toward known destinations."""

    name = "l2_learning"

    def __init__(self, controller, idle_timeout: float = 5.0, install_flows: bool = True):
        super().__init__(controller)
        self.idle_timeout = idle_timeout
        self.install_flows = install_flows
        self.mac_to_port: Dict[MACAddress, int] = {}
        self.floods = 0
        self.installs = 0

    def install(self) -> None:
        self.register_handler(EV_PACKET_IN, self.handle_packet_in, priority=200)

    def handle_packet_in(self, msg: PacketIn) -> int:
        key = extract_key(msg.data, msg.in_port)
        if key is None:
            return CONTINUE
        # Learn the sender's port.
        self.mac_to_port[key.dl_src] = msg.in_port

        if key.dl_dst.is_broadcast or key.dl_dst.is_multicast:
            self._flood(msg)
            return STOP

        out_port = self.mac_to_port.get(key.dl_dst)
        if out_port is None:
            self._flood(msg)
            return STOP

        if self.install_flows:
            self.installs += 1
            self.controller.install_flow(
                Match.from_key(key),
                output(out_port),
                idle_timeout=self.idle_timeout,
                buffer_id=msg.buffer_id,
            )
            if msg.buffer_id == NO_BUFFER:
                self.controller.send_packet(
                    msg.data, output(out_port), in_port=msg.in_port
                )
        else:
            self.controller.send_packet(
                b"" if msg.buffer_id != NO_BUFFER else msg.data,
                output(out_port),
                in_port=msg.in_port,
                buffer_id=msg.buffer_id,
            )
        return STOP

    def _flood(self, msg: PacketIn) -> None:
        self.floods += 1
        self.controller.send_packet(
            b"" if msg.buffer_id != NO_BUFFER else msg.data,
            flood(),
            in_port=msg.in_port,
            buffer_id=msg.buffer_id,
        )
