"""NOX-like OpenFlow controller: event chains and the component model."""

from .component import CONTINUE, Component, STOP
from .controller import (
    Controller,
    EV_DATAPATH_JOIN,
    EV_DATAPATH_LEAVE,
    EV_ERROR,
    EV_FLOW_REMOVED,
    EV_PACKET_IN,
    EV_PORT_STATUS,
    EV_STATS_REPLY,
)
from .l2_learning import L2LearningSwitch

__all__ = [
    "CONTINUE",
    "STOP",
    "Component",
    "Controller",
    "EV_DATAPATH_JOIN",
    "EV_DATAPATH_LEAVE",
    "EV_PACKET_IN",
    "EV_FLOW_REMOVED",
    "EV_PORT_STATUS",
    "EV_STATS_REPLY",
    "EV_ERROR",
    "L2LearningSwitch",
]
