"""NOX component model.

NOX structures controller logic as *components* that register handlers
for controller events (packet-in, flow-removed, datapath-join...).  The
paper's DHCP server, DNS proxy and control API are all NOX components;
they subclass :class:`Component` here.

Handlers return :data:`CONTINUE` to pass the event to lower-priority
handlers or :data:`STOP` to consume it — NOX's event chain semantics,
which the Homework modules rely on (e.g. the DHCP component consumes
DHCP packet-ins so the switching component never sees them).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .controller import Controller

# Handler chain verdicts.
CONTINUE = 0
STOP = 1


class Component:
    """Base class for controller applications.

    Lifecycle: construct with the owning controller, then
    :meth:`install` registers event handlers; :meth:`uninstall` removes
    them.  Subclasses override :meth:`install` and call
    ``self.register_handler(...)``.
    """

    #: Short name used in logs and the component registry.
    name = "component"

    def __init__(self, controller: "Controller"):
        self.controller = controller
        self._registrations = []
        self.installed = False

    def install(self) -> None:
        """Register handlers; called once when the component loads."""

    def uninstall(self) -> None:
        """Remove this component's handlers."""
        for registration in self._registrations:
            registration.cancel()
        self._registrations = []
        self.installed = False

    def register_handler(self, event_name: str, handler, priority: int = 100) -> None:
        """Register ``handler`` for ``event_name`` at ``priority``.

        Lower numbers run first (NOX convention); the paper's service
        components run before the switching component.
        """
        registration = self.controller.register_handler(
            event_name, handler, priority, owner=self.name
        )
        self._registrations.append(registration)

    # Convenience accessors.

    @property
    def sim(self):
        return self.controller.sim

    @property
    def now(self) -> float:
        return self.controller.sim.now

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
