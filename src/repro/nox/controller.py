"""The NOX controller core.

Receives OpenFlow messages from the secure channel, converts them into
controller events (``packet_in``, ``flow_removed``, ``datapath_join``,
``stats_reply``...), and dispatches them through a priority-ordered
handler chain to the installed components.  Also provides the send-side
API components use: flow-mod installation, packet-out, stats requests.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Type

from ..core.errors import ControllerError
from ..net.trace import trace_of
from ..openflow.actions import ActionList
from ..openflow.channel import SecureChannel
from ..openflow.flow_table import DEFAULT_PRIORITY
from ..openflow.match import Match
from ..openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    Hello,
    NO_BUFFER,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    PortStatus,
    StatsReply,
    StatsRequest,
)
from .component import CONTINUE, Component, STOP

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import Simulator

logger = logging.getLogger(__name__)

# Event names components can register for.
EV_DATAPATH_JOIN = "datapath_join"
EV_DATAPATH_LEAVE = "datapath_leave"
EV_PACKET_IN = "packet_in"
EV_FLOW_REMOVED = "flow_removed"
EV_PORT_STATUS = "port_status"
EV_STATS_REPLY = "stats_reply"
EV_ERROR = "error"


class _Registration:
    __slots__ = ("chain", "priority", "handler", "owner", "active", "seq")

    def __init__(self, chain: List, priority: int, handler, owner: str, seq: int):
        self.chain = chain
        self.priority = priority
        self.handler = handler
        self.owner = owner
        self.active = True
        self.seq = seq

    def cancel(self) -> None:
        if self.active:
            self.chain.remove(self)
            self.active = False


class Controller:
    """A NOX-like controller bound to one datapath's secure channel.

    (The home router has exactly one datapath; multi-switch NOX features
    like topology discovery are out of the paper's scope.)
    """

    def __init__(self, sim: "Simulator", registry=None):
        self.sim = sim
        self.channel: Optional[SecureChannel] = None
        self.datapath_id: Optional[int] = None
        self.ports: Dict[int, str] = {}
        self._chains: Dict[str, List[_Registration]] = {}
        self._components: Dict[str, Component] = {}
        self._seq = 0
        self._pending_stats: Dict[int, Callable[[StatsReply], None]] = {}
        self._pending_echoes: Dict[int, bytes] = {}
        self._pending_barriers: Dict[int, Callable[[], None]] = {}

        self.packet_ins_handled = 0
        self.flow_mods_sent = 0
        self.packet_outs_sent = 0

        self.registry = registry
        if registry is None:
            self._m_packet_ins = None
            self._m_flow_mods = None
            self._m_packet_outs = None
            self._m_handle_lat = None
            self._m_handler_errors = None
        else:
            self._m_packet_ins = registry.counter("openflow.packet_in_total")
            self._m_flow_mods = registry.counter("openflow.flow_mod_total")
            self._m_packet_outs = registry.counter("openflow.packet_out_total")
            self._m_handle_lat = registry.histogram("openflow.packet_in_handle_seconds")
            self._m_handler_errors = registry.counter("openflow.handler_error_total")

    # ------------------------------------------------------------------
    # Component management
    # ------------------------------------------------------------------

    def add_component(self, component_cls: Type[Component], **kwargs) -> Component:
        """Instantiate, register and install a component."""
        component = component_cls(self, **kwargs)
        if component.name in self._components:
            raise ControllerError(f"component {component.name!r} already loaded")
        self._components[component.name] = component
        component.install()
        component.installed = True
        return component

    def component(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise ControllerError(f"no component named {name!r}") from None

    def remove_component(self, name: str) -> None:
        component = self._components.pop(name, None)
        if component is not None:
            component.uninstall()

    def components(self) -> List[str]:
        return list(self._components)

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------

    def register_handler(
        self, event_name: str, handler, priority: int = 100, owner: str = "?"
    ) -> _Registration:
        chain = self._chains.setdefault(event_name, [])
        self._seq += 1
        registration = _Registration(chain, priority, handler, owner, self._seq)
        chain.append(registration)
        chain.sort(key=lambda r: (r.priority, r.seq))
        return registration

    def dispatch(self, event_name: str, *args) -> None:
        """Run the handler chain; a STOP verdict consumes the event."""
        for registration in list(self._chains.get(event_name, ())):
            if not registration.active:
                continue
            try:
                verdict = registration.handler(*args)
            except Exception:  # noqa: BLE001 - a broken component must not kill NOX
                logger.exception(
                    "component %s handler for %s raised", registration.owner, event_name
                )
                if self._m_handler_errors is not None:
                    self._m_handler_errors.inc()
                continue
            if verdict == STOP:
                return

    # ------------------------------------------------------------------
    # Secure channel plumbing
    # ------------------------------------------------------------------

    def connect(self, channel: SecureChannel) -> None:
        """Attach to a datapath's channel and begin the handshake."""
        self.channel = channel
        self.send(FeaturesRequest())

    # SimulationError out of the reply sends is unreachable: the channel
    # latency it would come from is validated in SecureChannel.__init__.
    def receive(self, msg: OpenFlowMessage) -> None:  # repro: ignore[deep-except-escape]
        """Entry point for switch→controller messages."""
        if isinstance(msg, Hello):
            return
        if isinstance(msg, EchoRequest):
            self.send(EchoReply(msg.data, xid=msg.xid))
        elif isinstance(msg, EchoReply):
            self._pending_echoes.pop(msg.xid, None)
        elif isinstance(msg, BarrierReply):
            callback = self._pending_barriers.pop(msg.xid, None)
            if callback is not None:
                callback()
        elif isinstance(msg, FeaturesReply):
            self.datapath_id = msg.datapath_id
            self.ports = {p.number: p.name for p in msg.ports}
            self.dispatch(EV_DATAPATH_JOIN, msg)
        elif isinstance(msg, PacketIn):
            self.packet_ins_handled += 1
            ctx = trace_of(msg.data)
            if ctx is not None:
                ctx.hop(
                    "controller",
                    "packet_in",
                    cause=f"in_port={msg.in_port} reason={msg.reason}",
                )
            if self._m_packet_ins is not None:
                self._m_packet_ins.inc()
                with self.registry.span("openflow.packet_in") as span:
                    self.dispatch(EV_PACKET_IN, msg)
                self._m_handle_lat.observe(span.duration)
            else:
                self.dispatch(EV_PACKET_IN, msg)
        elif isinstance(msg, FlowRemoved):
            self.dispatch(EV_FLOW_REMOVED, msg)
        elif isinstance(msg, PortStatus):
            self.dispatch(EV_PORT_STATUS, msg)
        elif isinstance(msg, StatsReply):
            callback = self._pending_stats.pop(msg.xid, None)
            if callback is not None:
                callback(msg)
            else:
                self.dispatch(EV_STATS_REPLY, msg)
        elif isinstance(msg, ErrorMessage):
            logger.warning("switch error: %s %s", msg.error_type, msg.detail)
            self.dispatch(EV_ERROR, msg)

    def send(self, msg: OpenFlowMessage) -> None:
        if self.channel is None:
            raise ControllerError("controller not connected to a datapath")
        self.channel.to_switch(msg)

    # ------------------------------------------------------------------
    # Send-side API for components
    # ------------------------------------------------------------------

    def install_flow(
        self,
        match: Match,
        actions: ActionList,
        priority: int = DEFAULT_PRIORITY,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: int = 0,
        buffer_id: int = NO_BUFFER,
        send_flow_removed: bool = False,
    ) -> None:
        """Add a rule to the datapath (the paper's basic control verb)."""
        self.flow_mods_sent += 1
        if self._m_flow_mods is not None:
            self._m_flow_mods.inc()
        self.send(
            FlowMod.add(
                match,
                actions,
                priority=priority,
                idle_timeout=idle_timeout,
                hard_timeout=hard_timeout,
                cookie=cookie,
                buffer_id=buffer_id,
                send_flow_removed=send_flow_removed,
            )
        )

    def remove_flows(self, match: Match, strict: bool = False, priority: int = DEFAULT_PRIORITY) -> None:
        self.flow_mods_sent += 1
        if self._m_flow_mods is not None:
            self._m_flow_mods.inc()
        self.send(FlowMod.delete(match, strict=strict, priority=priority))

    def send_packet(
        self, data: bytes, actions: ActionList, in_port: int = 0xFFFF,
        buffer_id: int = NO_BUFFER,
    ) -> None:
        """Packet-out: inject ``data`` (or a buffered packet) with actions."""
        self.packet_outs_sent += 1
        if self._m_packet_outs is not None:
            self._m_packet_outs.inc()
        self.send(
            PacketOut(actions=actions, data=data, buffer_id=buffer_id, in_port=in_port)
        )

    def request_stats(
        self,
        kind: int,
        callback: Callable[[StatsReply], None],
        match: Optional[Match] = None,
        port_no: Optional[int] = None,
    ) -> None:
        """Issue a stats request; ``callback`` fires with the reply."""
        request = StatsRequest(kind, match=match, port_no=port_no)
        self._pending_stats[request.xid] = callback
        self.send(request)

    def barrier(self, callback: Optional[Callable[[], None]] = None) -> int:
        """Fence: ``callback`` fires once the switch has processed every
        message sent before the barrier.  Returns the request xid."""
        request = BarrierRequest()
        if callback is not None:
            self._pending_barriers[request.xid] = callback
        self.send(request)
        return request.xid

    def echo(self, data: bytes = b"") -> int:
        """Send a liveness probe; the matching reply clears it from the
        pending set, so a stuck channel leaves the xid behind."""
        request = EchoRequest(data)
        self._pending_echoes[request.xid] = data
        self.send(request)
        return request.xid

    def pending_echoes(self) -> List[int]:
        """Probe xids still awaiting a reply (unanswered = channel stuck)."""
        return sorted(self._pending_echoes)

    def __repr__(self) -> str:
        return (
            f"Controller(dpid={self.datapath_id}, "
            f"components={list(self._components)})"
        )
