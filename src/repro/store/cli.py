"""``python -m repro store`` — inspect and maintain a durable store dir.

Subcommands::

    python -m repro store stat <dir>            # manifest + WAL summary
    python -m repro store verify <dir>          # full integrity check
    python -m repro store compact <dir> --max-age 86400
    python -m repro store recover <dir>         # rebuild and report

``stat`` and ``verify`` are read-only.  ``recover`` rebuilds a scratch
database from the store (the same path the fuzzer's crash op exercises)
and reports per-table row counts; ``compact`` recovers first, then
applies the retention policy and rewrites the manifest.
"""

from __future__ import annotations

import argparse
import json
import logging
from pathlib import Path
from typing import List, Optional

from ..core.clock import WallClock
from ..core.errors import ReproError
from ..core.logging_setup import configure_logging
from ..hwdb.database import HomeworkDatabase
from .archive import MANIFEST_NAME, SEGMENT_DIR, WAL_NAME, FORMAT
from .compact import RetentionPolicy, compact_store
from .recover import recover_store
from .segment import SegmentInfo, read_segment
from .wal import read_wal

logger = logging.getLogger("repro.store")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro store",
        description="inspect and maintain a durable hwdb store directory",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stat = sub.add_parser("stat", help="summarise manifest and WAL")
    stat.add_argument("root", type=Path)

    verify = sub.add_parser("verify", help="check every segment and the WAL")
    verify.add_argument("root", type=Path)

    compact = sub.add_parser("compact", help="apply a retention policy")
    compact.add_argument("root", type=Path)
    compact.add_argument("--max-age", type=float, default=None, metavar="SECONDS")
    compact.add_argument("--max-segments", type=int, default=None, metavar="N")
    compact.add_argument("--max-rows", type=int, default=None, metavar="N")

    recover = sub.add_parser("recover", help="rebuild a database from the store")
    recover.add_argument("root", type=Path)

    for p in (stat, verify, compact, recover):
        p.add_argument("-v", "--verbose", action="store_true")
    return parser


def _load_manifest(root: Path) -> dict:
    path = root / MANIFEST_NAME
    if not path.exists():
        return {"format": FORMAT, "tables": {}}
    return json.loads(path.read_text(encoding="utf-8"))


def _cmd_stat(root: Path) -> int:
    manifest = _load_manifest(root)
    contents = read_wal(root / WAL_NAME)
    logger.info("store %s (%s)", root, manifest.get("format", "?"))
    for name in sorted(manifest.get("tables", {})):
        entry = manifest["tables"][name]
        segments = entry.get("segments", [])
        logger.info(
            "  %-16s %3d segment(s), %6d sealed row(s), sealed_through=%d, "
            "cleared_through=%d, discarded=%d, expired=%d",
            name,
            len(segments),
            sum(int(s["rows"]) for s in segments),
            entry.get("sealed_through", 0),
            entry.get("cleared_through", 0),
            entry.get("discarded", 0),
            entry.get("expired_rows", 0),
        )
    wal_rows = sum(len(rows) for rows in contents.rows.values())
    logger.info(
        "  WAL: %d record(s), %d distinct row(s)%s",
        contents.records,
        wal_rows,
        f" [TORN: {contents.note}]" if contents.torn else "",
    )
    return 0


def _cmd_verify(root: Path) -> int:
    manifest = _load_manifest(root)
    failures = 0
    segments_checked = 0
    for name in sorted(manifest.get("tables", {})):
        for raw in manifest["tables"][name].get("segments", []):
            info = SegmentInfo.from_dict(raw)
            try:
                rows = read_segment(root / SEGMENT_DIR / info.file, info.digest)
            except ReproError as exc:
                logger.error("segment %s: %s", info.file, exc)
                failures += 1
                continue
            segments_checked += 1
            if len(rows) != info.rows:
                logger.error(
                    "segment %s: %d row(s) on disk, manifest says %d",
                    info.file,
                    len(rows),
                    info.rows,
                )
                failures += 1
    contents = read_wal(root / WAL_NAME)
    if contents.torn:
        logger.warning("WAL is torn (%s) — recovery would truncate it", contents.note)
    logger.info(
        "verified %d segment(s), %d WAL record(s): %s",
        segments_checked,
        contents.records,
        "FAILED" if failures else "ok",
    )
    return 1 if failures else 0


def _recover_scratch(root: Path):
    db = HomeworkDatabase(WallClock())
    return recover_store(root, db)


def _cmd_compact(root: Path, policy: RetentionPolicy) -> int:
    recovered = _recover_scratch(root)
    report = compact_store(recovered.store, policy)
    for name in sorted(report):
        entry = report[name]
        logger.info(
            "%s: expired %d segment(s) (%d rows), merged %d, %d segment(s) remain",
            name,
            entry["expired_segments"],
            entry["expired_rows"],
            entry["merged_segments"],
            entry["segments_now"],
        )
    if not report:
        logger.info("nothing to compact")
    recovered.store.close()
    return 0


def _cmd_recover(root: Path) -> int:
    recovered = _recover_scratch(root)
    for name in sorted(recovered.tables):
        entry = recovered.tables[name]
        logger.info(
            "%s: total=%d ring=%d pending=%d sealed=%d discarded=%d",
            name,
            entry["total"],
            entry["ring_rows"],
            entry["pending_rows"],
            entry["sealed_rows"],
            entry["discarded"],
        )
    if recovered.torn:
        logger.warning("WAL tail was torn (%s); truncated on rewrite", recovered.note)
    logger.info("recovery %s", "ok (torn tail dropped)" if recovered.torn else "ok")
    recovered.store.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(getattr(args, "verbose", False))
    try:
        if args.command == "stat":
            return _cmd_stat(args.root)
        if args.command == "verify":
            return _cmd_verify(args.root)
        if args.command == "compact":
            policy = RetentionPolicy(
                max_age=args.max_age,
                max_segments=args.max_segments,
                max_rows=args.max_rows,
            )
            return _cmd_compact(args.root, policy)
        if args.command == "recover":
            return _cmd_recover(args.root)
    except ReproError as exc:
        logger.error("%s", exc)
        return 2
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
