"""The write-ahead log: group-committed, CRC-framed, torn-tail tolerant.

One WAL file per database.  The file starts with :data:`MAGIC`; after it
come framed records::

    <u32 payload length> <u32 crc32(payload)> <payload bytes>

(little-endian).  A payload is compact JSON.  Two record kinds:

* ``{"k": "b", "rows": [[table, seq, ts, [values...]], ...]}`` — one
  *commit batch*.  Appends are buffered in memory and encoded/written as
  a single record at flush time, so the per-append cost is one list
  append (the <5% overhead budget on the T1 bench) and a torn tail loses
  whole batches, never half a row.
* ``{"k": "x", "table": name, "through": seq}`` — a clear marker:
  ``StreamTable.clear()`` discarded every row with seq <= ``through``
  that had not already been archived.

Flushes happen when the pending batch reaches ``group_records`` rows or
when ``flush_interval`` seconds (by the injectable clock — simulated
time in tests and scenarios, wall time in a real deployment) have passed
since the last flush; callers may also flush explicitly (the router
schedules a periodic flush).

The reader (:func:`read_wal`) is the recovery half of the contract: it
stops at the first short read or CRC mismatch and reports the offset of
the last good record, so a crash mid-write — a truncated tail, a
scribbled block — costs at most the unsynced suffix, never an exception.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.errors import StoreError

#: File magic; also the format version (bump on incompatible change).
MAGIC = b"RWAL1\n"

_FRAME = struct.Struct("<II")

#: One buffered append: (table, seq, timestamp, values).
PendingRow = Tuple[str, int, float, Sequence[Any]]


def _encode_payload(obj: Dict[str, Any]) -> bytes:
    # Compact separators: the WAL is written far more than read.
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def frame_record(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


class WriteAheadLog:
    """Append side of the WAL: buffer, group-commit, rewrite.

    ``clock`` is any zero-argument callable returning seconds — the
    database's own clock, so flush timing is deterministic under the
    simulator.
    """

    def __init__(
        self,
        path: Union[str, Path],
        clock: Callable[[], float],
        flush_interval: float = 0.25,
        group_records: int = 64,
        fsync: bool = False,
    ):
        if flush_interval <= 0:
            raise StoreError(f"flush_interval must be positive, got {flush_interval}")
        if group_records <= 0:
            raise StoreError(f"group_records must be positive, got {group_records}")
        self.path = Path(path)
        self._clock = clock
        self.flush_interval = float(flush_interval)
        self.group_records = int(group_records)
        self.fsync = bool(fsync)
        self._pending: List[PendingRow] = []
        self._last_flush = clock()
        self.records_written = 0
        self.rows_written = 0
        self.bytes_written = 0
        self.rewrites = 0
        self._fh = self._open()

    def _open(self):
        exists = self.path.exists() and self.path.stat().st_size >= len(MAGIC)
        fh = open(self.path, "ab")
        if not exists:
            fh.write(MAGIC)
            fh.flush()
        return fh

    # -- append path ---------------------------------------------------

    def append(self, table: str, seq: int, timestamp: float, values: Sequence[Any]) -> None:
        """Buffer one row; group-commits when the batch or clock says so."""
        pending = self._pending
        pending.append((table, seq, timestamp, values))
        if (
            len(pending) >= self.group_records
            or self._clock() - self._last_flush >= self.flush_interval
        ):
            self.flush()

    @property
    def pending_rows(self) -> int:
        return len(self._pending)

    def flush(self) -> int:
        """Write the pending batch as one framed record; returns rows flushed."""
        self._last_flush = self._clock()
        if not self._pending:
            return 0
        count = len(self._pending)
        # The pending tuples are JSON-encoded directly (tuples render as
        # arrays) — no per-row copy on the group-commit path.
        self._write_record({"k": "b", "rows": self._pending})
        self._pending = []
        self.rows_written += count
        return count

    def write_clear(self, table: str, through: int) -> None:
        """Persist a clear marker (flushes pending rows first, in order)."""
        self.flush()
        self._write_record({"k": "x", "table": table, "through": int(through)})

    def _write_record(self, obj: Dict[str, Any]) -> None:
        framed = frame_record(_encode_payload(obj))
        self._fh.write(framed)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.records_written += 1
        self.bytes_written += len(framed)

    # -- rewrite -------------------------------------------------------

    def rewrite(self, rows: Sequence[PendingRow], clears: Dict[str, int]) -> None:
        """Atomically replace the log with exactly ``rows`` (+ markers).

        Called after segments sealed (their rows no longer need the WAL)
        or a table dropped: the caller passes every row the log must
        still retain.  tmp + ``os.replace`` so a crash mid-rewrite leaves
        the old log intact.
        """
        self.flush()
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(MAGIC)
            for table, through in sorted(clears.items()):
                fh.write(frame_record(_encode_payload({"k": "x", "table": table, "through": through})))
            if rows:
                payload = {"k": "b", "rows": list(rows)}
                fh.write(frame_record(_encode_payload(payload)))
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        self._fh = open(self.path, "ab")
        self.rewrites += 1

    def close(self) -> None:
        self.flush()
        self._fh.close()


class WalContents:
    """Everything :func:`read_wal` recovered from a log file."""

    __slots__ = ("rows", "clears", "records", "good_offset", "torn", "note")

    def __init__(self) -> None:
        #: table -> {seq: (timestamp, values)}; later records win.
        self.rows: Dict[str, Dict[int, Tuple[float, List[Any]]]] = {}
        #: table -> highest clear marker seen.
        self.clears: Dict[str, int] = {}
        self.records = 0
        self.good_offset = 0
        self.torn = False
        self.note: Optional[str] = None


def read_wal(path: Union[str, Path]) -> WalContents:
    """Tolerantly read a WAL file: stop at the last good record.

    Never raises on torn/corrupt data — a short header, truncated frame
    or CRC mismatch ends the scan, with ``torn`` set and ``good_offset``
    marking where a recovering writer should truncate to.  A missing
    file reads as empty.
    """
    contents = WalContents()
    path = Path(path)
    if not path.exists():
        contents.note = "missing"
        return contents
    data = path.read_bytes()
    if data[: len(MAGIC)] != MAGIC:
        contents.torn = len(data) > 0
        contents.note = "bad magic"
        return contents
    offset = len(MAGIC)
    contents.good_offset = offset
    while offset + _FRAME.size <= len(data):
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > len(data):
            contents.torn = True
            contents.note = f"truncated frame at offset {offset}"
            return contents
        payload = data[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            contents.torn = True
            contents.note = f"CRC mismatch at offset {offset}"
            return contents
        try:
            obj = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            contents.torn = True
            contents.note = f"undecodable payload at offset {offset}"
            return contents
        _apply_record(contents, obj)
        contents.records += 1
        offset = end
        contents.good_offset = offset
    if offset != len(data):
        contents.torn = True
        contents.note = f"trailing {len(data) - offset} byte(s)"
    return contents


def _apply_record(contents: WalContents, obj: Dict[str, Any]) -> None:
    kind = obj.get("k")
    if kind == "b":
        for table, seq, ts, values in obj.get("rows", ()):
            contents.rows.setdefault(str(table), {})[int(seq)] = (float(ts), list(values))
    elif kind == "x":
        table = str(obj.get("table"))
        through = int(obj.get("through", 0))
        if through > contents.clears.get(table, 0):
            contents.clears[table] = through
    # Unknown kinds are skipped: forward-compatible within one MAGIC.


__all__ = ["MAGIC", "WalContents", "WriteAheadLog", "frame_record", "read_wal"]
