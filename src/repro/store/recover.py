"""Crash recovery: rebuild ring + archive from WAL tail and manifest.

The manifest is authoritative for schema and sealed segments; the WAL
supplies every row that had not reached a segment.  Recovery is pure
arithmetic over sequence numbers — for each table, with ``total`` the
highest sequence number known anywhere (WAL rows, ``sealed_through``,
``cleared_through``)::

    floor         = max(total - capacity, cleared_through)
    ring rows     = WAL seqs in (floor, total]
    pending spill = WAL seqs in (max(sealed_through, cleared_through), floor]

A torn WAL tail (truncated frame, bad CRC — :func:`~repro.store.wal
.read_wal` stops at the last good record) only lowers ``total``: the
recovered state is the consistent prefix as of the last group commit,
never an exception.  After rebuilding, the WAL is rewritten from live
state, so the torn tail is physically discarded and the store is
immediately writable again.

Determinism contract (the fuzzer's ``hwdb_crash`` op asserts it): if the
store was flushed before the crash image was taken, the recovered
database's :func:`repro.hwdb.snapshot.table_digest` equals the
pre-crash digest for every archived table.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core.errors import StoreError
from .archive import WAL_NAME, DurableStore
from .segment import ArchivedRow
from .wal import read_wal


class RecoveredStore:
    """Outcome of :func:`recover_store`: the live store plus an audit."""

    __slots__ = ("store", "db", "torn", "note", "tables")

    def __init__(
        self,
        store: DurableStore,
        db,
        torn: bool,
        note: Optional[str],
        tables: Dict[str, Dict[str, int]],
    ):
        self.store = store
        self.db = db
        self.torn = torn
        self.note = note
        self.tables = tables

    def summary(self) -> Dict[str, Any]:
        return {
            "torn": self.torn,
            "note": self.note,
            "tables": self.tables,
        }

    def __repr__(self) -> str:
        return f"RecoveredStore(tables={sorted(self.tables)}, torn={self.torn})"


def _verify_schema(table, name: str, columns: List[List[str]], capacity: int) -> None:
    existing = [[c.name, c.ctype.name] for c in table.columns]
    wanted = [[str(n), str(t)] for n, t in columns]
    if existing != wanted:
        raise StoreError(
            f"table {name!r} schema mismatch: db has {existing}, manifest has {wanted}"
        )
    if table.capacity != capacity:
        raise StoreError(
            f"table {name!r} capacity mismatch: db has {table.capacity}, "
            f"manifest has {capacity}"
        )
    if table.total_inserted:
        raise StoreError(f"recovery target table {name!r} is not empty")


def recover_store(
    root: Union[str, Path],
    db,
    flush_interval: float = 0.25,
    group_records: int = 64,
    segment_rows: int = 256,
    fsync: bool = False,
    registry=None,
) -> RecoveredStore:
    """Rebuild ``db``'s archived tables from the store at ``root``.

    ``db`` supplies the clock and receives the recovered tables (created
    from the manifest schema if absent; verified against it if present —
    present tables must be empty).  Returns the re-attached store, ready
    for writes.
    """
    root = Path(root)
    if not (root / "MANIFEST.json").exists() and not (root / WAL_NAME).exists():
        raise StoreError(f"{root} does not look like a store directory")
    store = DurableStore(
        root,
        db._clock,
        flush_interval=flush_interval,
        group_records=group_records,
        segment_rows=segment_rows,
        fsync=fsync,
        registry=registry,
    )
    contents = read_wal(root / WAL_NAME)

    report: Dict[str, Dict[str, int]] = {}
    fixes: Dict[str, Dict[str, Any]] = {}
    for name in sorted(store._persisted):
        entry = store._persisted[name]
        columns = [list(c) for c in entry.get("columns", ())]
        capacity = int(entry.get("capacity", 0))
        if capacity <= 0:
            raise StoreError(f"manifest entry for {name!r} has no capacity")
        if db.has_table(name):
            table = db.table(name)
            _verify_schema(table, name, columns, capacity)
        else:
            table = db.create_table(name, [(c, t) for c, t in columns], capacity)

        sealed_through = int(entry.get("sealed_through", 0))
        manifest_cleared = int(entry.get("cleared_through", 0))
        wal_cleared = contents.clears.get(name, 0)
        cleared = max(manifest_cleared, wal_cleared)
        discarded = int(entry.get("discarded", 0))
        if wal_cleared > manifest_cleared:
            # A clear hit the WAL but not the manifest.  The forced seal
            # before the marker did reach the manifest, so every row
            # between the evicted high-water mark and the marker was
            # discarded from the ring un-archived.
            discarded += wal_cleared - max(sealed_through, manifest_cleared)

        wal_rows = contents.rows.get(name, {})
        total = max([sealed_through, cleared] + list(wal_rows)) if wal_rows else max(
            sealed_through, cleared
        )
        floor = max(total - capacity, cleared)
        pending_floor = max(sealed_through, cleared)

        for seq in sorted(s for s in wal_rows if floor < s <= total):
            ts, values = wal_rows[seq]
            table.insert(ts, values)
        table.total_inserted = total
        pending: List[ArchivedRow] = [
            (seq, wal_rows[seq][0], list(wal_rows[seq][1]))
            for seq in sorted(s for s in wal_rows if pending_floor < s <= floor)
        ]
        if len(table) == 0:
            if pending:
                table.last_timestamp = pending[-1][1]
            elif entry.get("segments"):
                table.last_timestamp = float(entry["segments"][-1]["max_ts"])

        fixes[name] = {"pending": pending, "cleared": cleared, "discarded": discarded}
        report[name] = {
            "total": total,
            "ring_rows": len(table),
            "pending_rows": len(pending),
            "sealed_rows": sum(int(s["rows"]) for s in entry.get("segments", ())),
            "discarded": discarded,
        }

    store.attach(db)
    for name, fix in fixes.items():
        tier = store.tier(name)
        tier.pending = fix["pending"]
        tier.cleared_through = fix["cleared"]
        tier.discarded = fix["discarded"]
    # Rewriting from live state drops the torn tail and any stale rows;
    # the store comes back exactly as compact as a clean shutdown's.
    store._rewrite_wal()
    store._write_manifest()
    return RecoveredStore(store, db, contents.torn, contents.note, report)


__all__ = ["RecoveredStore", "recover_store"]
