"""Time-indexed segment files: the archive's sealed, immutable unit.

When a ring evicts enough rows (``segment_rows``), the store seals them
into one segment file — same framing as the WAL (:data:`SEG_MAGIC`, one
length+CRC framed JSON record) — and records a :class:`SegmentInfo` in
the manifest: min/max timestamp and sequence number, row count and a
SHA-256 content digest.  Queries prune on the timestamp bounds without
opening the file; fleet checkpoints compare digests without re-reading
row payloads.

Segment file names are deterministic (``<table>-<id:08d>.seg``) so a
replayed household produces a byte-identical archive layout.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from ..core.errors import StoreError

SEG_MAGIC = b"RSEG1\n"

_FRAME = struct.Struct("<II")

#: One archived row: (seq, timestamp, values).
ArchivedRow = Tuple[int, float, List[Any]]


class SegmentInfo:
    """Manifest entry for one sealed segment (never the row payload)."""

    __slots__ = (
        "segment_id",
        "table",
        "file",
        "rows",
        "min_seq",
        "max_seq",
        "min_ts",
        "max_ts",
        "digest",
    )

    def __init__(
        self,
        segment_id: int,
        table: str,
        file: str,
        rows: int,
        min_seq: int,
        max_seq: int,
        min_ts: float,
        max_ts: float,
        digest: str,
    ):
        self.segment_id = int(segment_id)
        self.table = table
        self.file = file
        self.rows = int(rows)
        self.min_seq = int(min_seq)
        self.max_seq = int(max_seq)
        self.min_ts = float(min_ts)
        self.max_ts = float(max_ts)
        self.digest = digest

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.segment_id,
            "table": self.table,
            "file": self.file,
            "rows": self.rows,
            "min_seq": self.min_seq,
            "max_seq": self.max_seq,
            "min_ts": self.min_ts,
            "max_ts": self.max_ts,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SegmentInfo":
        return cls(
            segment_id=int(data["id"]),
            table=str(data["table"]),
            file=str(data["file"]),
            rows=int(data["rows"]),
            min_seq=int(data["min_seq"]),
            max_seq=int(data["max_seq"]),
            min_ts=float(data["min_ts"]),
            max_ts=float(data["max_ts"]),
            digest=str(data["digest"]),
        )

    def __repr__(self) -> str:
        return (
            f"SegmentInfo({self.table}#{self.segment_id}, rows={self.rows}, "
            f"seq=[{self.min_seq},{self.max_seq}], ts=[{self.min_ts:.3f},{self.max_ts:.3f}])"
        )


def segment_file_name(table: str, segment_id: int) -> str:
    return f"{table}-{segment_id:08d}.seg"


def write_segment(
    path: Union[str, Path],
    segment_id: int,
    table: str,
    rows: List[ArchivedRow],
    fsync: bool = False,
) -> SegmentInfo:
    """Seal ``rows`` (eviction order = seq order) into a segment file."""
    if not rows:
        raise StoreError(f"refusing to seal an empty segment for {table!r}")
    payload = json.dumps(
        {"k": "s", "table": table, "rows": [[s, ts, list(v)] for s, ts, v in rows]},
        separators=(",", ":"),
    ).encode("utf-8")
    framed = _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload
    path = Path(path)
    with open(path, "wb") as fh:
        fh.write(SEG_MAGIC)
        fh.write(framed)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    return SegmentInfo(
        segment_id=segment_id,
        table=table,
        file=path.name,
        rows=len(rows),
        min_seq=rows[0][0],
        max_seq=rows[-1][0],
        min_ts=rows[0][1],
        max_ts=rows[-1][1],
        digest=hashlib.sha256(payload).hexdigest(),
    )


def read_segment(path: Union[str, Path], expected_digest: str = "") -> List[ArchivedRow]:
    """Load a sealed segment; integrity failures raise :class:`StoreError`.

    Segments are not the WAL: they were sealed with a full flush, so any
    damage here is real corruption, reported loudly rather than skipped.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise StoreError(f"cannot read segment {path}: {exc}") from exc
    if data[: len(SEG_MAGIC)] != SEG_MAGIC:
        raise StoreError(f"segment {path} has bad magic")
    offset = len(SEG_MAGIC)
    if offset + _FRAME.size > len(data):
        raise StoreError(f"segment {path} is truncated")
    length, crc = _FRAME.unpack_from(data, offset)
    payload = data[offset + _FRAME.size : offset + _FRAME.size + length]
    if len(payload) != length:
        raise StoreError(f"segment {path} is truncated")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise StoreError(f"segment {path} fails its CRC")
    if expected_digest and hashlib.sha256(payload).hexdigest() != expected_digest:
        raise StoreError(f"segment {path} does not match its manifest digest")
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise StoreError(f"segment {path} payload undecodable: {exc}") from exc
    return [(int(s), float(ts), list(v)) for s, ts, v in obj.get("rows", ())]


__all__ = [
    "ArchivedRow",
    "SEG_MAGIC",
    "SegmentInfo",
    "read_segment",
    "segment_file_name",
    "write_segment",
]
