"""The durable store facade: per-table tiers, manifest, seal/rewrite.

A :class:`DurableStore` owns one directory::

    <root>/
        MANIFEST.json        # schema + segment index (atomic rewrites)
        wal.log              # the group-committed write-ahead log
        segments/            # sealed, immutable segment files

and attaches to a :class:`~repro.hwdb.database.HomeworkDatabase` through
the duck-typed ``db.set_store(store)`` hook (hwdb never imports this
package).  Attaching gives every non-excluded table a
:class:`TableTier`, wired into the ring as ``table.spill`` (write hooks)
and ``table.archive`` (the read facade tier-spanning scans consume).

Sequence-number bookkeeping (1-based; ``seq == total_inserted`` of the
row's insert):

* the ring retains seqs ``(overwritten, total]``;
* the *pending* spill buffer holds evicted-but-unsealed rows, seqs
  ``(max(sealed_through, cleared_through), overwritten]``;
* sealed segments cover the history below, each an explicit
  ``[min_seq, max_seq]`` range;
* rows at or below a table's ``cleared_through`` that were still in the
  ring when ``clear()`` ran were discarded, not archived (``discarded``
  counts them), and compaction may expire whole old segments
  (``expired_rows``).

So at every operation boundary::

    sealed_rows + len(pending) + discarded + expired_rows == overwritten

— the agreement invariant ``repro.check`` asserts after every fuzz op.

The WAL must retain any row not yet in a sealed segment.  Sealing makes
WAL rows dead; once the dead count overtakes the live count (and a floor,
so tiny logs are left alone) the log is rewritten from live state —
pending buffers plus the rings themselves — via tmp + rename.
"""

from __future__ import annotations

import json
import logging
import os
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.errors import StoreError
from ..hwdb.table import Row, StreamTable
from .segment import (
    ArchivedRow,
    SegmentInfo,
    read_segment,
    segment_file_name,
    write_segment,
)
from .wal import PendingRow, WriteAheadLog

logger = logging.getLogger(__name__)

#: Manifest format tag; bump on any incompatible layout change.
FORMAT = "repro.store/1"

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"
SEGMENT_DIR = "segments"

#: Tables that must never spill: metrics rows are wall-clock tainted (a
#: durable copy would break deterministic replay/digest comparison) and
#: trace lineages are high-churn debug data with no recovery value.
DEFAULT_EXCLUDE = ("metrics", "traces")

#: Parsed segment payloads kept in memory (per store, LRU).
SEGMENT_CACHE_SIZE = 8

#: Never rewrite the WAL while fewer dead rows than this have piled up.
REWRITE_MIN_DEAD = 512


class ArchiveScanInfo:
    """What one archive scan touched — EXPLAIN's segment-pruning proof."""

    __slots__ = ("segments_total", "segments_scanned", "segments_pruned", "rows", "pending_rows")

    def __init__(
        self,
        segments_total: int,
        segments_scanned: int,
        segments_pruned: int,
        rows: int,
        pending_rows: int,
    ):
        self.segments_total = segments_total
        self.segments_scanned = segments_scanned
        self.segments_pruned = segments_pruned
        self.rows = rows
        self.pending_rows = pending_rows

    def __repr__(self) -> str:
        return (
            f"ArchiveScanInfo(segments={self.segments_scanned}/{self.segments_total}, "
            f"pruned={self.segments_pruned}, rows={self.rows})"
        )


class TableTier:
    """One table's durable tier: write hooks + the archive read facade.

    The same object is installed as ``table.spill`` and
    ``table.archive`` — the names match what each consumer needs, not
    two implementations.
    """

    __slots__ = (
        "store",
        "name",
        "columns",
        "capacity",
        "pending",
        "segments",
        "sealed_through",
        "cleared_through",
        "discarded",
        "expired_rows",
        "next_segment_id",
        "_wal_append",
    )

    def __init__(self, store: "DurableStore", name: str, columns: List[List[str]], capacity: int):
        self.store = store
        self.name = name
        self.columns = columns
        self.capacity = capacity
        self.pending: List[ArchivedRow] = []
        self.segments: List[SegmentInfo] = []
        self.sealed_through = 0
        self.cleared_through = 0
        self.discarded = 0
        self.expired_rows = 0
        self.next_segment_id = 1
        # Bound once: on_append runs on every insert of every durable
        # table, and the store keeps one WriteAheadLog object for its
        # whole life (rewrite() swaps file handles, not the object).
        self._wal_append = store.wal.append

    # -- write hooks (called from StreamTable.insert/clear) -------------

    def on_append(self, table: StreamTable, seq: int, row: Row) -> None:
        self._wal_append(self.name, seq, row.timestamp, row.values)

    def on_evict(self, table: StreamTable, seq: int, row: Row) -> None:
        # row.values stays a tuple — JSON encodes it as an array, and
        # avoiding the list copy keeps this hook a bare append.
        pending = self.pending
        pending.append((seq, row.timestamp, row.values))
        if len(pending) >= self.store.segment_rows:
            self.store._seal(self)

    def on_clear(self, table: StreamTable) -> None:
        self.store._on_clear(self, table)

    # -- read facade (called via the duck-typed table.archive) ----------

    @property
    def sealed_rows(self) -> int:
        return sum(segment.rows for segment in self.segments)

    @property
    def archived_rows(self) -> int:
        return self.sealed_rows + len(self.pending)

    def scan_since(self, t_from: float) -> Tuple[List[Row], ArchiveScanInfo]:
        """Archived rows with ``timestamp >= t_from``, oldest first.

        Segments whose ``max_ts`` falls before the window are pruned on
        manifest metadata alone — their files are never opened.
        """
        rows: List[Row] = []
        scanned = 0
        pruned = 0
        for segment in self.segments:
            if segment.max_ts < t_from:
                pruned += 1
                continue
            scanned += 1
            for _seq, ts, values in self.store._segment_rows(segment):
                if ts >= t_from:
                    rows.append(Row(ts, tuple(values)))
        pending_hit = 0
        for _seq, ts, values in self.pending:
            if ts >= t_from:
                rows.append(Row(ts, tuple(values)))
                pending_hit += 1
        info = ArchiveScanInfo(
            segments_total=len(self.segments),
            segments_scanned=scanned,
            segments_pruned=pruned,
            rows=len(rows),
            pending_rows=pending_hit,
        )
        self.store._note_scan(info)
        return rows, info

    def to_manifest(self) -> Dict[str, Any]:
        return {
            "columns": [list(c) for c in self.columns],
            "capacity": self.capacity,
            "sealed_through": self.sealed_through,
            "cleared_through": self.cleared_through,
            "discarded": self.discarded,
            "expired_rows": self.expired_rows,
            "next_segment_id": self.next_segment_id,
            "segments": [segment.to_dict() for segment in self.segments],
        }

    def load_manifest(self, data: Dict[str, Any]) -> None:
        self.columns = [list(c) for c in data.get("columns", self.columns)]
        self.capacity = int(data.get("capacity", self.capacity))
        self.sealed_through = int(data.get("sealed_through", 0))
        self.cleared_through = int(data.get("cleared_through", 0))
        self.discarded = int(data.get("discarded", 0))
        self.expired_rows = int(data.get("expired_rows", 0))
        self.next_segment_id = int(data.get("next_segment_id", 1))
        self.segments = [SegmentInfo.from_dict(s) for s in data.get("segments", ())]

    def __repr__(self) -> str:
        return (
            f"TableTier({self.name}, sealed={self.sealed_rows} rows in "
            f"{len(self.segments)} segments, pending={len(self.pending)})"
        )


class DurableStore:
    """Durable cold tier for one hwdb: WAL + segment archive + manifest."""

    def __init__(
        self,
        root: Union[str, Path],
        clock,
        flush_interval: float = 0.25,
        group_records: int = 64,
        segment_rows: int = 256,
        fsync: bool = False,
        registry=None,
        exclude_tables: Sequence[str] = DEFAULT_EXCLUDE,
    ):
        if segment_rows <= 0:
            raise StoreError(f"segment_rows must be positive, got {segment_rows}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / SEGMENT_DIR).mkdir(exist_ok=True)
        self.segment_rows = int(segment_rows)
        self.fsync = bool(fsync)
        self._clock = clock
        self._db = None
        self._tiers: Dict[str, TableTier] = {}
        self._persisted: Dict[str, Dict[str, Any]] = {}
        self._segment_cache: "OrderedDict[Tuple[str, int], List[ArchivedRow]]" = OrderedDict()
        self._wal_dead_rows = 0
        self.excluded = {str(name).lower() for name in exclude_tables}
        self.set_registry(registry)
        self._load_manifest()
        self.wal = WriteAheadLog(
            self.root / WAL_NAME,
            clock,
            flush_interval=flush_interval,
            group_records=group_records,
            fsync=fsync,
        )

    def set_registry(self, registry) -> None:
        self._registry = registry
        if registry is None:
            self._m_rows = None
            self._m_seals = None
            self._m_rewrites = None
            self._m_scans = None
            self._m_pruned = None
        else:
            self._m_rows = registry.counter("store.wal_rows_total")
            self._m_seals = registry.counter("store.segment_seal_total")
            self._m_rewrites = registry.counter("store.wal_rewrite_total")
            self._m_scans = registry.counter("store.archive_scan_total")
            self._m_pruned = registry.counter("store.segments_pruned_total")

    # -- attach ---------------------------------------------------------

    def attach(self, db) -> None:
        """Become ``db``'s durable tier (``db.set_store`` + table hooks).

        For a fresh directory this registers every existing table; a
        directory with prior state must go through
        :func:`repro.store.recover.recover_store`, which aligns the
        database's counters with the manifest before attaching.
        """
        if self._db is not None:
            raise StoreError("store is already attached to a database")
        self._db = db
        for name in db.tables():
            if name in self.excluded:
                continue
            self._attach_table(db.table(name))
        db.set_store(self)
        self._write_manifest()

    @property
    def tiers(self) -> Dict[str, TableTier]:
        return self._tiers

    def tier(self, name: str) -> TableTier:
        try:
            return self._tiers[name.lower()]
        except KeyError:
            raise StoreError(f"no durable tier for table {name!r}") from None

    def _attach_table(self, table: StreamTable) -> TableTier:
        columns = [[column.name, column.ctype.name] for column in table.columns]
        tier = TableTier(self, table.name, columns, table.capacity)
        persisted = self._persisted.pop(table.name, None)
        if persisted is not None:
            tier.load_manifest(persisted)
        self._tiers[table.name] = tier
        table.spill = tier
        table.archive = tier
        return tier

    # -- database notifications (duck-typed, via set_store) -------------

    def on_create_table(self, table: StreamTable) -> None:
        if table.name in self.excluded:
            return
        self._attach_table(table)
        self._write_manifest()

    def on_drop_table(self, name: str) -> None:
        tier = self._tiers.pop(name.lower(), None)
        if tier is None:
            return
        for segment in tier.segments:
            self._segment_cache.pop((tier.name, segment.segment_id), None)
            try:
                (self.root / SEGMENT_DIR / segment.file).unlink()
            except OSError:  # repro: ignore[except-swallow]
                pass
        self._rewrite_wal()
        self._write_manifest()

    # -- flush / seal / rewrite ----------------------------------------

    def flush(self) -> int:
        """Group-commit the pending WAL batch; returns rows flushed."""
        if self._registry is not None:
            with self._registry.span("store.group_commit"):
                flushed = self.wal.flush()
        else:
            flushed = self.wal.flush()
        if flushed and self._m_rows is not None:
            self._m_rows.inc(flushed)
        return flushed

    def _seal(self, tier: TableTier) -> Optional[SegmentInfo]:
        """Seal ``tier``'s pending rows into one immutable segment."""
        if not tier.pending:
            return None
        # The WAL must be current before its rows become seal-durable;
        # a crash between the two must always find the rows somewhere.
        self.flush()
        segment_id = tier.next_segment_id
        tier.next_segment_id += 1
        file_name = segment_file_name(tier.name, segment_id)
        info = write_segment(
            self.root / SEGMENT_DIR / file_name,
            segment_id,
            tier.name,
            tier.pending,
            fsync=self.fsync,
        )
        sealed = len(tier.pending)
        tier.segments.append(info)
        tier.sealed_through = info.max_seq
        tier.pending = []
        self._write_manifest()
        self._wal_dead_rows += sealed
        if self._m_seals is not None:
            self._m_seals.inc()
        if self._wal_dead_rows >= REWRITE_MIN_DEAD and self._wal_dead_rows >= self._live_rows():
            self._rewrite_wal()
        return info

    def _live_rows(self) -> int:
        """Rows the WAL must retain: pending spill + the rings themselves."""
        total = 0
        for tier in self._tiers.values():
            total += len(tier.pending)
            if self._db is not None and self._db.has_table(tier.name):
                total += len(self._db.table(tier.name))
        return total

    def _rewrite_wal(self) -> None:
        """Drop sealed/dead rows: rebuild the log from live state."""
        rows: List[PendingRow] = []
        clears: Dict[str, int] = {}
        for name in sorted(self._tiers):
            tier = self._tiers[name]
            if tier.cleared_through:
                clears[name] = tier.cleared_through
            for seq, ts, values in tier.pending:
                rows.append((name, seq, ts, values))
            if self._db is not None and self._db.has_table(name):
                table = self._db.table(name)
                floor = table.total_inserted - len(table)
                for seq, row in table.rows_with_seq_since(floor):
                    rows.append((name, seq, row.timestamp, row.values))
        rows.sort(key=lambda item: (item[1], item[0]))
        self.wal.rewrite(rows, clears)
        self._wal_dead_rows = 0
        if self._m_rewrites is not None:
            self._m_rewrites.inc()

    def _on_clear(self, tier: TableTier, table: StreamTable) -> None:
        """``clear()`` support: seal what was evicted, mark the rest dead.

        Rows still in the ring at clear time were never evicted, so they
        are *discarded* — gone from ring and archive both.  Sealing the
        pending buffer first keeps the recovery arithmetic closed: after
        the marker, pending rows are exactly seqs in
        ``(cleared_through, overwritten]``.
        """
        self._seal(tier)
        tier.discarded += len(table)
        tier.cleared_through = table.total_inserted
        self.wal.write_clear(tier.name, tier.cleared_through)
        self._write_manifest()

    # -- segment access -------------------------------------------------

    def _segment_rows(self, segment: SegmentInfo) -> List[ArchivedRow]:
        key = (segment.table, segment.segment_id)
        cached = self._segment_cache.get(key)
        if cached is not None:
            self._segment_cache.move_to_end(key)
            return cached
        rows = read_segment(self.root / SEGMENT_DIR / segment.file, segment.digest)
        self._segment_cache[key] = rows
        while len(self._segment_cache) > SEGMENT_CACHE_SIZE:
            self._segment_cache.popitem(last=False)
        return rows

    def _note_scan(self, info: ArchiveScanInfo) -> None:
        if self._m_scans is not None:
            self._m_scans.inc()
            self._m_pruned.inc(info.segments_pruned)

    # -- manifest -------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _load_manifest(self) -> None:
        path = self.manifest_path
        if not path.exists():
            return
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise StoreError(f"unreadable manifest {path}: {exc}") from exc
        if data.get("format") != FORMAT:
            raise StoreError(
                f"unsupported store format {data.get('format')!r} (expected {FORMAT!r})"
            )
        # A re-opened store keeps the exclusions it was created with.
        self.excluded = {
            str(name).lower() for name in data.get("exclude_tables", DEFAULT_EXCLUDE)
        }
        self._persisted = {
            str(name): dict(entry) for name, entry in data.get("tables", {}).items()
        }

    def _write_manifest(self) -> None:
        payload = {
            "format": FORMAT,
            "exclude_tables": sorted(self.excluded),
            "tables": {
                name: self._tiers[name].to_manifest() for name in sorted(self._tiers)
            },
        }
        # Tables known from a prior manifest but not (yet) attached stay.
        for name, entry in self._persisted.items():
            payload["tables"].setdefault(name, entry)
        tmp = self.manifest_path.with_name(MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8")
        os.replace(tmp, self.manifest_path)

    def manifest_summary(self) -> Dict[str, Any]:
        """Path-free, deterministic view for fleet checkpoints.

        Checkpoints carry segment *ids and digests*, never row payloads:
        a replayed household re-creates the identical archive, and the
        digests prove it without reading a single segment back.
        """
        tables: Dict[str, Any] = {}
        for name in sorted(self._tiers):
            tier = self._tiers[name]
            tables[name] = {
                "sealed_through": tier.sealed_through,
                "cleared_through": tier.cleared_through,
                "discarded": tier.discarded,
                "expired_rows": tier.expired_rows,
                "pending_rows": len(tier.pending),
                "segments": [
                    {
                        "id": segment.segment_id,
                        "rows": segment.rows,
                        "min_seq": segment.min_seq,
                        "max_seq": segment.max_seq,
                        "digest": segment.digest,
                    }
                    for segment in tier.segments
                ],
            }
        return {"format": FORMAT, "tables": tables}

    def stats(self) -> Dict[str, Any]:
        return {
            "root": str(self.root),
            "tables": {
                name: {
                    "segments": len(tier.segments),
                    "sealed_rows": tier.sealed_rows,
                    "pending_rows": len(tier.pending),
                    "discarded": tier.discarded,
                    "expired_rows": tier.expired_rows,
                }
                for name, tier in sorted(self._tiers.items())
            },
            "wal": {
                "records": self.wal.records_written,
                "rows": self.wal.rows_written,
                "bytes": self.wal.bytes_written,
                "rewrites": self.wal.rewrites,
                "pending": self.wal.pending_rows,
            },
        }

    def close(self) -> None:
        """Flush and release the WAL handle (the store stays readable)."""
        self.wal.close()

    def __repr__(self) -> str:
        return f"DurableStore({self.root}, tables={sorted(self._tiers)})"


__all__ = ["ArchiveScanInfo", "DEFAULT_EXCLUDE", "DurableStore", "FORMAT", "TableTier"]
