"""Segment compaction: expire old history, merge undersized segments.

Retention is the knob that makes an unbounded archive safe on a home
router's flash: a :class:`RetentionPolicy` caps history by age, by
segment count, or by total archived rows.  Expiry always removes the
*oldest* segments whole — the archive stays a contiguous suffix of each
table's history, which keeps the recovery arithmetic (and the agreement
invariant's ``expired_rows`` term) closed.

Merging is the opposite pressure: forced seals (``clear()``, shutdown)
produce runt segments; adjacent runts are folded into one file up to the
store's ``segment_rows`` so the manifest and the scan fan-out stay
small.  Merged files are rewritten under a fresh segment id and the old
files deleted only after the manifest no longer references them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.errors import StoreError
from .archive import SEGMENT_DIR, DurableStore, TableTier
from .segment import SegmentInfo, segment_file_name, write_segment


class RetentionPolicy:
    """Limits applied per table; ``None`` means unlimited."""

    __slots__ = ("max_age", "max_segments", "max_rows")

    def __init__(
        self,
        max_age: Optional[float] = None,
        max_segments: Optional[int] = None,
        max_rows: Optional[int] = None,
    ):
        if max_age is not None and max_age <= 0:
            raise StoreError(f"max_age must be positive, got {max_age}")
        if max_segments is not None and max_segments < 0:
            raise StoreError(f"max_segments must be >= 0, got {max_segments}")
        if max_rows is not None and max_rows < 0:
            raise StoreError(f"max_rows must be >= 0, got {max_rows}")
        self.max_age = max_age
        self.max_segments = max_segments
        self.max_rows = max_rows

    def __repr__(self) -> str:
        return (
            f"RetentionPolicy(max_age={self.max_age}, "
            f"max_segments={self.max_segments}, max_rows={self.max_rows})"
        )


def _expire(store: DurableStore, tier: TableTier, policy: RetentionPolicy, now: float):
    """Oldest-first expiry; returns the dropped SegmentInfos."""
    dropped: List[SegmentInfo] = []
    segments = tier.segments
    while segments:
        head = segments[0]
        over_age = policy.max_age is not None and head.max_ts < now - policy.max_age
        over_count = (
            policy.max_segments is not None and len(segments) > policy.max_segments
        )
        over_rows = (
            policy.max_rows is not None
            and sum(s.rows for s in segments) > policy.max_rows
        )
        if not (over_age or over_count or over_rows):
            break
        dropped.append(segments.pop(0))
        tier.expired_rows += head.rows
    return dropped


def _merge(store: DurableStore, tier: TableTier):
    """Fold adjacent undersized segments; returns (new_list, dropped)."""
    target = store.segment_rows
    merged: List[SegmentInfo] = []
    dropped: List[SegmentInfo] = []
    run: List[SegmentInfo] = []
    run_rows = 0

    def flush_run():
        nonlocal run, run_rows
        if len(run) <= 1:
            merged.extend(run)
        else:
            rows = []
            for info in run:
                rows.extend(store._segment_rows(info))
            segment_id = tier.next_segment_id
            tier.next_segment_id += 1
            file_name = segment_file_name(tier.name, segment_id)
            merged.append(
                write_segment(
                    store.root / SEGMENT_DIR / file_name,
                    segment_id,
                    tier.name,
                    rows,
                    fsync=store.fsync,
                )
            )
            dropped.extend(run)
        run = []
        run_rows = 0

    for info in tier.segments:
        if info.rows >= target or run_rows + info.rows > target:
            flush_run()
        if info.rows >= target:
            merged.append(info)
        else:
            run.append(info)
            run_rows += info.rows
    flush_run()
    return merged, dropped


def compact_store(
    store: DurableStore,
    policy: RetentionPolicy,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Apply ``policy`` to every tier; returns a per-table report.

    ``now`` anchors age expiry — pass the database's clock reading for
    deterministic runs.  When omitted, each table's newest archived
    ``max_ts`` is the anchor (pure retention by relative age).
    """
    report: Dict[str, Any] = {}
    for name in sorted(store.tiers):
        tier = store.tiers[name]
        if not tier.segments:
            continue
        anchor = now if now is not None else tier.segments[-1].max_ts
        expired = _expire(store, tier, policy, anchor)
        merged_list, replaced = _merge(store, tier)
        tier.segments = merged_list
        store._write_manifest()
        # Files go only after the manifest stopped referencing them.
        for info in expired + replaced:
            store._segment_cache.pop((tier.name, info.segment_id), None)
            try:
                (store.root / SEGMENT_DIR / info.file).unlink()
            except OSError:  # repro: ignore[except-swallow]
                pass
        if expired or replaced:
            report[name] = {
                "expired_segments": len(expired),
                "expired_rows": sum(s.rows for s in expired),
                "merged_segments": len(replaced),
                "segments_now": len(tier.segments),
            }
    return report


__all__ = ["RetentionPolicy", "compact_store"]
