"""repro.store — the durable tier under hwdb's rings.

hwdb is "an active ephemeral stream database": fixed-size memory rings,
nothing on disk.  The paper's interfaces quietly want more — the network
artifact animates bandwidth against "the last day's peak", and the RPC
exists so applications can go "persisting output as desired".  This
package gives each :class:`~repro.hwdb.table.StreamTable` an optional
durable cold tier:

* appends are group-committed to a per-database write-ahead log
  (:mod:`.wal`: length-prefixed, CRC32-framed binary records);
* rows evicted from a ring spill into time-indexed segment files
  (:mod:`.segment`), summarised in a manifest for pruning;
* a compactor merges and expires segments under a retention policy
  (:mod:`.compact`);
* crash recovery (:mod:`.recover`) rebuilds ring + archive from the
  WAL tail and the segment index, tolerating torn writes;
* CQL windows that reach past ring retention transparently extend
  their scans over the archive (the duck-typed ``table.archive`` hook
  consumed by :func:`repro.hwdb.cql.executor.apply_window_ex`).

hwdb itself never imports this package: a store attaches to a database
via ``db.set_store(store)`` exactly like the query engine's
``set_query_engine`` hook, and to tables via the ``table.spill`` /
``table.archive`` attributes.
"""

from .archive import ArchiveScanInfo, DurableStore, TableTier
from .compact import RetentionPolicy, compact_store
from .recover import RecoveredStore, recover_store
from .segment import SegmentInfo
from .wal import WriteAheadLog, read_wal

__all__ = [
    "ArchiveScanInfo",
    "DurableStore",
    "RecoveredStore",
    "RetentionPolicy",
    "SegmentInfo",
    "TableTier",
    "WriteAheadLog",
    "compact_store",
    "read_wal",
    "recover_store",
]
