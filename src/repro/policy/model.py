"""The policy model.

A :class:`Policy` is what Figure 4's cartoon compiles to: for a set of
target devices, a network-access stance plus DNS site restrictions, under
a schedule, optionally gated by physical mediation (the USB key).

Semantics of the USB gate, per the paper: restrictions "are only lifted
once a suitably responsible adult inserts the appropriate USB storage
key" — i.e. the policy's restrictions apply while **locked**; inserting
the key **unlocks** (suspends) them.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Union

from ..core.errors import PolicyError
from ..net.addresses import MACAddress
from .schedule import Schedule

# Network stances.
NET_ALLOW = "allow"
NET_DENY = "deny"

# DNS stances.
DNS_ALL = "all"  # no DNS restriction
DNS_BLOCK = "block"  # block the listed sites
DNS_ONLY = "only"  # allow only the listed sites

_policy_ids = itertools.count(1)


class Policy:
    """One installed policy."""

    def __init__(
        self,
        name: str,
        targets: Iterable[Union[str, MACAddress]],
        network: str = NET_ALLOW,
        dns_mode: str = DNS_ALL,
        sites: Optional[Iterable[str]] = None,
        schedule: Optional[Schedule] = None,
        usb_gated: bool = False,
        unlock_key_id: str = "",
        policy_id: Optional[int] = None,
    ):
        if network not in (NET_ALLOW, NET_DENY):
            raise PolicyError(f"bad network stance {network!r}")
        if dns_mode not in (DNS_ALL, DNS_BLOCK, DNS_ONLY):
            raise PolicyError(f"bad dns mode {dns_mode!r}")
        if dns_mode != DNS_ALL and not sites:
            raise PolicyError(f"dns mode {dns_mode!r} needs a site list")
        self.id = policy_id if policy_id is not None else next(_policy_ids)
        self.name = name
        self.targets: List[MACAddress] = [MACAddress(t) for t in targets]
        if not self.targets:
            raise PolicyError("policy needs at least one target device")
        self.network = network
        self.dns_mode = dns_mode
        self.sites: List[str] = [s.rstrip(".").lower() for s in (sites or [])]
        self.schedule = schedule or Schedule.always()
        self.usb_gated = bool(usb_gated)
        self.unlock_key_id = unlock_key_id
        self.enabled = True

    def applies_to(self, mac: Union[str, MACAddress]) -> bool:
        return MACAddress(mac) in self.targets

    def active(self, now: float, unlocked_keys: Iterable[str] = ()) -> bool:
        """Is this policy's restriction in force at ``now``?

        USB-gated policies are suspended while their key is inserted.
        """
        if not self.enabled:
            return False
        if self.usb_gated and self.unlock_key_id in set(unlocked_keys):
            return False
        return self.schedule.matches(now)

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "name": self.name,
            "targets": [str(t) for t in self.targets],
            "network": self.network,
            "dns_mode": self.dns_mode,
            "sites": list(self.sites),
            "schedule": self.schedule.to_dict(),
            "usb_gated": self.usb_gated,
            "unlock_key_id": self.unlock_key_id,
            "enabled": self.enabled,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Policy":
        return cls(
            name=str(data.get("name", "unnamed")),
            targets=list(data.get("targets", [])),  # type: ignore[arg-type]
            network=str(data.get("network", NET_ALLOW)),
            dns_mode=str(data.get("dns_mode", DNS_ALL)),
            sites=list(data.get("sites", [])),  # type: ignore[arg-type]
            schedule=Schedule.from_dict(data.get("schedule") or {}),  # type: ignore[arg-type]
            usb_gated=bool(data.get("usb_gated", False)),
            unlock_key_id=str(data.get("unlock_key_id", "")),
            policy_id=data.get("id"),  # type: ignore[arg-type]
        )

    def __repr__(self) -> str:
        return (
            f"Policy(#{self.id} {self.name!r}, targets={len(self.targets)}, "
            f"net={self.network}, dns={self.dns_mode}:{self.sites}, "
            f"usb_gated={self.usb_gated})"
        )


class Restrictions:
    """The compiled per-device outcome at one instant."""

    __slots__ = ("network_allowed", "dns_mode", "sites", "source_policies")

    def __init__(
        self,
        network_allowed: bool = True,
        dns_mode: str = DNS_ALL,
        sites: Optional[List[str]] = None,
        source_policies: Optional[List[int]] = None,
    ):
        self.network_allowed = network_allowed
        self.dns_mode = dns_mode
        self.sites = sites or []
        self.source_policies = source_policies or []

    @property
    def unrestricted(self) -> bool:
        return self.network_allowed and self.dns_mode == DNS_ALL

    def to_dict(self) -> Dict[str, object]:
        return {
            "network_allowed": self.network_allowed,
            "dns_mode": self.dns_mode,
            "sites": list(self.sites),
            "source_policies": list(self.source_policies),
        }

    def __repr__(self) -> str:
        return (
            f"Restrictions(network={'allow' if self.network_allowed else 'deny'}, "
            f"dns={self.dns_mode}:{self.sites})"
        )
