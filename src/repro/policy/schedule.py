"""Time conditions for policies.

Figure 4's example — "the kids can only use Facebook on weekdays after
they've finished their homework" — needs day-of-week and time-of-day
predicates over the simulation clock.  Simulated time maps onto a civil
calendar via a configurable epoch (sim t=0 is Monday 00:00 by default).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY

DAY_NAMES = ["monday", "tuesday", "wednesday", "thursday", "friday", "saturday", "sunday"]
WEEKDAYS = (0, 1, 2, 3, 4)
WEEKEND = (5, 6)


def day_of_week(now: float, epoch_day: int = 0) -> int:
    """0=Monday ... 6=Sunday for simulated time ``now``."""
    days = int(now // SECONDS_PER_DAY) + epoch_day
    return days % 7


def time_of_day(now: float) -> float:
    """Seconds since local midnight."""
    return now % SECONDS_PER_DAY


def parse_hhmm(text: str) -> float:
    """``"17:30"`` → seconds since midnight."""
    hours_s, _, minutes_s = text.partition(":")
    hours = int(hours_s)
    minutes = int(minutes_s) if minutes_s else 0
    if not (0 <= hours <= 24 and 0 <= minutes < 60):
        raise ValueError(f"bad time of day {text!r}")
    return hours * 3600.0 + minutes * 60.0


class TimeWindow:
    """A daily start-end window (end may wrap past midnight)."""

    __slots__ = ("start", "end")

    def __init__(self, start: float, end: float):
        self.start = float(start) % SECONDS_PER_DAY
        self.end = float(end) % SECONDS_PER_DAY if end != SECONDS_PER_DAY else SECONDS_PER_DAY

    @classmethod
    def parse(cls, start: str, end: str) -> "TimeWindow":
        return cls(parse_hhmm(start), parse_hhmm(end))

    def contains(self, now: float) -> bool:
        tod = time_of_day(now)
        if self.start <= self.end:
            return self.start <= tod < self.end
        # Wrapping window, e.g. 22:00-06:00.
        return tod >= self.start or tod < self.end

    def __repr__(self) -> str:
        def fmt(seconds: float) -> str:
            return f"{int(seconds // 3600):02d}:{int(seconds % 3600 // 60):02d}"

        return f"TimeWindow({fmt(self.start)}-{fmt(self.end)})"


class Schedule:
    """Days-of-week plus optional daily windows.

    An empty schedule is "always".  ``matches(now)`` is the activation
    predicate the policy compiler evaluates.
    """

    def __init__(
        self,
        days: Optional[Iterable[int]] = None,
        windows: Optional[Sequence[TimeWindow]] = None,
        epoch_day: int = 0,
    ):
        self.days: Optional[Tuple[int, ...]] = tuple(sorted(set(days))) if days is not None else None
        self.windows: List[TimeWindow] = list(windows or [])
        self.epoch_day = epoch_day
        if self.days is not None:
            for day in self.days:
                if not 0 <= day <= 6:
                    raise ValueError(f"bad day of week {day}")

    @classmethod
    def always(cls) -> "Schedule":
        return cls()

    @classmethod
    def weekdays(cls, windows: Optional[Sequence[TimeWindow]] = None) -> "Schedule":
        return cls(days=WEEKDAYS, windows=windows)

    @classmethod
    def weekend(cls, windows: Optional[Sequence[TimeWindow]] = None) -> "Schedule":
        return cls(days=WEEKEND, windows=windows)

    def matches(self, now: float) -> bool:
        if self.days is not None and day_of_week(now, self.epoch_day) not in self.days:
            return False
        if not self.windows:
            return True
        return any(window.contains(now) for window in self.windows)

    def to_dict(self) -> dict:
        return {
            "days": list(self.days) if self.days is not None else None,
            "windows": [[w.start, w.end] for w in self.windows],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Schedule":
        windows = [TimeWindow(s, e) for s, e in data.get("windows", [])]
        days = data.get("days")
        return cls(days=days, windows=windows)

    def __repr__(self) -> str:
        if self.days is None and not self.windows:
            return "Schedule(always)"
        day_names = (
            ",".join(DAY_NAMES[d][:3] for d in self.days) if self.days is not None else "all"
        )
        return f"Schedule(days={day_names}, windows={self.windows})"
