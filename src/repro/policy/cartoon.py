"""The cartoon policy language (Figure 4).

"By selecting appropriate options for each panel in the cartoon,
non-expert users can implement simple policies such as 'the kids can only
use Facebook on weekdays after they've finished their homework.'"

The cartoon has four panels; each exposes a small set of options, and the
filled-in strip compiles to a :class:`~repro.policy.model.Policy`:

1. **WHO**   — which devices ("the kids' devices", by MAC/group)
2. **WHAT**  — which services (only these sites / everything except / none)
3. **WHEN**  — weekdays / weekend / every day, with a time window
4. **UNLESS** — physical mediation (lifted by a named USB key, or none)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from ..core.errors import PolicyError
from ..net.addresses import MACAddress
from .model import DNS_ALL, DNS_BLOCK, DNS_ONLY, NET_ALLOW, NET_DENY, Policy
from .schedule import Schedule, TimeWindow, WEEKDAYS, WEEKEND

# Panel 2 options.
WHAT_ONLY_SITES = "only_these_sites"
WHAT_BLOCK_SITES = "everything_except"
WHAT_NO_NETWORK = "no_network"
WHAT_EVERYTHING = "everything"

# Panel 3 options.
WHEN_ALWAYS = "always"
WHEN_WEEKDAYS = "weekdays"
WHEN_WEEKEND = "weekend"

# Panel 4 options.
UNLESS_NOTHING = "nothing"
UNLESS_USB_KEY = "usb_key"


class DeviceGroup:
    """A named group of devices ("the kids", "guests")."""

    def __init__(self, name: str, members: Iterable[Union[str, MACAddress]] = ()):
        self.name = name
        self.members: List[MACAddress] = [MACAddress(m) for m in members]

    def add(self, mac: Union[str, MACAddress]) -> None:
        mac = MACAddress(mac)
        if mac not in self.members:
            self.members.append(mac)

    def remove(self, mac: Union[str, MACAddress]) -> None:
        mac = MACAddress(mac)
        if mac in self.members:
            self.members.remove(mac)

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:
        return f"DeviceGroup({self.name!r}, {len(self.members)} devices)"


class CartoonStrip:
    """A filled-in cartoon: the four panels plus a title."""

    def __init__(self, title: str = "house rule"):
        self.title = title
        self.who: List[MACAddress] = []
        self.what: str = WHAT_EVERYTHING
        self.sites: List[str] = []
        self.when: str = WHEN_ALWAYS
        self.window: Optional[TimeWindow] = None
        self.unless: str = UNLESS_NOTHING
        self.key_id: str = ""

    # Panel setters return self so strips read like the UI interaction.

    def panel_who(self, *devices: Union[str, MACAddress, DeviceGroup]) -> "CartoonStrip":
        for device in devices:
            if isinstance(device, DeviceGroup):
                self.who.extend(device.members)
            else:
                self.who.append(MACAddress(device))
        return self

    def panel_what(self, option: str, sites: Iterable[str] = ()) -> "CartoonStrip":
        if option not in (WHAT_ONLY_SITES, WHAT_BLOCK_SITES, WHAT_NO_NETWORK, WHAT_EVERYTHING):
            raise PolicyError(f"bad WHAT option {option!r}")
        self.what = option
        self.sites = [s.rstrip(".").lower() for s in sites]
        if option in (WHAT_ONLY_SITES, WHAT_BLOCK_SITES) and not self.sites:
            raise PolicyError(f"WHAT option {option!r} needs sites")
        return self

    def panel_when(
        self, option: str, start: Optional[str] = None, end: Optional[str] = None
    ) -> "CartoonStrip":
        if option not in (WHEN_ALWAYS, WHEN_WEEKDAYS, WHEN_WEEKEND):
            raise PolicyError(f"bad WHEN option {option!r}")
        self.when = option
        if start is not None and end is not None:
            self.window = TimeWindow.parse(start, end)
        return self

    def panel_unless(self, option: str, key_id: str = "") -> "CartoonStrip":
        if option not in (UNLESS_NOTHING, UNLESS_USB_KEY):
            raise PolicyError(f"bad UNLESS option {option!r}")
        if option == UNLESS_USB_KEY and not key_id:
            raise PolicyError("UNLESS usb_key needs a key id")
        self.unless = option
        self.key_id = key_id
        return self

    # ------------------------------------------------------------------

    def compile(self) -> Policy:
        """Produce the Policy this strip means."""
        if not self.who:
            raise PolicyError("the WHO panel is empty")
        if self.what == WHAT_NO_NETWORK:
            network, dns_mode, sites = NET_DENY, DNS_ALL, []
        elif self.what == WHAT_ONLY_SITES:
            network, dns_mode, sites = NET_ALLOW, DNS_ONLY, self.sites
        elif self.what == WHAT_BLOCK_SITES:
            network, dns_mode, sites = NET_ALLOW, DNS_BLOCK, self.sites
        else:
            network, dns_mode, sites = NET_ALLOW, DNS_ALL, []

        windows = [self.window] if self.window is not None else []
        if self.when == WHEN_WEEKDAYS:
            schedule = Schedule(days=WEEKDAYS, windows=windows)
        elif self.when == WHEN_WEEKEND:
            schedule = Schedule(days=WEEKEND, windows=windows)
        else:
            schedule = Schedule(days=None, windows=windows)

        return Policy(
            name=self.title,
            targets=self.who,
            network=network,
            dns_mode=dns_mode,
            sites=sites,
            schedule=schedule,
            usb_gated=(self.unless == UNLESS_USB_KEY),
            unlock_key_id=self.key_id,
        )

    def describe(self) -> str:
        """The strip read back as a sentence (shown in the policy UI)."""
        who = f"{len(self.who)} device(s)"
        what = {
            WHAT_ONLY_SITES: f"may only use {', '.join(self.sites)}",
            WHAT_BLOCK_SITES: f"may use everything except {', '.join(self.sites)}",
            WHAT_NO_NETWORK: "may not use the network",
            WHAT_EVERYTHING: "may use everything",
        }[self.what]
        when = {
            WHEN_ALWAYS: "at any time",
            WHEN_WEEKDAYS: "on weekdays",
            WHEN_WEEKEND: "at the weekend",
        }[self.when]
        if self.window is not None:
            when += f" during {self.window!r}"
        unless = (
            f", unless USB key {self.key_id!r} is inserted"
            if self.unless == UNLESS_USB_KEY
            else ""
        )
        return f"{who} {what} {when}{unless}."

    @classmethod
    def kids_facebook_weekdays(
        cls,
        kids: Iterable[Union[str, MACAddress]],
        key_id: str = "parent-key",
        homework_done_after: str = "17:00",
    ) -> "CartoonStrip":
        """The paper's worked example, ready to compile."""
        strip = cls("kids: Facebook on weekdays after homework")
        strip.panel_who(*kids)
        strip.panel_what(WHAT_ONLY_SITES, ["facebook.com"])
        strip.panel_when(WHEN_WEEKDAYS, homework_done_after, "22:00")
        strip.panel_unless(UNLESS_USB_KEY, key_id)
        return strip
