"""Policy engine: stores policies, compiles restrictions, enforces them.

The compiler folds every policy applying to a device into one
:class:`~repro.policy.model.Restrictions` (most restrictive wins: any
network-deny denies; DNS whitelists intersect-by-union of constraints —
a device under an ``only`` policy is whitelist-mode, with its block lists
also applied).

Enforcement pushes compiled restrictions into the mechanisms the paper
names: the DHCP server's device policy (network access), the DNS proxy's
site filter, and flow eviction on the datapath so existing connections
stop the moment a restriction activates.
"""

from __future__ import annotations

import logging
from typing import Dict, Iterable, List, Optional, Set, TYPE_CHECKING, Union

from ..core.errors import PolicyError
from ..core.events import EventBus
from ..net.addresses import MACAddress
from .model import DNS_ALL, DNS_BLOCK, DNS_ONLY, NET_DENY, Policy, Restrictions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..services.dhcp.server import DhcpServer
    from ..services.dnsproxy.filter import SiteFilter
    from ..services.routing import RouterCore

logger = logging.getLogger(__name__)


class PolicyEngine:
    """The router's policy store + compiler + enforcer."""

    def __init__(
        self,
        bus: EventBus,
        dhcp: Optional["DhcpServer"] = None,
        site_filter: Optional["SiteFilter"] = None,
        router_core: Optional["RouterCore"] = None,
    ):
        self.bus = bus
        self.dhcp = dhcp
        self.site_filter = site_filter
        self.router_core = router_core
        self._policies: Dict[int, Policy] = {}
        self._inserted_keys: Set[str] = set()
        self._policy_denied: Set[MACAddress] = set()
        # Devices ever targeted by a policy: they stay under management
        # after a policy is removed so their restrictions get cleared.
        self._managed: Set[MACAddress] = set()
        self.enforcements = 0
        # Live scheduler handle; re-armed via start(), never serialized.
        self._timer = None  # repro: ignore[deep-snapshot]

    # ------------------------------------------------------------------
    # Periodic re-enforcement
    # ------------------------------------------------------------------

    def start_scheduler(self, sim, interval: float = 30.0) -> None:
        """Re-enforce periodically so schedule transitions take effect.

        Policies carry time conditions ("weekdays after 17:00"); their
        activation changes with the clock, not only with install/remove
        or USB events, so the compiled restrictions must be refreshed.
        ``interval`` bounds how stale an elapsed window can be.
        """
        if self._timer is not None:
            self._timer.cancel()
        self._timer = sim.schedule_periodic(interval, lambda: self.enforce(sim.now))

    def stop_scheduler(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # Policy store
    # ------------------------------------------------------------------

    def install(self, policy: Policy, now: float = 0.0) -> Policy:
        self._policies[policy.id] = policy
        self._managed.update(policy.targets)
        self.bus.emit("policy.installed", timestamp=now, policy_id=policy.id, name=policy.name)
        self.enforce(now)
        return policy

    def install_document(self, document: Dict[str, object], now: float = 0.0) -> Policy:
        """Validate a policy dict (REST body, config file) and install it.

        Raises :class:`PolicyError` for any malformed document, so callers
        above the policy layer (the control API) never need to import the
        policy model to distinguish validation failures.
        """
        try:
            policy = Policy.from_dict(document)
        except PolicyError:
            raise
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            raise PolicyError(f"malformed policy document: {exc}") from exc
        return self.install(policy, now)

    def remove(self, policy_id: int, now: float = 0.0) -> None:
        policy = self._policies.pop(policy_id, None)
        if policy is None:
            raise PolicyError(f"no policy {policy_id}")
        self.bus.emit("policy.removed", timestamp=now, policy_id=policy_id)
        self.enforce(now)

    def get(self, policy_id: int) -> Policy:
        try:
            return self._policies[policy_id]
        except KeyError:
            raise PolicyError(f"no policy {policy_id}") from None

    def policies(self) -> List[Policy]:
        return sorted(self._policies.values(), key=lambda p: p.id)

    def set_enabled(self, policy_id: int, enabled: bool, now: float = 0.0) -> None:
        self.get(policy_id).enabled = enabled
        self.enforce(now)

    # ------------------------------------------------------------------
    # USB key mediation
    # ------------------------------------------------------------------

    def key_inserted(self, key_id: str, now: float = 0.0) -> None:
        """The udev monitor saw a policy USB key: suspend gated policies."""
        self._inserted_keys.add(key_id)
        self.bus.emit("policy.key.inserted", timestamp=now, key_id=key_id)
        self.enforce(now)

    def key_removed(self, key_id: str, now: float = 0.0) -> None:
        self._inserted_keys.discard(key_id)
        self.bus.emit("policy.key.removed", timestamp=now, key_id=key_id)
        self.enforce(now)

    @property
    def inserted_keys(self) -> Set[str]:
        return set(self._inserted_keys)

    def to_snapshot(self) -> Dict[str, object]:
        """Serialize the policy store as a JSON-able dict.

        The checkpoint surface ``repro.fleet`` persists and verifies on
        restore.  Policy ids come from a process-global counter, so the
        snapshot orders by (name, id) and restore-verification compares
        documents with ids stripped.
        """
        return {
            "policies": [
                policy.to_dict()
                for policy in sorted(
                    self._policies.values(), key=lambda p: (p.name, p.id)
                )
            ],
            "inserted_keys": sorted(self._inserted_keys),
            "managed": sorted(str(mac) for mac in self._managed),
            "policy_denied": sorted(str(mac) for mac in self._policy_denied),
            "enforcements": self.enforcements,
        }

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def targeted_devices(self) -> Set[MACAddress]:
        macs: Set[MACAddress] = set(self._managed)
        for policy in self._policies.values():
            macs.update(policy.targets)
        return macs

    def restrictions_for(self, mac: Union[str, MACAddress], now: float) -> Restrictions:
        """Fold all active policies targeting ``mac`` at time ``now``."""
        mac = MACAddress(mac)
        network_allowed = True
        whitelist: Optional[Set[str]] = None
        blocked: Set[str] = set()
        sources: List[int] = []
        for policy in self._policies.values():
            if not policy.applies_to(mac):
                continue
            if not policy.active(now, self._inserted_keys):
                continue
            sources.append(policy.id)
            if policy.network == NET_DENY:
                network_allowed = False
            if policy.dns_mode == DNS_ONLY:
                sites = set(policy.sites)
                whitelist = sites if whitelist is None else (whitelist & sites)
            elif policy.dns_mode == DNS_BLOCK:
                blocked.update(policy.sites)
        if whitelist is not None:
            effective = sorted(whitelist - blocked)
            return Restrictions(network_allowed, DNS_ONLY, effective, sources)
        if blocked:
            return Restrictions(network_allowed, DNS_BLOCK, sorted(blocked), sources)
        return Restrictions(network_allowed, DNS_ALL, [], sources)

    # ------------------------------------------------------------------
    # Enforcement
    # ------------------------------------------------------------------

    def enforce(self, now: float) -> Dict[str, Restrictions]:
        """Recompile and push restrictions for every targeted device."""
        self.enforcements += 1
        outcome: Dict[str, Restrictions] = {}
        for mac in self.targeted_devices():
            restrictions = self.restrictions_for(mac, now)
            outcome[str(mac)] = restrictions
            self._apply(mac, restrictions, now)
        return outcome

    def _apply(self, mac: MACAddress, restrictions: Restrictions, now: float) -> None:
        # 1. Network access through the DHCP device policy.  The engine
        # remembers which devices *it* denied so lifting the policy
        # re-permits them without touching manual (control-UI) denials.
        if self.dhcp is not None:
            if not restrictions.network_allowed:
                if self.dhcp.policy.is_permitted(mac):
                    self.dhcp.policy.deny(mac, now)
                    self.dhcp.revoke_device(mac)
                    if self.router_core is not None:
                        self.router_core.evict_device(mac)
                self._policy_denied.add(mac)
            elif mac in self._policy_denied:
                self._policy_denied.discard(mac)
                self.dhcp.policy.permit(mac, now)

        # 2. DNS restrictions through the proxy's site filter.
        if self.site_filter is not None:
            from ..services.dnsproxy.filter import DeviceRule, MODE_ALLOW, MODE_DENY

            if restrictions.dns_mode == DNS_ONLY:
                self.site_filter.set_rule(mac, DeviceRule(MODE_DENY, allowed=restrictions.sites))
            elif restrictions.dns_mode == DNS_BLOCK:
                self.site_filter.set_rule(mac, DeviceRule(MODE_ALLOW, blocked=restrictions.sites))
            else:
                self.site_filter.clear_rule(mac)

        # 3. Evict live flows so restrictions bite immediately.
        if self.router_core is not None and not restrictions.unrestricted:
            self.router_core.evict_device(mac)

        self.bus.emit(
            "policy.applied",
            timestamp=now,
            mac=str(mac),
            restrictions=restrictions.to_dict(),
        )
