"""ARP (RFC 826) for IPv4 over Ethernet.

The DHCP server's isolating allocation relies on the router answering ARP
for every address (proxy ARP), so devices never learn each other's real
MAC addresses and all traffic crosses the router.
"""

from __future__ import annotations

from typing import Union

from .addresses import IPv4Address, MACAddress
from .packet import Packet, PacketError

ARP_REQUEST = 1
ARP_REPLY = 2

_HW_ETHERNET = 1
_PROTO_IPV4 = 0x0800
_WIRE_LEN = 28


class ARP(Packet):
    """An Ethernet/IPv4 ARP packet."""

    def __init__(
        self,
        opcode: int,
        sender_mac: Union[str, MACAddress],
        sender_ip: Union[str, IPv4Address],
        target_mac: Union[str, MACAddress],
        target_ip: Union[str, IPv4Address],
    ):
        if opcode not in (ARP_REQUEST, ARP_REPLY):
            raise PacketError(f"unsupported ARP opcode: {opcode}")
        self.opcode = opcode
        self.sender_mac = MACAddress(sender_mac)
        self.sender_ip = IPv4Address(sender_ip)
        self.target_mac = MACAddress(target_mac)
        self.target_ip = IPv4Address(target_ip)
        self.payload = b""

    @classmethod
    def request(
        cls,
        sender_mac: Union[str, MACAddress],
        sender_ip: Union[str, IPv4Address],
        target_ip: Union[str, IPv4Address],
    ) -> "ARP":
        """A who-has request for ``target_ip``."""
        return cls(ARP_REQUEST, sender_mac, sender_ip, MACAddress.zero(), target_ip)

    @classmethod
    def reply(
        cls,
        sender_mac: Union[str, MACAddress],
        sender_ip: Union[str, IPv4Address],
        target_mac: Union[str, MACAddress],
        target_ip: Union[str, IPv4Address],
    ) -> "ARP":
        """An is-at reply answering a request."""
        return cls(ARP_REPLY, sender_mac, sender_ip, target_mac, target_ip)

    def pack(self) -> bytes:
        return (
            _HW_ETHERNET.to_bytes(2, "big")
            + _PROTO_IPV4.to_bytes(2, "big")
            + bytes([6, 4])
            + self.opcode.to_bytes(2, "big")
            + self.sender_mac.packed
            + self.sender_ip.packed
            + self.target_mac.packed
            + self.target_ip.packed
        )

    @classmethod
    def unpack(cls, data: bytes) -> "ARP":
        if len(data) < _WIRE_LEN:
            raise PacketError(f"ARP packet too short: {len(data)} bytes")
        hw = int.from_bytes(data[0:2], "big")
        proto = int.from_bytes(data[2:4], "big")
        if hw != _HW_ETHERNET or proto != _PROTO_IPV4:
            raise PacketError(f"unsupported ARP hw/proto: {hw}/{proto:#x}")
        if data[4] != 6 or data[5] != 4:
            raise PacketError("unexpected ARP address lengths")
        opcode = int.from_bytes(data[6:8], "big")
        return cls(
            opcode=opcode,
            sender_mac=MACAddress(data[8:14]),
            sender_ip=IPv4Address(data[14:18]),
            target_mac=MACAddress(data[18:24]),
            target_ip=IPv4Address(data[24:28]),
        )

    def __repr__(self) -> str:
        kind = "request" if self.opcode == ARP_REQUEST else "reply"
        return (
            f"ARP({kind}, sender={self.sender_mac}/{self.sender_ip}, "
            f"target={self.target_mac}/{self.target_ip})"
        )
