"""TCP (RFC 793) segments.

The simulator models application traffic (web, streaming, mail, ...) as
TCP flows; the measurement plane observes their five-tuples and byte
counts to populate the hwdb ``Flows`` table.
"""

from __future__ import annotations

from typing import Union

from .addresses import IPv4Address
from .checksum import internet_checksum, pseudo_header
from .ipv4 import PROTO_TCP
from .packet import Packet, PacketError, Payload

_MIN_HEADER_LEN = 20

# Flag bits.
FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20

# Well-known service ports used by the traffic generators and the
# application-protocol mapping (paper §1: "imperfect application-protocol
# mapping").
PORT_HTTP = 80
PORT_HTTPS = 443
PORT_SSH = 22
PORT_SMTP = 25
PORT_IMAP = 143
PORT_IMAPS = 993
PORT_RTMP = 1935
PORT_BITTORRENT = 6881


class TCP(Packet):
    """A TCP segment (no options — the simulator does not need them)."""

    def __init__(
        self,
        sport: int,
        dport: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = ACK,
        window: int = 65535,
        urgent: int = 0,
        payload: Payload = b"",
    ):
        for name, port in (("sport", sport), ("dport", dport)):
            if not 0 <= int(port) <= 0xFFFF:
                raise PacketError(f"TCP {name} out of range: {port}")
        self.sport = int(sport)
        self.dport = int(dport)
        self.seq = int(seq) & 0xFFFFFFFF
        self.ack = int(ack) & 0xFFFFFFFF
        self.flags = int(flags)
        self.window = int(window)
        self.urgent = int(urgent)
        self.payload = payload

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & SYN) and not (self.flags & ACK)

    @property
    def is_synack(self) -> bool:
        return bool(self.flags & SYN) and bool(self.flags & ACK)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & RST)

    def flag_names(self) -> str:
        """Human-readable flag string, e.g. ``"SYN|ACK"``."""
        names = []
        for bit, name in (
            (SYN, "SYN"),
            (ACK, "ACK"),
            (FIN, "FIN"),
            (RST, "RST"),
            (PSH, "PSH"),
            (URG, "URG"),
        ):
            if self.flags & bit:
                names.append(name)
        return "|".join(names) if names else "none"

    def pack(self) -> bytes:
        body = self.pack_payload()
        offset_flags = (5 << 12) | (self.flags & 0x3F)
        return (
            self.sport.to_bytes(2, "big")
            + self.dport.to_bytes(2, "big")
            + self.seq.to_bytes(4, "big")
            + self.ack.to_bytes(4, "big")
            + offset_flags.to_bytes(2, "big")
            + self.window.to_bytes(2, "big")
            + b"\x00\x00"
            + self.urgent.to_bytes(2, "big")
            + body
        )

    def pack_with_pseudo(
        self, src: Union[str, IPv4Address], dst: Union[str, IPv4Address]
    ) -> bytes:
        raw = bytearray(self.pack())
        pseudo = pseudo_header(
            IPv4Address(src).packed, IPv4Address(dst).packed, PROTO_TCP, len(raw)
        )
        csum = internet_checksum(pseudo + bytes(raw))
        raw[16:18] = csum.to_bytes(2, "big")
        return bytes(raw)

    @classmethod
    def unpack(cls, data: bytes) -> "TCP":
        if len(data) < _MIN_HEADER_LEN:
            raise PacketError(f"TCP segment too short: {len(data)} bytes")
        offset = (data[12] >> 4) * 4
        if offset < _MIN_HEADER_LEN or len(data) < offset:
            raise PacketError(f"bad TCP data offset: {offset}")
        return cls(
            sport=int.from_bytes(data[0:2], "big"),
            dport=int.from_bytes(data[2:4], "big"),
            seq=int.from_bytes(data[4:8], "big"),
            ack=int.from_bytes(data[8:12], "big"),
            flags=data[13] & 0x3F,
            window=int.from_bytes(data[14:16], "big"),
            urgent=int.from_bytes(data[18:20], "big"),
            payload=data[offset:],
        )

    def __repr__(self) -> str:
        return (
            f"TCP(sport={self.sport}, dport={self.dport}, "
            f"flags={self.flag_names()}, len={len(self.pack_payload())})"
        )
