"""UDP (RFC 768). Carries DNS, DHCP and the hwdb RPC protocol."""

from __future__ import annotations

from typing import Union

from .addresses import IPv4Address
from .checksum import internet_checksum, pseudo_header
from .ipv4 import PROTO_UDP
from .packet import Packet, PacketError, Payload

_HEADER_LEN = 8

# Well-known ports the router's services listen on.
PORT_DNS = 53
PORT_DHCP_SERVER = 67
PORT_DHCP_CLIENT = 68
PORT_HWDB_RPC = 987  # the Homework database RPC endpoint


class UDP(Packet):
    """A UDP datagram."""

    def __init__(self, sport: int, dport: int, payload: Payload = b""):
        for name, port in (("sport", sport), ("dport", dport)):
            if not 0 <= int(port) <= 0xFFFF:
                raise PacketError(f"UDP {name} out of range: {port}")
        self.sport = int(sport)
        self.dport = int(dport)
        self.payload = payload

    def pack(self) -> bytes:
        """Pack without a checksum (legal for UDP over IPv4)."""
        body = self.pack_payload()
        length = _HEADER_LEN + len(body)
        return (
            self.sport.to_bytes(2, "big")
            + self.dport.to_bytes(2, "big")
            + length.to_bytes(2, "big")
            + b"\x00\x00"
            + body
        )

    def pack_with_pseudo(
        self, src: Union[str, IPv4Address], dst: Union[str, IPv4Address]
    ) -> bytes:
        """Pack with the checksum over the IPv4 pseudo header."""
        raw = bytearray(self.pack())
        length = len(raw)
        pseudo = pseudo_header(
            IPv4Address(src).packed, IPv4Address(dst).packed, PROTO_UDP, length
        )
        csum = internet_checksum(pseudo + bytes(raw))
        if csum == 0:  # RFC 768: transmitted as all ones
            csum = 0xFFFF
        raw[6:8] = csum.to_bytes(2, "big")
        return bytes(raw)

    @classmethod
    def unpack(cls, data: bytes) -> "UDP":
        if len(data) < _HEADER_LEN:
            raise PacketError(f"UDP datagram too short: {len(data)} bytes")
        sport = int.from_bytes(data[0:2], "big")
        dport = int.from_bytes(data[2:4], "big")
        length = int.from_bytes(data[4:6], "big")
        if length < _HEADER_LEN:
            raise PacketError(f"bad UDP length: {length}")
        body = data[_HEADER_LEN : max(_HEADER_LEN, min(length, len(data)))]
        payload: Payload = body
        if body and (dport == PORT_DNS or sport == PORT_DNS):
            from .dns_msg import DNSMessage

            try:
                payload = DNSMessage.unpack(bytes(body))
            except PacketError:
                pass
        elif body and {sport, dport} & {PORT_DHCP_SERVER, PORT_DHCP_CLIENT}:
            from .dhcp_msg import DHCPMessage

            try:
                payload = DHCPMessage.unpack(bytes(body))
            except PacketError:
                pass
        return cls(sport=sport, dport=dport, payload=payload)

    def __repr__(self) -> str:
        return f"UDP(sport={self.sport}, dport={self.dport})"
