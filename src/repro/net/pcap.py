"""Minimal pcap (libpcap classic format) reader/writer.

The measurement plane can persist observed frames to pcap so traces from
the simulated home network can be inspected with standard tools.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator, List, Tuple, Union

from .packet import Packet

_MAGIC = 0xA1B2C3D4
_MAGIC_SWAPPED = 0xD4C3B2A1
_VERSION_MAJOR = 2
_VERSION_MINOR = 4
LINKTYPE_ETHERNET = 1

_GLOBAL_HDR = struct.Struct("<IHHiIII")
_RECORD_HDR = struct.Struct("<IIII")


class PcapError(ValueError):
    """Raised on malformed pcap input."""


class PcapWriter:
    """Write Ethernet frames with timestamps to a pcap stream."""

    def __init__(self, stream: BinaryIO, snaplen: int = 65535):
        self._stream = stream
        self._snaplen = snaplen
        stream.write(
            _GLOBAL_HDR.pack(
                _MAGIC, _VERSION_MAJOR, _VERSION_MINOR, 0, 0, snaplen, LINKTYPE_ETHERNET
            )
        )

    def write(self, timestamp: float, frame: Union[bytes, Packet]) -> None:
        """Append one frame captured at ``timestamp`` (seconds)."""
        raw = frame.pack() if isinstance(frame, Packet) else bytes(frame)
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1_000_000))
        if micros >= 1_000_000:
            seconds += 1
            micros -= 1_000_000
        captured = raw[: self._snaplen]
        self._stream.write(
            _RECORD_HDR.pack(seconds, micros, len(captured), len(raw)) + captured
        )

    def flush(self) -> None:
        self._stream.flush()


class PcapReader:
    """Iterate (timestamp, frame-bytes) records from a pcap stream."""

    def __init__(self, stream: BinaryIO):
        self._stream = stream
        header = stream.read(_GLOBAL_HDR.size)
        if len(header) != _GLOBAL_HDR.size:
            raise PcapError("truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == _MAGIC:
            self._endian = "<"
        elif magic == _MAGIC_SWAPPED:
            self._endian = ">"
        else:
            raise PcapError(f"bad pcap magic: {magic:#x}")
        fields = struct.unpack(self._endian + "IHHiIII", header)
        self.snaplen = fields[5]
        self.linktype = fields[6]

    def __iter__(self) -> Iterator[Tuple[float, bytes]]:
        record = struct.Struct(self._endian + "IIII")
        while True:
            header = self._stream.read(record.size)
            if not header:
                return
            if len(header) != record.size:
                raise PcapError("truncated pcap record header")
            seconds, micros, caplen, _origlen = record.unpack(header)
            data = self._stream.read(caplen)
            if len(data) != caplen:
                raise PcapError("truncated pcap record body")
            yield seconds + micros / 1_000_000, data


def read_all(stream: BinaryIO) -> List[Tuple[float, bytes]]:
    """Read every record from a pcap stream into a list."""
    return list(PcapReader(stream))
