"""Ethernet II framing.

The Homework router's bridge ``dp0`` switches Ethernet frames between the
wired and wireless segments and the upstream port; the OpenFlow datapath
matches on the fields defined here.
"""

from __future__ import annotations

from typing import Union

from .addresses import MACAddress
from .packet import Packet, PacketError, Payload

# EtherType registry (the subset the home router cares about).
ETH_TYPE_IPV4 = 0x0800
ETH_TYPE_ARP = 0x0806
ETH_TYPE_VLAN = 0x8100
ETH_TYPE_IPV6 = 0x86DD
ETH_TYPE_LLDP = 0x88CC

_HEADER_LEN = 14
MIN_FRAME_LEN = 60  # without FCS
MAX_FRAME_LEN = 1514


class Ethernet(Packet):
    """An Ethernet II frame: dst(6) src(6) ethertype(2) payload."""

    def __init__(
        self,
        dst: Union[str, MACAddress],
        src: Union[str, MACAddress],
        ethertype: int = ETH_TYPE_IPV4,
        payload: Payload = b"",
    ):
        self.dst = MACAddress(dst)
        self.src = MACAddress(src)
        self.ethertype = int(ethertype)
        self.payload = payload

    @property
    def is_broadcast(self) -> bool:
        return self.dst.is_broadcast

    @property
    def is_multicast(self) -> bool:
        return self.dst.is_multicast

    def pack(self) -> bytes:
        body = self.pack_payload()
        frame = (
            self.dst.packed
            + self.src.packed
            + self.ethertype.to_bytes(2, "big")
            + body
        )
        return frame

    @classmethod
    def unpack(cls, data: bytes) -> "Ethernet":
        if len(data) < _HEADER_LEN:
            raise PacketError(f"Ethernet frame too short: {len(data)} bytes")
        dst = MACAddress(data[0:6])
        src = MACAddress(data[6:12])
        ethertype = int.from_bytes(data[12:14], "big")
        payload: Payload = data[_HEADER_LEN:]
        # Parse known upper layers eagerly so .find() works on received
        # frames; unknown ethertypes keep raw bytes.
        if ethertype == ETH_TYPE_IPV4 and payload:
            from .ipv4 import IPv4

            try:
                payload = IPv4.unpack(bytes(payload))
            except PacketError:
                pass
        elif ethertype == ETH_TYPE_ARP and payload:
            from .arp import ARP

            try:
                payload = ARP.unpack(bytes(payload))
            except PacketError:
                pass
        return cls(dst=dst, src=src, ethertype=ethertype, payload=payload)

    def __repr__(self) -> str:
        return (
            f"Ethernet(dst={self.dst}, src={self.src}, "
            f"ethertype=0x{self.ethertype:04x})"
        )
