"""A network attachment point with TX/RX accounting.

:class:`Port` is the lowest-level interface object in the stack: hosts,
the router's datapath and the simulator's links all exchange frames
through ports.  It lives in :mod:`repro.net` (not :mod:`repro.sim`)
because it is shared vocabulary between the packet layer, the OpenFlow
datapath and the simulator — the layering contract says ``net`` never
imports upward, and everything above may import ``net``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.link import Link

ReceiveHandler = Callable[[bytes, "Port"], None]


class Port:
    """An attachment point with a receive handler.

    ``number`` is the OpenFlow port number when the owner is the router's
    datapath; hosts use port 0.
    """

    def __init__(self, name: str, number: int = 0):
        self.name = name
        self.number = number
        self.link: Optional["Link"] = None
        self._handler: Optional[ReceiveHandler] = None
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.up = True

    def on_receive(self, handler: ReceiveHandler) -> None:
        """Install the owner's frame handler."""
        self._handler = handler

    def send(self, frame: bytes) -> bool:
        """Transmit ``frame`` onto the attached link.

        Returns False when the port is down or unattached (frame lost),
        mirroring a real NIC with no carrier.
        """
        if not self.up or self.link is None:
            return False
        self.tx_packets += 1
        self.tx_bytes += len(frame)
        self.link.transmit(self, frame)
        return True

    def deliver(self, frame: bytes) -> None:
        """Called by the link when a frame arrives at this port."""
        if not self.up:
            return
        self.rx_packets += 1
        self.rx_bytes += len(frame)
        if self._handler is not None:
            self._handler(frame, self)

    def __repr__(self) -> str:
        return f"Port({self.name!r}, number={self.number})"
