"""Packet-lineage trace context: the `trace` field that rides a frame.

This module is the shared vocabulary of the flight recorder (DESIGN.md
§16).  It lives in :mod:`repro.net` — the bottom of the layer DAG — so
every layer that touches a frame (links, the datapath, the controller,
the NOX services) can annotate the packet's causal chain without
importing upward.  The :class:`~repro.obs.trace.Tracer` that mints
contexts, samples, and publishes finished lineages to hwdb lives in
:mod:`repro.obs`; nothing here knows about it beyond duck typing.

A :class:`TraceContext` is a bounded append-only list of
:class:`TraceHop` records.  Context travels *on the frame bytes
themselves*: :func:`with_trace` wraps ``bytes`` in a
:class:`TracedBytes` subclass carrying a ``trace`` attribute, so the
context survives buffering in the datapath, PacketIn/PacketOut ``data``
fields, and the coalesced delivery batches of PR 8 — all of those move
the *object*, never a copy.  Any code that re-serialises a frame
(``frame.pack()`` after a NAT rewrite, a DNS reply built from a query)
must re-attach the context with :func:`with_trace`.
"""

from __future__ import annotations

from typing import List, Optional

#: Registered trace components — repro-lint's ``trace-event`` rule
#: rejects hop records naming a component outside this set, keeping the
#: ``trace.<component>.<verb>`` vocabulary closed and greppable.
TRACE_COMPONENTS = frozenset(
    {
        "host",
        "link",
        "datapath",
        "channel",
        "controller",
        "policy",
        "nat",
        "dhcp",
        "dns",
        "router",
    }
)

#: Hard cap on hops per context; a forwarding loop must not grow memory.
MAX_HOPS = 32

#: Terminal decisions that force publication regardless of sampling.
DROP_DECISIONS = frozenset({"drop", "deny", "blocked"})


class TraceHop:
    """One structured record in a packet's causal chain."""

    __slots__ = ("seq", "parent", "component", "verb", "decision", "cause", "t")

    def __init__(
        self,
        seq: int,
        parent: Optional[int],
        component: str,
        verb: str,
        decision: str,
        cause: str,
        t: float,
    ):
        self.seq = seq
        self.parent = parent
        self.component = component
        self.verb = verb
        self.decision = decision
        self.cause = cause
        self.t = t

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "parent": self.parent,
            "component": self.component,
            "verb": self.verb,
            "decision": self.decision,
            "cause": self.cause,
            "t": self.t,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TraceHop({self.seq}, {self.component}.{self.verb},"
            f" decision={self.decision!r}, cause={self.cause!r})"
        )


class TraceContext:
    """The lineage of one packet, appended to as it traverses the stack.

    ``sampled`` is decided at mint time by the tracer's deterministic
    counter (no RNG draws — golden-trace digests must not move).
    ``active`` starts equal to ``sampled`` and flips to True when a
    terminal drop/deny decision forces publication; hot-path call sites
    gate per-hop work on it, slow paths (already paying a controller
    round trip) record unconditionally so a late drop still has its
    prefix.
    """

    __slots__ = ("mint", "sampled", "active", "forced", "ended", "_hops", "clock", "tracer", "ordinal")

    def __init__(self, mint: int, sampled: bool, clock, tracer=None):
        self.mint = mint
        self.sampled = sampled
        self.active = sampled
        self.forced = False
        self.ended = False
        # Allocated on first hop: an unsampled packet that is never
        # dropped (the overwhelming majority) records nothing.
        self._hops: Optional[List[TraceHop]] = None
        self.clock = clock
        self.tracer = tracer
        self.ordinal = -1

    @property
    def trace_id(self) -> str:
        """The packet's id, formatted lazily — minting is hot-path work
        (one context per packet while tracing), rendering is not."""
        return f"{self.mint:08x}"

    @property
    def hops(self) -> List[TraceHop]:
        return self._hops if self._hops is not None else []

    def hop(
        self,
        component: str,
        verb: str,
        decision: str = "",
        cause: str = "",
        parent: Optional[int] = None,
    ) -> Optional[int]:
        """Append one hop; returns its seq (None once the cap is hit).

        ``parent`` defaults to the previous hop, rendering a linear
        chain; fan-out call sites may pass an earlier seq explicitly.
        """
        hops = self._hops
        if hops is None:
            hops = self._hops = []
        if self.ended or len(hops) >= MAX_HOPS:
            return None
        seq = len(hops)
        if parent is None:
            parent = seq - 1 if seq else None
        hops.append(
            TraceHop(seq, parent, component, verb, decision, cause, self.clock())
        )
        return seq

    def force(self) -> None:
        """Publish this lineage regardless of sampling (drops/denials)."""
        self.forced = True
        self.active = True

    def finish(
        self,
        component: str,
        verb: str,
        decision: str = "",
        cause: str = "",
    ) -> None:
        """Record the terminal hop and hand the context to the tracer.

        Idempotent: broadcast frames reach several hosts and only the
        first delivery ends the trace.
        """
        if self.ended:
            return
        if decision in DROP_DECISIONS:
            self.force()
        self.hop(component, verb, decision, cause)
        self.ended = True
        if self.tracer is not None and self.active:
            self.tracer.publish(self)

    @property
    def outcome(self) -> str:
        """``decision`` of the terminal hop ('' while in flight)."""
        if not self.ended or not self._hops:
            return ""
        return self._hops[-1].decision

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "sampled": self.sampled,
            "forced": self.forced,
            "outcome": self.outcome,
            "hops": [h.to_dict() for h in self.hops],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceContext({self.trace_id}, hops={len(self.hops)}, outcome={self.outcome!r})"


class TracedBytes(bytes):
    """Frame bytes carrying a ``trace`` attribute.

    ``isinstance(frame, bytes)`` stays true and every parser/len/struct
    path is untouched; only attribute storage is added.  ``bytes``
    subclasses cannot use ``__slots__``, so instances carry a dict —
    acceptable because TracedBytes exists only while tracing is enabled.
    """

    trace: Optional[TraceContext]


def with_trace(raw: bytes, ctx: Optional[TraceContext]) -> bytes:
    """Return ``raw`` tagged with ``ctx`` (or unchanged when ctx is None)."""
    if ctx is None:
        return raw
    tagged = TracedBytes(raw)
    tagged.trace = ctx
    return tagged


def trace_of(frame: bytes) -> Optional[TraceContext]:
    """The context riding on ``frame``, if any."""
    return getattr(frame, "trace", None)
