"""ICMP (RFC 792): echo for reachability probes, unreachable for policy denials.

When the policy engine denies a device's traffic it can answer with an
ICMP administratively-prohibited message rather than silently dropping,
which makes the control UI's feedback immediate.
"""

from __future__ import annotations

from .checksum import internet_checksum
from .packet import Packet, PacketError, Payload

TYPE_ECHO_REPLY = 0
TYPE_DEST_UNREACHABLE = 3
TYPE_ECHO_REQUEST = 8
TYPE_TIME_EXCEEDED = 11

CODE_NET_UNREACHABLE = 0
CODE_HOST_UNREACHABLE = 1
CODE_ADMIN_PROHIBITED = 13

_HEADER_LEN = 8


class ICMP(Packet):
    """An ICMP message with the 4-byte "rest of header" field."""

    def __init__(self, icmp_type: int, code: int = 0, rest: int = 0, payload: Payload = b""):
        self.icmp_type = int(icmp_type)
        self.code = int(code)
        self.rest = int(rest) & 0xFFFFFFFF
        self.payload = payload

    @classmethod
    def echo_request(cls, ident: int, seq: int, data: bytes = b"") -> "ICMP":
        return cls(TYPE_ECHO_REQUEST, 0, ((ident & 0xFFFF) << 16) | (seq & 0xFFFF), data)

    @classmethod
    def echo_reply(cls, ident: int, seq: int, data: bytes = b"") -> "ICMP":
        return cls(TYPE_ECHO_REPLY, 0, ((ident & 0xFFFF) << 16) | (seq & 0xFFFF), data)

    @classmethod
    def admin_prohibited(cls, original: bytes) -> "ICMP":
        """Destination-unreachable/communication-administratively-prohibited,
        quoting the first 28 bytes of the offending datagram per RFC 792."""
        return cls(TYPE_DEST_UNREACHABLE, CODE_ADMIN_PROHIBITED, 0, original[:28])

    @property
    def ident(self) -> int:
        return (self.rest >> 16) & 0xFFFF

    @property
    def seq(self) -> int:
        return self.rest & 0xFFFF

    @property
    def is_echo_request(self) -> bool:
        return self.icmp_type == TYPE_ECHO_REQUEST

    @property
    def is_echo_reply(self) -> bool:
        return self.icmp_type == TYPE_ECHO_REPLY

    def pack(self) -> bytes:
        body = self.pack_payload()
        msg = bytearray(
            bytes([self.icmp_type, self.code])
            + b"\x00\x00"
            + self.rest.to_bytes(4, "big")
            + body
        )
        csum = internet_checksum(bytes(msg))
        msg[2:4] = csum.to_bytes(2, "big")
        return bytes(msg)

    @classmethod
    def unpack(cls, data: bytes) -> "ICMP":
        if len(data) < _HEADER_LEN:
            raise PacketError(f"ICMP message too short: {len(data)} bytes")
        return cls(
            icmp_type=data[0],
            code=data[1],
            rest=int.from_bytes(data[4:8], "big"),
            payload=data[_HEADER_LEN:],
        )

    def __repr__(self) -> str:
        return f"ICMP(type={self.icmp_type}, code={self.code})"
