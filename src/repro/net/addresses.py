"""Address types used throughout the stack.

The Homework router identifies devices by their Ethernet (MAC) address and
maps them to IPv4 addresses via the DHCP server's ``Leases`` table.  These
small value types are used everywhere — packets, flow matches, hwdb rows —
so they are immutable, hashable and cheap.
"""

from __future__ import annotations

import re
from typing import Iterator, Tuple, Union

_MAC_RE = re.compile(r"^([0-9A-Fa-f]{2}[:\-]){5}[0-9A-Fa-f]{2}$")


class AddressError(ValueError):
    """Raised when an address string or byte sequence is malformed."""


class MACAddress:
    """A 48-bit Ethernet address.

    Accepts ``aa:bb:cc:dd:ee:ff`` / ``aa-bb-cc-dd-ee-ff`` strings, 6-byte
    sequences, integers, or another :class:`MACAddress`.
    """

    __slots__ = ("_value",)

    def __init__(self, value: Union[str, bytes, int, "MACAddress"]):
        if isinstance(value, MACAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise AddressError(f"MAC integer out of range: {value!r}")
            self._value = value
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 6:
                raise AddressError(f"MAC must be 6 bytes, got {len(value)}")
            self._value = int.from_bytes(bytes(value), "big")
        elif isinstance(value, str):
            if not _MAC_RE.match(value):
                raise AddressError(f"malformed MAC address: {value!r}")
            self._value = int(value.replace("-", ":").replace(":", ""), 16)
        else:
            raise AddressError(f"cannot build MAC from {type(value).__name__}")

    @classmethod
    def broadcast(cls) -> "MACAddress":
        """The all-ones broadcast address ``ff:ff:ff:ff:ff:ff``."""
        return cls((1 << 48) - 1)

    @classmethod
    def zero(cls) -> "MACAddress":
        """The all-zero address, used as a wildcard placeholder."""
        return cls(0)

    @property
    def packed(self) -> bytes:
        """The 6-byte big-endian wire representation."""
        return self._value.to_bytes(6, "big")

    @property
    def is_broadcast(self) -> bool:
        return self._value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        """True when the group bit (LSB of the first octet) is set."""
        return bool((self._value >> 40) & 0x01)

    @property
    def is_unicast(self) -> bool:
        return not self.is_multicast

    @property
    def oui(self) -> int:
        """The 24-bit Organizationally Unique Identifier."""
        return self._value >> 24

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MACAddress):
            return self._value == other._value
        if isinstance(other, str):
            try:
                return self._value == MACAddress(other)._value
            except AddressError:
                return False
        return NotImplemented

    def __lt__(self, other: "MACAddress") -> bool:
        return self._value < MACAddress(other)._value

    def __hash__(self) -> int:
        return hash(("mac", self._value))

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MACAddress({str(self)!r})"


class IPv4Address:
    """A 32-bit IPv4 address with the handful of helpers the router needs."""

    __slots__ = ("_value",)

    def __init__(self, value: Union[str, bytes, int, "IPv4Address"]):
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise AddressError(f"IPv4 integer out of range: {value!r}")
            self._value = value
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 4:
                raise AddressError(f"IPv4 must be 4 bytes, got {len(value)}")
            self._value = int.from_bytes(bytes(value), "big")
        elif isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise AddressError(f"malformed IPv4 address: {value!r}")
            acc = 0
            for part in parts:
                if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
                    raise AddressError(f"malformed IPv4 address: {value!r}")
                octet = int(part)
                if octet > 255:
                    raise AddressError(f"malformed IPv4 address: {value!r}")
                acc = (acc << 8) | octet
            self._value = acc
        else:
            raise AddressError(f"cannot build IPv4 from {type(value).__name__}")

    @classmethod
    def any(cls) -> "IPv4Address":
        return cls(0)

    @classmethod
    def broadcast(cls) -> "IPv4Address":
        return cls((1 << 32) - 1)

    @property
    def packed(self) -> bytes:
        return self._value.to_bytes(4, "big")

    @property
    def is_unspecified(self) -> bool:
        return self._value == 0

    @property
    def is_broadcast(self) -> bool:
        return self._value == (1 << 32) - 1

    @property
    def is_multicast(self) -> bool:
        return 224 <= (self._value >> 24) <= 239

    @property
    def is_private(self) -> bool:
        """RFC 1918 private ranges — home networks live here."""
        top = self._value >> 24
        if top == 10:
            return True
        if top == 172 and 16 <= ((self._value >> 16) & 0xFF) <= 31:
            return True
        if top == 192 and ((self._value >> 16) & 0xFF) == 168:
            return True
        return False

    @property
    def is_loopback(self) -> bool:
        return (self._value >> 24) == 127

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address((self._value + offset) & 0xFFFFFFFF)

    def __sub__(self, other: Union[int, "IPv4Address"]) -> Union["IPv4Address", int]:
        if isinstance(other, IPv4Address):
            return self._value - other._value
        return IPv4Address((self._value - other) & 0xFFFFFFFF)

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        if isinstance(other, str):
            try:
                return self._value == IPv4Address(other)._value
            except AddressError:
                return False
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        return self._value < IPv4Address(other)._value

    def __le__(self, other: "IPv4Address") -> bool:
        return self._value <= IPv4Address(other)._value

    def __hash__(self) -> int:
        return hash(("ip4", self._value))

    def __str__(self) -> str:
        v = self._value
        return f"{v >> 24}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"


class IPv4Network:
    """An IPv4 prefix (address + mask length) with membership and iteration.

    The DHCP server uses /30 per-device networks to force all inter-device
    traffic through the router, and the wider home subnet for the pool.
    """

    __slots__ = ("_network", "_prefixlen")

    def __init__(self, spec: Union[str, Tuple[IPv4Address, int]], prefixlen: int = None):
        if isinstance(spec, str) and prefixlen is None:
            if "/" not in spec:
                raise AddressError(f"network needs a /prefix: {spec!r}")
            addr_s, _, plen_s = spec.partition("/")
            addr = IPv4Address(addr_s)
            if not plen_s.isdigit():
                raise AddressError(f"malformed prefix length: {spec!r}")
            plen = int(plen_s)
        elif isinstance(spec, tuple):
            addr, plen = IPv4Address(spec[0]), int(spec[1])
        else:
            addr, plen = IPv4Address(spec), int(prefixlen)
        if not 0 <= plen <= 32:
            raise AddressError(f"prefix length out of range: {plen}")
        self._prefixlen = plen
        self._network = int(addr) & self.netmask_int

    @property
    def prefixlen(self) -> int:
        return self._prefixlen

    @property
    def netmask_int(self) -> int:
        if self._prefixlen == 0:
            return 0
        return ((1 << self._prefixlen) - 1) << (32 - self._prefixlen)

    @property
    def netmask(self) -> IPv4Address:
        return IPv4Address(self.netmask_int)

    @property
    def network_address(self) -> IPv4Address:
        return IPv4Address(self._network)

    @property
    def broadcast_address(self) -> IPv4Address:
        return IPv4Address(self._network | (~self.netmask_int & 0xFFFFFFFF))

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self._prefixlen)

    def hosts(self) -> Iterator[IPv4Address]:
        """Usable host addresses (excludes network/broadcast for <31)."""
        if self._prefixlen >= 31:
            for offset in range(self.num_addresses):
                yield IPv4Address(self._network + offset)
            return
        for offset in range(1, self.num_addresses - 1):
            yield IPv4Address(self._network + offset)

    def subnets(self, new_prefixlen: int) -> Iterator["IPv4Network"]:
        """Split this network into consecutive subnets of ``new_prefixlen``."""
        if new_prefixlen < self._prefixlen or new_prefixlen > 32:
            raise AddressError(
                f"cannot split /{self._prefixlen} into /{new_prefixlen}"
            )
        step = 1 << (32 - new_prefixlen)
        for base in range(self._network, self._network + self.num_addresses, step):
            yield IPv4Network((IPv4Address(base), new_prefixlen))

    def __contains__(self, addr: Union[str, IPv4Address]) -> bool:
        return (int(IPv4Address(addr)) & self.netmask_int) == self._network

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IPv4Network):
            return NotImplemented
        return self._network == other._network and self._prefixlen == other._prefixlen

    def __hash__(self) -> int:
        return hash(("net4", self._network, self._prefixlen))

    def __str__(self) -> str:
        return f"{IPv4Address(self._network)}/{self._prefixlen}"

    def __repr__(self) -> str:
        return f"IPv4Network({str(self)!r})"
