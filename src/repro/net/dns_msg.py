"""DNS wire format (RFC 1035), as needed by the DNS proxy NOX module.

The proxy intercepts outgoing queries, records the name→address bindings
from responses, and answers blocked names itself with NXDOMAIN — so we
implement query/response messages with A, PTR and CNAME records, plus
name decompression on parse.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from .addresses import IPv4Address
from .packet import Packet, PacketError

# Record types.
TYPE_A = 1
TYPE_NS = 2
TYPE_CNAME = 5
TYPE_PTR = 12
TYPE_TXT = 16
TYPE_AAAA = 28

CLASS_IN = 1

# Response codes.
RCODE_NOERROR = 0
RCODE_FORMERR = 1
RCODE_SERVFAIL = 2
RCODE_NXDOMAIN = 3
RCODE_REFUSED = 5

_MAX_NAME_LEN = 255
_MAX_LABEL_LEN = 63


def encode_name(name: str) -> bytes:
    """Encode a dotted name into length-prefixed labels."""
    name = name.rstrip(".")
    if len(name) > _MAX_NAME_LEN:
        raise PacketError(f"DNS name too long: {name!r}")
    out = bytearray()
    if name:
        for label in name.split("."):
            raw = label.encode("ascii", "strict")
            if not raw or len(raw) > _MAX_LABEL_LEN:
                raise PacketError(f"bad DNS label in {name!r}")
            out.append(len(raw))
            out.extend(raw)
    out.append(0)
    return bytes(out)


def decode_name(data: bytes, offset: int) -> Tuple[str, int]:
    """Decode a (possibly compressed) name; returns (name, next offset)."""
    labels: List[str] = []
    jumped = False
    next_offset = offset
    seen = set()
    while True:
        if offset >= len(data):
            raise PacketError("truncated DNS name")
        length = data[offset]
        if length & 0xC0 == 0xC0:  # compression pointer
            if offset + 1 >= len(data):
                raise PacketError("truncated DNS compression pointer")
            pointer = ((length & 0x3F) << 8) | data[offset + 1]
            if pointer in seen:
                raise PacketError("DNS compression loop")
            seen.add(pointer)
            if not jumped:
                next_offset = offset + 2
                jumped = True
            offset = pointer
            continue
        if length > _MAX_LABEL_LEN:
            raise PacketError(f"bad DNS label length: {length}")
        offset += 1
        if length == 0:
            break
        if offset + length > len(data):
            raise PacketError("truncated DNS label")
        labels.append(data[offset : offset + length].decode("ascii", "replace"))
        offset += length
    if not jumped:
        next_offset = offset
    return ".".join(labels), next_offset


def reverse_pointer_name(addr: Union[str, IPv4Address]) -> str:
    """The in-addr.arpa name for a reverse (PTR) lookup of ``addr``."""
    octets = str(IPv4Address(addr)).split(".")
    return ".".join(reversed(octets)) + ".in-addr.arpa"


class DNSQuestion:
    """A single question: (qname, qtype, qclass)."""

    __slots__ = ("qname", "qtype", "qclass")

    def __init__(self, qname: str, qtype: int = TYPE_A, qclass: int = CLASS_IN):
        self.qname = qname.rstrip(".").lower()
        self.qtype = int(qtype)
        self.qclass = int(qclass)

    def pack(self) -> bytes:
        return (
            encode_name(self.qname)
            + self.qtype.to_bytes(2, "big")
            + self.qclass.to_bytes(2, "big")
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DNSQuestion):
            return NotImplemented
        return (self.qname, self.qtype, self.qclass) == (
            other.qname,
            other.qtype,
            other.qclass,
        )

    def __hash__(self) -> int:
        return hash((self.qname, self.qtype, self.qclass))

    def __repr__(self) -> str:
        return f"DNSQuestion({self.qname!r}, type={self.qtype})"


class DNSRecord:
    """A resource record. ``rdata`` semantics depend on ``rtype``."""

    __slots__ = ("name", "rtype", "rclass", "ttl", "rdata")

    def __init__(
        self,
        name: str,
        rtype: int,
        rdata: Union[str, bytes, IPv4Address],
        ttl: int = 300,
        rclass: int = CLASS_IN,
    ):
        self.name = name.rstrip(".").lower()
        self.rtype = int(rtype)
        self.rclass = int(rclass)
        self.ttl = int(ttl)
        self.rdata = rdata

    @classmethod
    def a(cls, name: str, addr: Union[str, IPv4Address], ttl: int = 300) -> "DNSRecord":
        return cls(name, TYPE_A, IPv4Address(addr), ttl)

    @classmethod
    def ptr(cls, addr: Union[str, IPv4Address], name: str, ttl: int = 300) -> "DNSRecord":
        return cls(reverse_pointer_name(addr), TYPE_PTR, name.rstrip(".").lower(), ttl)

    @classmethod
    def cname(cls, name: str, target: str, ttl: int = 300) -> "DNSRecord":
        return cls(name, TYPE_CNAME, target.rstrip(".").lower(), ttl)

    @property
    def address(self) -> Optional[IPv4Address]:
        """The IPv4 address for A records, else None."""
        if self.rtype == TYPE_A:
            return IPv4Address(self.rdata)
        return None

    def _pack_rdata(self) -> bytes:
        if self.rtype == TYPE_A:
            return IPv4Address(self.rdata).packed
        if self.rtype in (TYPE_PTR, TYPE_CNAME, TYPE_NS):
            return encode_name(str(self.rdata))
        if isinstance(self.rdata, bytes):
            return self.rdata
        return str(self.rdata).encode("utf-8")

    def pack(self) -> bytes:
        rdata = self._pack_rdata()
        return (
            encode_name(self.name)
            + self.rtype.to_bytes(2, "big")
            + self.rclass.to_bytes(2, "big")
            + self.ttl.to_bytes(4, "big")
            + len(rdata).to_bytes(2, "big")
            + rdata
        )

    def __repr__(self) -> str:
        return f"DNSRecord({self.name!r}, type={self.rtype}, rdata={self.rdata!r})"


class DNSMessage(Packet):
    """A DNS query or response message."""

    def __init__(
        self,
        ident: int = 0,
        is_response: bool = False,
        rcode: int = RCODE_NOERROR,
        recursion_desired: bool = True,
        recursion_available: bool = False,
        authoritative: bool = False,
        questions: Optional[List[DNSQuestion]] = None,
        answers: Optional[List[DNSRecord]] = None,
        authorities: Optional[List[DNSRecord]] = None,
        additionals: Optional[List[DNSRecord]] = None,
    ):
        self.ident = int(ident) & 0xFFFF
        self.is_response = bool(is_response)
        self.rcode = int(rcode)
        self.recursion_desired = bool(recursion_desired)
        self.recursion_available = bool(recursion_available)
        self.authoritative = bool(authoritative)
        self.questions = list(questions or [])
        self.answers = list(answers or [])
        self.authorities = list(authorities or [])
        self.additionals = list(additionals or [])
        self.payload = b""

    @classmethod
    def query(cls, name: str, qtype: int = TYPE_A, ident: int = 0) -> "DNSMessage":
        """A standard recursive query for ``name``."""
        return cls(ident=ident, questions=[DNSQuestion(name, qtype)])

    def respond(
        self,
        answers: Optional[List[DNSRecord]] = None,
        rcode: int = RCODE_NOERROR,
    ) -> "DNSMessage":
        """Build the response message for this query."""
        return DNSMessage(
            ident=self.ident,
            is_response=True,
            rcode=rcode,
            recursion_desired=self.recursion_desired,
            recursion_available=True,
            questions=list(self.questions),
            answers=list(answers or []),
        )

    @property
    def qname(self) -> Optional[str]:
        """The first question's name, the common case for the proxy."""
        return self.questions[0].qname if self.questions else None

    def a_records(self) -> List[DNSRecord]:
        """All A records in the answer section."""
        return [r for r in self.answers if r.rtype == TYPE_A]

    def pack(self) -> bytes:
        flags = 0
        if self.is_response:
            flags |= 0x8000
        if self.authoritative:
            flags |= 0x0400
        if self.recursion_desired:
            flags |= 0x0100
        if self.recursion_available:
            flags |= 0x0080
        flags |= self.rcode & 0xF
        header = (
            self.ident.to_bytes(2, "big")
            + flags.to_bytes(2, "big")
            + len(self.questions).to_bytes(2, "big")
            + len(self.answers).to_bytes(2, "big")
            + len(self.authorities).to_bytes(2, "big")
            + len(self.additionals).to_bytes(2, "big")
        )
        body = b"".join(q.pack() for q in self.questions)
        for section in (self.answers, self.authorities, self.additionals):
            body += b"".join(r.pack() for r in section)
        return header + body

    @classmethod
    def unpack(cls, data: bytes) -> "DNSMessage":
        if len(data) < 12:
            raise PacketError(f"DNS message too short: {len(data)} bytes")
        ident = int.from_bytes(data[0:2], "big")
        flags = int.from_bytes(data[2:4], "big")
        counts = [int.from_bytes(data[i : i + 2], "big") for i in (4, 6, 8, 10)]
        msg = cls(
            ident=ident,
            is_response=bool(flags & 0x8000),
            rcode=flags & 0xF,
            recursion_desired=bool(flags & 0x0100),
            recursion_available=bool(flags & 0x0080),
            authoritative=bool(flags & 0x0400),
        )
        offset = 12
        for _ in range(counts[0]):
            qname, offset = decode_name(data, offset)
            if offset + 4 > len(data):
                raise PacketError("truncated DNS question")
            qtype = int.from_bytes(data[offset : offset + 2], "big")
            qclass = int.from_bytes(data[offset + 2 : offset + 4], "big")
            offset += 4
            msg.questions.append(DNSQuestion(qname, qtype, qclass))
        for count, section in zip(
            counts[1:], (msg.answers, msg.authorities, msg.additionals)
        ):
            for _ in range(count):
                record, offset = cls._unpack_record(data, offset)
                section.append(record)
        return msg

    @staticmethod
    def _unpack_record(data: bytes, offset: int) -> Tuple[DNSRecord, int]:
        name, offset = decode_name(data, offset)
        if offset + 10 > len(data):
            raise PacketError("truncated DNS record header")
        rtype = int.from_bytes(data[offset : offset + 2], "big")
        rclass = int.from_bytes(data[offset + 2 : offset + 4], "big")
        ttl = int.from_bytes(data[offset + 4 : offset + 8], "big")
        rdlen = int.from_bytes(data[offset + 8 : offset + 10], "big")
        offset += 10
        if offset + rdlen > len(data):
            raise PacketError("truncated DNS rdata")
        raw = data[offset : offset + rdlen]
        rdata: Union[str, bytes, IPv4Address]
        if rtype == TYPE_A and rdlen == 4:
            rdata = IPv4Address(raw)
        elif rtype in (TYPE_PTR, TYPE_CNAME, TYPE_NS):
            rdata, _ = decode_name(data, offset)
        else:
            rdata = bytes(raw)
        offset += rdlen
        return DNSRecord(name, rtype, rdata, ttl, rclass), offset

    def __repr__(self) -> str:
        kind = "response" if self.is_response else "query"
        return (
            f"DNSMessage({kind}, id={self.ident}, q={self.qname!r}, "
            f"answers={len(self.answers)}, rcode={self.rcode})"
        )
