"""IPv4 (RFC 791) header with checksum computation and upper-layer parsing."""

from __future__ import annotations

from typing import Union

from .addresses import IPv4Address
from .checksum import internet_checksum
from .packet import Packet, PacketError, Payload

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_MIN_HEADER_LEN = 20
DEFAULT_TTL = 64


class IPv4(Packet):
    """An IPv4 datagram (no options support — the home stack never sets any)."""

    def __init__(
        self,
        src: Union[str, IPv4Address],
        dst: Union[str, IPv4Address],
        proto: int = PROTO_UDP,
        ttl: int = DEFAULT_TTL,
        tos: int = 0,
        ident: int = 0,
        flags: int = 0,
        frag_offset: int = 0,
        payload: Payload = b"",
    ):
        self.src = IPv4Address(src)
        self.dst = IPv4Address(dst)
        self.proto = int(proto)
        self.ttl = int(ttl)
        self.tos = int(tos)
        self.ident = int(ident)
        self.flags = int(flags)
        self.frag_offset = int(frag_offset)
        self.payload = payload

    def pack(self) -> bytes:
        body = self.pack_payload()
        # UDP/TCP checksums need the pseudo header, so compute them here
        # where src/dst are known, if the payload layer requests it.
        if isinstance(self.payload, Packet) and hasattr(self.payload, "pack_with_pseudo"):
            body = self.payload.pack_with_pseudo(self.src, self.dst)
        total_len = _MIN_HEADER_LEN + len(body)
        ver_ihl = (4 << 4) | 5
        flags_frag = ((self.flags & 0x7) << 13) | (self.frag_offset & 0x1FFF)
        header = bytearray(
            bytes([ver_ihl, self.tos])
            + total_len.to_bytes(2, "big")
            + self.ident.to_bytes(2, "big")
            + flags_frag.to_bytes(2, "big")
            + bytes([self.ttl, self.proto])
            + b"\x00\x00"
            + self.src.packed
            + self.dst.packed
        )
        csum = internet_checksum(bytes(header))
        header[10:12] = csum.to_bytes(2, "big")
        return bytes(header) + body

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4":
        if len(data) < _MIN_HEADER_LEN:
            raise PacketError(f"IPv4 header too short: {len(data)} bytes")
        version = data[0] >> 4
        ihl = (data[0] & 0x0F) * 4
        if version != 4:
            raise PacketError(f"not IPv4: version={version}")
        if ihl < _MIN_HEADER_LEN or len(data) < ihl:
            raise PacketError(f"bad IHL: {ihl}")
        total_len = int.from_bytes(data[2:4], "big")
        if total_len < ihl:
            raise PacketError(f"bad total length: {total_len}")
        flags_frag = int.from_bytes(data[6:8], "big")
        pkt = cls(
            src=IPv4Address(data[12:16]),
            dst=IPv4Address(data[16:20]),
            proto=data[9],
            ttl=data[8],
            tos=data[1],
            ident=int.from_bytes(data[4:6], "big"),
            flags=flags_frag >> 13,
            frag_offset=flags_frag & 0x1FFF,
        )
        body = data[ihl : max(ihl, min(total_len, len(data)))]
        payload: Payload = body
        if pkt.proto == PROTO_UDP and body:
            from .udp import UDP

            try:
                payload = UDP.unpack(bytes(body))
            except PacketError:
                pass
        elif pkt.proto == PROTO_TCP and body:
            from .tcp import TCP

            try:
                payload = TCP.unpack(bytes(body))
            except PacketError:
                pass
        elif pkt.proto == PROTO_ICMP and body:
            from .icmp import ICMP

            try:
                payload = ICMP.unpack(bytes(body))
            except PacketError:
                pass
        pkt.payload = payload
        return pkt

    def decrement_ttl(self) -> bool:
        """Forwarders call this per hop; returns False when TTL expires."""
        if self.ttl <= 1:
            self.ttl = 0
            return False
        self.ttl -= 1
        return True

    def __repr__(self) -> str:
        return f"IPv4(src={self.src}, dst={self.dst}, proto={self.proto}, ttl={self.ttl})"
