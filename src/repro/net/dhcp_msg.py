"""DHCP wire format (RFC 2131/2132).

The Homework DHCP server is a NOX module: DHCP broadcasts reach the
controller as packet-in events, and these messages are what it parses and
emits.  BOOTP fixed fields plus the option TLVs the home deployment uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .addresses import IPv4Address, MACAddress
from .packet import Packet, PacketError

BOOTREQUEST = 1
BOOTREPLY = 2

# DHCP message types (option 53).
DHCPDISCOVER = 1
DHCPOFFER = 2
DHCPREQUEST = 3
DHCPDECLINE = 4
DHCPACK = 5
DHCPNAK = 6
DHCPRELEASE = 7
DHCPINFORM = 8

MESSAGE_TYPE_NAMES = {
    DHCPDISCOVER: "DISCOVER",
    DHCPOFFER: "OFFER",
    DHCPREQUEST: "REQUEST",
    DHCPDECLINE: "DECLINE",
    DHCPACK: "ACK",
    DHCPNAK: "NAK",
    DHCPRELEASE: "RELEASE",
    DHCPINFORM: "INFORM",
}

# Option codes.
OPT_PAD = 0
OPT_SUBNET_MASK = 1
OPT_ROUTER = 3
OPT_DNS_SERVER = 6
OPT_HOSTNAME = 12
OPT_REQUESTED_IP = 50
OPT_LEASE_TIME = 51
OPT_MESSAGE_TYPE = 53
OPT_SERVER_ID = 54
OPT_PARAM_REQUEST = 55
OPT_RENEWAL_TIME = 58
OPT_REBINDING_TIME = 59
OPT_CLIENT_ID = 61
OPT_END = 255

_MAGIC_COOKIE = b"\x63\x82\x53\x63"
_FIXED_LEN = 236


class DHCPMessage(Packet):
    """A BOOTP/DHCP message with an option dictionary."""

    def __init__(
        self,
        op: int,
        xid: int,
        chaddr: Union[str, MACAddress],
        ciaddr: Union[str, IPv4Address] = "0.0.0.0",
        yiaddr: Union[str, IPv4Address] = "0.0.0.0",
        siaddr: Union[str, IPv4Address] = "0.0.0.0",
        giaddr: Union[str, IPv4Address] = "0.0.0.0",
        secs: int = 0,
        flags: int = 0,
        options: Optional[Dict[int, bytes]] = None,
    ):
        if op not in (BOOTREQUEST, BOOTREPLY):
            raise PacketError(f"bad BOOTP op: {op}")
        self.op = op
        self.xid = int(xid) & 0xFFFFFFFF
        self.chaddr = MACAddress(chaddr)
        self.ciaddr = IPv4Address(ciaddr)
        self.yiaddr = IPv4Address(yiaddr)
        self.siaddr = IPv4Address(siaddr)
        self.giaddr = IPv4Address(giaddr)
        self.secs = int(secs) & 0xFFFF
        self.flags = int(flags) & 0xFFFF
        self.options: Dict[int, bytes] = dict(options or {})
        self.payload = b""

    # -- option helpers -------------------------------------------------

    @property
    def message_type(self) -> Optional[int]:
        raw = self.options.get(OPT_MESSAGE_TYPE)
        return raw[0] if raw else None

    @property
    def message_type_name(self) -> str:
        return MESSAGE_TYPE_NAMES.get(self.message_type or 0, "UNKNOWN")

    @property
    def requested_ip(self) -> Optional[IPv4Address]:
        raw = self.options.get(OPT_REQUESTED_IP)
        return IPv4Address(raw) if raw and len(raw) == 4 else None

    @property
    def server_id(self) -> Optional[IPv4Address]:
        raw = self.options.get(OPT_SERVER_ID)
        return IPv4Address(raw) if raw and len(raw) == 4 else None

    @property
    def hostname(self) -> Optional[str]:
        raw = self.options.get(OPT_HOSTNAME)
        return raw.decode("utf-8", "replace") if raw else None

    @property
    def lease_time(self) -> Optional[int]:
        raw = self.options.get(OPT_LEASE_TIME)
        return int.from_bytes(raw, "big") if raw and len(raw) == 4 else None

    def set_option_ip(self, code: int, addr: Union[str, IPv4Address]) -> None:
        self.options[code] = IPv4Address(addr).packed

    def set_option_u32(self, code: int, value: int) -> None:
        self.options[code] = int(value).to_bytes(4, "big")

    def set_option_str(self, code: int, value: str) -> None:
        self.options[code] = value.encode("utf-8")

    # -- client message builders ----------------------------------------

    @classmethod
    def discover(
        cls, chaddr: Union[str, MACAddress], xid: int, hostname: str = ""
    ) -> "DHCPMessage":
        msg = cls(BOOTREQUEST, xid, chaddr, flags=0x8000)
        msg.options[OPT_MESSAGE_TYPE] = bytes([DHCPDISCOVER])
        if hostname:
            msg.set_option_str(OPT_HOSTNAME, hostname)
        return msg

    @classmethod
    def request(
        cls,
        chaddr: Union[str, MACAddress],
        xid: int,
        requested_ip: Union[str, IPv4Address],
        server_id: Union[str, IPv4Address],
        hostname: str = "",
    ) -> "DHCPMessage":
        msg = cls(BOOTREQUEST, xid, chaddr, flags=0x8000)
        msg.options[OPT_MESSAGE_TYPE] = bytes([DHCPREQUEST])
        msg.set_option_ip(OPT_REQUESTED_IP, requested_ip)
        msg.set_option_ip(OPT_SERVER_ID, server_id)
        if hostname:
            msg.set_option_str(OPT_HOSTNAME, hostname)
        return msg

    @classmethod
    def release(
        cls,
        chaddr: Union[str, MACAddress],
        xid: int,
        ciaddr: Union[str, IPv4Address],
        server_id: Union[str, IPv4Address],
    ) -> "DHCPMessage":
        msg = cls(BOOTREQUEST, xid, chaddr, ciaddr=ciaddr)
        msg.options[OPT_MESSAGE_TYPE] = bytes([DHCPRELEASE])
        msg.set_option_ip(OPT_SERVER_ID, server_id)
        return msg

    # -- server reply builder -------------------------------------------

    def reply(
        self,
        message_type: int,
        yiaddr: Union[str, IPv4Address],
        server_id: Union[str, IPv4Address],
    ) -> "DHCPMessage":
        """Build a BOOTREPLY (OFFER/ACK/NAK) answering this request."""
        msg = DHCPMessage(
            BOOTREPLY,
            self.xid,
            self.chaddr,
            yiaddr=yiaddr,
            siaddr=server_id,
            flags=self.flags,
        )
        msg.options[OPT_MESSAGE_TYPE] = bytes([message_type])
        msg.set_option_ip(OPT_SERVER_ID, server_id)
        return msg

    # -- wire format ------------------------------------------------------

    def pack(self) -> bytes:
        fixed = bytearray(_FIXED_LEN)
        fixed[0] = self.op
        fixed[1] = 1  # htype: Ethernet
        fixed[2] = 6  # hlen
        fixed[3] = 0  # hops
        fixed[4:8] = self.xid.to_bytes(4, "big")
        fixed[8:10] = self.secs.to_bytes(2, "big")
        fixed[10:12] = self.flags.to_bytes(2, "big")
        fixed[12:16] = self.ciaddr.packed
        fixed[16:20] = self.yiaddr.packed
        fixed[20:24] = self.siaddr.packed
        fixed[24:28] = self.giaddr.packed
        fixed[28:34] = self.chaddr.packed
        opts = bytearray(_MAGIC_COOKIE)
        for code in sorted(self.options):
            value = self.options[code]
            if len(value) > 255:
                raise PacketError(f"DHCP option {code} too long")
            opts += bytes([code, len(value)]) + value
        opts.append(OPT_END)
        return bytes(fixed) + bytes(opts)

    @classmethod
    def unpack(cls, data: bytes) -> "DHCPMessage":
        if len(data) < _FIXED_LEN + 4:
            raise PacketError(f"DHCP message too short: {len(data)} bytes")
        if data[1] != 1 or data[2] != 6:
            raise PacketError("only Ethernet chaddr supported")
        msg = cls(
            op=data[0],
            xid=int.from_bytes(data[4:8], "big"),
            chaddr=MACAddress(data[28:34]),
            ciaddr=IPv4Address(data[12:16]),
            yiaddr=IPv4Address(data[16:20]),
            siaddr=IPv4Address(data[20:24]),
            giaddr=IPv4Address(data[24:28]),
            secs=int.from_bytes(data[8:10], "big"),
            flags=int.from_bytes(data[10:12], "big"),
        )
        if data[_FIXED_LEN : _FIXED_LEN + 4] != _MAGIC_COOKIE:
            raise PacketError("missing DHCP magic cookie")
        offset = _FIXED_LEN + 4
        while offset < len(data):
            code = data[offset]
            offset += 1
            if code == OPT_PAD:
                continue
            if code == OPT_END:
                break
            if offset >= len(data):
                raise PacketError("truncated DHCP option header")
            length = data[offset]
            offset += 1
            if offset + length > len(data):
                raise PacketError(f"truncated DHCP option {code}")
            msg.options[code] = bytes(data[offset : offset + length])
            offset += length
        return msg

    def __repr__(self) -> str:
        return (
            f"DHCPMessage({self.message_type_name}, xid=0x{self.xid:08x}, "
            f"chaddr={self.chaddr}, yiaddr={self.yiaddr})"
        )


# List of options a typical home client requests (option 55 value).
DEFAULT_PARAM_REQUEST = bytes(
    [OPT_SUBNET_MASK, OPT_ROUTER, OPT_DNS_SERVER, OPT_LEASE_TIME]
)
