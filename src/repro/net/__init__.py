"""Wire formats for the Homework router reproduction.

Real, symmetric pack/unpack implementations of every protocol the home
router touches: Ethernet, ARP, IPv4, UDP, TCP, ICMP, DNS and DHCP, plus
address types, the Internet checksum, and a pcap trace writer/reader.
"""

from .addresses import AddressError, IPv4Address, IPv4Network, MACAddress
from .arp import ARP, ARP_REPLY, ARP_REQUEST
from .checksum import internet_checksum, pseudo_header, verify_checksum
from .dhcp_msg import (
    BOOTREPLY,
    BOOTREQUEST,
    DHCPACK,
    DHCPDECLINE,
    DHCPDISCOVER,
    DHCPINFORM,
    DHCPMessage,
    DHCPNAK,
    DHCPOFFER,
    DHCPRELEASE,
    DHCPREQUEST,
)
from .dns_msg import (
    CLASS_IN,
    DNSMessage,
    DNSQuestion,
    DNSRecord,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
    RCODE_SERVFAIL,
    TYPE_A,
    TYPE_CNAME,
    TYPE_PTR,
    reverse_pointer_name,
)
from .ethernet import (
    ETH_TYPE_ARP,
    ETH_TYPE_IPV4,
    ETH_TYPE_IPV6,
    ETH_TYPE_LLDP,
    ETH_TYPE_VLAN,
    Ethernet,
)
from .icmp import ICMP
from .ipv4 import IPv4, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from .packet import Packet, PacketError
from .pcap import PcapReader, PcapWriter
from .tcp import TCP
from .udp import PORT_DHCP_CLIENT, PORT_DHCP_SERVER, PORT_DNS, PORT_HWDB_RPC, UDP

__all__ = [
    "AddressError",
    "IPv4Address",
    "IPv4Network",
    "MACAddress",
    "ARP",
    "ARP_REQUEST",
    "ARP_REPLY",
    "internet_checksum",
    "pseudo_header",
    "verify_checksum",
    "DHCPMessage",
    "BOOTREQUEST",
    "BOOTREPLY",
    "DHCPDISCOVER",
    "DHCPOFFER",
    "DHCPREQUEST",
    "DHCPDECLINE",
    "DHCPACK",
    "DHCPNAK",
    "DHCPRELEASE",
    "DHCPINFORM",
    "DNSMessage",
    "DNSQuestion",
    "DNSRecord",
    "CLASS_IN",
    "TYPE_A",
    "TYPE_CNAME",
    "TYPE_PTR",
    "RCODE_NOERROR",
    "RCODE_NXDOMAIN",
    "RCODE_REFUSED",
    "RCODE_SERVFAIL",
    "reverse_pointer_name",
    "Ethernet",
    "ETH_TYPE_IPV4",
    "ETH_TYPE_ARP",
    "ETH_TYPE_VLAN",
    "ETH_TYPE_IPV6",
    "ETH_TYPE_LLDP",
    "ICMP",
    "IPv4",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "PacketError",
    "PcapReader",
    "PcapWriter",
    "TCP",
    "UDP",
    "PORT_DNS",
    "PORT_DHCP_SERVER",
    "PORT_DHCP_CLIENT",
    "PORT_HWDB_RPC",
]
