"""Internet checksum (RFC 1071) used by IPv4, ICMP, UDP and TCP."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement sum of ``data``.

    Odd-length input is padded with a zero byte, per RFC 1071.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header(src: bytes, dst: bytes, proto: int, length: int) -> bytes:
    """The IPv4 pseudo header prepended for UDP/TCP checksums."""
    return src + dst + bytes([0, proto]) + length.to_bytes(2, "big")


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (checksum field included) sums to zero."""
    return internet_checksum(data) == 0
