"""Base classes for the packet model.

Every protocol layer is a :class:`Packet` subclass with symmetric
``pack()`` / ``unpack()`` methods producing real wire bytes.  Layers nest
through the ``payload`` attribute, so a full frame is e.g.::

    Ethernet(src=..., dst=..., payload=IPv4(..., payload=UDP(..., payload=b"...")))

The Open vSwitch-style datapath classifies packets by parsing these wire
bytes back into headers, exactly as the kernel flow extractor does.
"""

from __future__ import annotations

from typing import Optional, Type, TypeVar, Union

P = TypeVar("P", bound="Packet")

Payload = Union["Packet", bytes]


class PacketError(ValueError):
    """Raised when wire bytes cannot be parsed as the expected protocol."""


class Packet:
    """Abstract protocol layer.

    Subclasses must implement :meth:`pack` and :meth:`unpack` and should
    store their payload (next layer or raw bytes) in ``self.payload``.
    """

    payload: Payload

    def pack(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def unpack(cls: Type[P], data: bytes) -> P:
        raise NotImplementedError

    def pack_payload(self) -> bytes:
        """Serialise ``self.payload`` whether it is a layer or raw bytes."""
        payload = getattr(self, "payload", b"")
        if isinstance(payload, Packet):
            return payload.pack()
        if payload is None:
            return b""
        return bytes(payload)

    def find(self, layer: Type[P]) -> Optional[P]:
        """Return the first nested layer of type ``layer``, if any.

        Walks the payload chain, so ``frame.find(UDP)`` works on a full
        Ethernet frame.
        """
        node: Payload = self
        while isinstance(node, Packet):
            if isinstance(node, layer):
                return node
            node = getattr(node, "payload", b"")
        return None

    def __len__(self) -> int:
        return len(self.pack())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return type(self) is type(other) and self.pack() == other.pack()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.pack()))
