"""Source NAT (masquerading) for the upstream link.

A home router translates the private per-device addresses onto its
single upstream address.  This optional extension (off by default —
``RouterConfig(nat_enabled=True)`` enables it) gives the reproduction
that behaviour using only OpenFlow header-rewrite actions: outbound
flows get ``SetNwSrc``/``SetTpSrc`` to the router's upstream address and
an allocated external port, and a matching reverse rule de-translates
returning traffic.  Checksums are recomputed on re-serialisation.

Only TCP/UDP are translated; ICMP passes with address translation but no
port mapping (echo id is preserved well enough for the simulator).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.errors import ServiceError
from ..net.addresses import IPv4Address

#: (proto, device_ip, device_port) — the private side of a binding.
PrivateKey = Tuple[int, IPv4Address, int]


class NatBinding:
    """One active translation."""

    __slots__ = (
        "proto",
        "device_ip",
        "device_port",
        "external_port",
        "created_at",
        "last_used",
    )

    def __init__(
        self,
        proto: int,
        device_ip: IPv4Address,
        device_port: int,
        external_port: int,
        created_at: float,
    ):
        self.proto = proto
        self.device_ip = device_ip
        self.device_port = device_port
        self.external_port = external_port
        self.created_at = created_at
        self.last_used = created_at

    def __repr__(self) -> str:
        return (
            f"NatBinding(proto={self.proto}, "
            f"{self.device_ip}:{self.device_port} -> :{self.external_port})"
        )


#: Default idle lifetime of a binding, seconds of simulated time.  Real
#: home routers keep UDP conntrack entries for minutes, TCP for hours;
#: one shared value is enough for the reproduction's flow timescales.
DEFAULT_IDLE_TIMEOUT = 300.0


class NatTable:
    """Port-mapping state for source NAT.

    External ports are allocated from ``port_range`` per protocol;
    existing bindings are reused so one device flow keeps its mapping.
    Bindings expire after ``idle_timeout`` seconds without traffic
    (:meth:`expire_due` — the router sweeps this periodically); the
    allocator's round-robin next-port pointer keeps freshly released
    ports out of circulation for as long as possible so late packets to
    an expired binding are not mis-delivered to a new flow.
    """

    def __init__(
        self,
        external_ip: IPv4Address,
        port_range: Tuple[int, int] = (32768, 65535),
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
    ):
        self.external_ip = IPv4Address(external_ip)
        self.port_lo, self.port_hi = port_range
        if not (0 < self.port_lo < self.port_hi <= 65535):
            raise ServiceError(f"bad NAT port range {port_range}")
        if idle_timeout <= 0:
            raise ServiceError(f"NAT idle_timeout must be positive: {idle_timeout}")
        self.idle_timeout = float(idle_timeout)
        self._by_private: Dict[PrivateKey, NatBinding] = {}
        # Reverse index derived from _by_private; restore rebuilds it.
        self._by_external: Dict[Tuple[int, int], NatBinding] = {}  # repro: ignore[deep-snapshot]
        self._next_port: Dict[int, int] = {}
        self.allocations = 0
        self.expirations = 0

    def bind(
        self, proto: int, device_ip, device_port: int, now: float
    ) -> NatBinding:
        """Get (or create) the binding for an outbound flow."""
        device_ip = IPv4Address(device_ip)
        key: PrivateKey = (proto, device_ip, device_port)
        binding = self._by_private.get(key)
        if binding is not None:
            binding.last_used = now
            return binding
        external_port = self._allocate_port(proto)
        binding = NatBinding(proto, device_ip, device_port, external_port, now)
        self._by_private[key] = binding
        self._by_external[(proto, external_port)] = binding
        self.allocations += 1
        return binding

    def _allocate_port(self, proto: int) -> int:
        start = self._next_port.get(proto, self.port_lo)
        port = start
        for _ in range(self.port_hi - self.port_lo + 1):
            if (proto, port) not in self._by_external:
                self._next_port[proto] = port + 1 if port < self.port_hi else self.port_lo
                return port
            port = port + 1 if port < self.port_hi else self.port_lo
        raise ServiceError(f"NAT port range exhausted for proto {proto}")

    def lookup_external(
        self, proto: int, external_port: int, now: Optional[float] = None
    ) -> Optional[NatBinding]:
        """De-translate: which device owns this external port?

        Passing ``now`` refreshes the binding's idle timer — return
        traffic keeps a mapping alive just like outbound traffic does.
        """
        binding = self._by_external.get((proto, external_port))
        if binding is not None and now is not None:
            binding.last_used = now
        return binding

    def lookup_private(self, proto: int, device_ip, device_port: int) -> Optional[NatBinding]:
        return self._by_private.get((proto, IPv4Address(device_ip), device_port))

    def expire_due(self, now: float) -> List[NatBinding]:
        """Release bindings idle longer than ``idle_timeout``; returns them."""
        stale = [
            binding
            for binding in self._by_private.values()
            if now - binding.last_used >= self.idle_timeout
        ]
        for binding in stale:
            self.release(binding.proto, binding.external_port)
        self.expirations += len(stale)
        return stale

    def release(self, proto: int, external_port: int) -> None:
        binding = self._by_external.pop((proto, external_port), None)
        if binding is not None:
            self._by_private.pop(
                (binding.proto, binding.device_ip, binding.device_port), None
            )

    def to_snapshot(self) -> Dict[str, object]:
        """Serialize the translation state as a JSON-able dict.

        The checkpoint surface ``repro.fleet`` persists and verifies on
        restore.  Bindings are ordered by (proto, external_port) and the
        round-robin allocator pointers are included, so two identical
        tables always serialize identically and a replayed run that
        diverged in port allocation is caught.
        """
        return {
            "external_ip": str(self.external_ip),
            "port_range": [self.port_lo, self.port_hi],
            "idle_timeout": self.idle_timeout,
            "allocations": self.allocations,
            "expirations": self.expirations,
            "next_port": {str(proto): port for proto, port in sorted(self._next_port.items())},
            "bindings": [
                {
                    "proto": binding.proto,
                    "device_ip": str(binding.device_ip),
                    "device_port": binding.device_port,
                    "external_port": binding.external_port,
                    "created_at": binding.created_at,
                    "last_used": binding.last_used,
                }
                for binding in sorted(
                    self._by_private.values(),
                    key=lambda b: (b.proto, b.external_port),
                )
            ],
        }

    def release_device(self, device_ip) -> int:
        """Drop every binding of a device (lease revoked); returns count."""
        device_ip = IPv4Address(device_ip)
        stale = [
            binding
            for binding in self._by_private.values()
            if binding.device_ip == device_ip
        ]
        for binding in stale:
            self.release(binding.proto, binding.external_port)
        return len(stale)

    def __len__(self) -> int:
        return len(self._by_private)
