"""The DHCP lease database.

Leases map Ethernet to IP address (the hwdb ``Leases`` table mirrors
lease *events* from here).  Lease lifecycle: offered → bound → renewed /
expired / released, with expiry driven by the shared clock.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ...net.addresses import IPv4Address, MACAddress
from .pool import Allocation

STATE_OFFERED = "offered"
STATE_BOUND = "bound"
STATE_EXPIRED = "expired"
STATE_RELEASED = "released"


class Lease:
    """One device's lease."""

    __slots__ = (
        "mac",
        "allocation",
        "hostname",
        "state",
        "granted_at",
        "expires_at",
        "renew_count",
    )

    def __init__(
        self,
        mac: MACAddress,
        allocation: Allocation,
        hostname: str,
        granted_at: float,
        expires_at: float,
    ):
        self.mac = mac
        self.allocation = allocation
        self.hostname = hostname
        self.state = STATE_OFFERED
        self.granted_at = granted_at
        self.expires_at = expires_at
        self.renew_count = 0

    @property
    def ip(self) -> IPv4Address:
        return self.allocation.ip

    @property
    def gateway(self) -> IPv4Address:
        return self.allocation.gateway

    def active(self, now: float) -> bool:
        return self.state == STATE_BOUND and now < self.expires_at

    def __repr__(self) -> str:
        return (
            f"Lease(mac={self.mac}, ip={self.ip}, state={self.state}, "
            f"hostname={self.hostname!r})"
        )


class LeaseDatabase:
    """All leases, indexed by MAC and by IP."""

    def __init__(self) -> None:
        self._by_mac: Dict[MACAddress, Lease] = {}
        # Reverse index derived from _by_mac; restore rebuilds it.
        self._by_ip: Dict[IPv4Address, Lease] = {}  # repro: ignore[deep-snapshot]

    def offer(
        self,
        mac: Union[str, MACAddress],
        allocation: Allocation,
        hostname: str,
        now: float,
        lease_time: float,
    ) -> Lease:
        """Record an OFFER (replaces any previous lease for the MAC)."""
        mac = MACAddress(mac)
        old = self._by_mac.get(mac)
        if old is not None:
            self._by_ip.pop(old.ip, None)
        lease = Lease(mac, allocation, hostname, now, now + lease_time)
        self._by_mac[mac] = lease
        self._by_ip[lease.ip] = lease
        return lease

    def bind(self, mac: Union[str, MACAddress], now: float, lease_time: float) -> Optional[Lease]:
        """Move a lease to BOUND on DHCPACK; returns it (or None)."""
        lease = self._by_mac.get(MACAddress(mac))
        if lease is None:
            return None
        if lease.state == STATE_BOUND:
            lease.renew_count += 1
        lease.state = STATE_BOUND
        lease.expires_at = now + lease_time
        return lease

    def release(self, mac: Union[str, MACAddress]) -> Optional[Lease]:
        lease = self._by_mac.get(MACAddress(mac))
        if lease is not None and lease.state != STATE_RELEASED:
            lease.state = STATE_RELEASED
        return lease

    def expire_due(self, now: float) -> List[Lease]:
        """Mark overdue BOUND leases EXPIRED; returns them."""
        expired = []
        for lease in self._by_mac.values():
            if lease.state == STATE_BOUND and now >= lease.expires_at:
                lease.state = STATE_EXPIRED
                expired.append(lease)
        return expired

    def by_mac(self, mac: Union[str, MACAddress]) -> Optional[Lease]:
        return self._by_mac.get(MACAddress(mac))

    def by_ip(self, ip: Union[str, IPv4Address]) -> Optional[Lease]:
        return self._by_ip.get(IPv4Address(ip))

    def all(self) -> List[Lease]:
        return list(self._by_mac.values())

    def active(self, now: float) -> List[Lease]:
        return [lease for lease in self._by_mac.values() if lease.active(now)]

    def to_snapshot(self) -> List[Dict[str, object]]:
        """Serialize every lease as a JSON-able dict, ordered by MAC.

        This is the checkpoint surface ``repro.fleet`` persists and
        verifies on restore; ordering is by MAC string so two identical
        databases always serialize identically.
        """
        return [
            {
                "mac": str(lease.mac),
                "ip": str(lease.ip),
                "gateway": str(lease.gateway),
                "hostname": lease.hostname,
                "state": lease.state,
                "granted_at": lease.granted_at,
                "expires_at": lease.expires_at,
                "renew_count": lease.renew_count,
            }
            for lease in sorted(self._by_mac.values(), key=lambda l: str(l.mac))
        ]

    def __len__(self) -> int:
        return len(self._by_mac)
