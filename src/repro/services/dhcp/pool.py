"""DHCP address pools.

The Homework DHCP server "manages DHCP allocations to ensure that all
traffic flows are visible to software running on the router, avoiding
direct Ethernet-layer communication between devices."  The
:class:`IsolatingPool` implements that: each device receives its own /30
(device address + router-side gateway), so no two devices ever share a
subnet and every packet must cross the router.  :class:`FlatPool` is the
conventional shared-subnet alternative kept for the ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from ...core.errors import ServiceError
from ...net.addresses import IPv4Address, IPv4Network, MACAddress


class Allocation:
    """One device's addressing: its IP, gateway and enclosing network."""

    __slots__ = ("ip", "gateway", "network")

    def __init__(self, ip: IPv4Address, gateway: IPv4Address, network: IPv4Network):
        self.ip = ip
        self.gateway = gateway
        self.network = network

    @property
    def netmask(self) -> IPv4Address:
        return self.network.netmask

    def __repr__(self) -> str:
        return f"Allocation(ip={self.ip}, gw={self.gateway}, net={self.network})"


class AddressPool:
    """Base interface: allocate / release / lookup by MAC."""

    def allocate(self, mac: Union[str, MACAddress]) -> Allocation:
        raise NotImplementedError

    def release(self, mac: Union[str, MACAddress]) -> None:
        raise NotImplementedError

    def lookup(self, mac: Union[str, MACAddress]) -> Optional[Allocation]:
        raise NotImplementedError

    def allocation_for_ip(self, ip: Union[str, IPv4Address]) -> Optional[Allocation]:
        raise NotImplementedError


class IsolatingPool(AddressPool):
    """Per-device /30 allocation out of the home subnet.

    Within each /30 (addresses .0-.3): network, gateway (router side,
    proxy-ARP'd by the router), device, broadcast.  Devices re-joining
    get their previous allocation back (stable addressing, which the
    control UI's device metadata relies on).
    """

    def __init__(self, subnet: IPv4Network, reserve_first: int = 1):
        if subnet.prefixlen > 30:
            raise ServiceError(f"subnet {subnet} too small for /30 isolation")
        self.subnet = subnet
        self._subnets: Iterator[IPv4Network] = subnet.subnets(30)
        # Skip the /30s covering the router's own address block.
        self._skipped: List[IPv4Network] = []
        for _ in range(reserve_first):
            self._skipped.append(next(self._subnets))
        self._by_mac: Dict[MACAddress, Allocation] = {}
        self._by_ip: Dict[IPv4Address, Allocation] = {}
        self._gateways: Dict[IPv4Address, MACAddress] = {}
        self._released: List[IPv4Network] = []

    def allocate(self, mac: Union[str, MACAddress]) -> Allocation:
        mac = MACAddress(mac)
        existing = self._by_mac.get(mac)
        if existing is not None:
            return existing
        if self._released:
            network = self._released.pop(0)
        else:
            try:
                network = next(self._subnets)
            except StopIteration:
                raise ServiceError(f"address pool {self.subnet} exhausted") from None
        base = network.network_address
        allocation = Allocation(ip=base + 2, gateway=base + 1, network=network)
        self._by_mac[mac] = allocation
        self._by_ip[allocation.ip] = allocation
        self._gateways[allocation.gateway] = mac
        return allocation

    def release(self, mac: Union[str, MACAddress]) -> None:
        mac = MACAddress(mac)
        allocation = self._by_mac.pop(mac, None)
        if allocation is None:
            return
        del self._by_ip[allocation.ip]
        del self._gateways[allocation.gateway]
        self._released.append(allocation.network)

    def lookup(self, mac: Union[str, MACAddress]) -> Optional[Allocation]:
        return self._by_mac.get(MACAddress(mac))

    def allocation_for_ip(self, ip: Union[str, IPv4Address]) -> Optional[Allocation]:
        return self._by_ip.get(IPv4Address(ip))

    def is_gateway(self, ip: Union[str, IPv4Address]) -> bool:
        """True when ``ip`` is a router-side gateway address (proxy-ARP)."""
        return IPv4Address(ip) in self._gateways

    def allocations(self) -> Dict[MACAddress, Allocation]:
        return dict(self._by_mac)

    def __len__(self) -> int:
        return len(self._by_mac)


class FlatPool(AddressPool):
    """Conventional shared-subnet pool (the non-isolating baseline).

    All devices share the home subnet and the router's address as the
    gateway — device-to-device traffic stays at Ethernet layer and is
    invisible to the router, which is precisely what the paper's design
    avoids.  Included for the ablation comparison (bench T3).
    """

    def __init__(self, subnet: IPv4Network, gateway: IPv4Address, first_offset: int = 10):
        self.subnet = subnet
        self.gateway = gateway
        self._next = int(subnet.network_address) + first_offset
        self._by_mac: Dict[MACAddress, Allocation] = {}
        self._by_ip: Dict[IPv4Address, Allocation] = {}
        self._released: List[IPv4Address] = []

    def allocate(self, mac: Union[str, MACAddress]) -> Allocation:
        mac = MACAddress(mac)
        existing = self._by_mac.get(mac)
        if existing is not None:
            return existing
        if self._released:
            ip = self._released.pop(0)
        else:
            ip = IPv4Address(self._next)
            self._next += 1
            if ip not in self.subnet or ip == self.subnet.broadcast_address:
                raise ServiceError(f"address pool {self.subnet} exhausted")
        allocation = Allocation(ip=ip, gateway=self.gateway, network=self.subnet)
        self._by_mac[mac] = allocation
        self._by_ip[ip] = allocation
        return allocation

    def release(self, mac: Union[str, MACAddress]) -> None:
        mac = MACAddress(mac)
        allocation = self._by_mac.pop(mac, None)
        if allocation is None:
            return
        del self._by_ip[allocation.ip]
        self._released.append(allocation.ip)

    def lookup(self, mac: Union[str, MACAddress]) -> Optional[Allocation]:
        return self._by_mac.get(MACAddress(mac))

    def allocation_for_ip(self, ip: Union[str, IPv4Address]) -> Optional[Allocation]:
        return self._by_ip.get(IPv4Address(ip))

    def is_gateway(self, ip: Union[str, IPv4Address]) -> bool:
        return IPv4Address(ip) == self.gateway

    def allocations(self) -> Dict[MACAddress, Allocation]:
        return dict(self._by_mac)

    def __len__(self) -> int:
        return len(self._by_mac)
