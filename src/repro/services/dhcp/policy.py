"""Per-device access policy for the DHCP server.

Figure 3's control interface lets non-expert users "detect, interrogate
and supply metadata for devices requesting access, and to control the
DHCP server on a case-by-case basis by dragging the device's tab into the
appropriate permitted/denied category".  This is that state: every MAC is
PENDING, PERMITTED or DENIED, with user-supplied metadata attached.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from ...net.addresses import MACAddress

PENDING = "pending"
PERMITTED = "permitted"
DENIED = "denied"

VALID_STATES = (PENDING, PERMITTED, DENIED)


class DeviceRecord:
    """Everything the router knows about one device."""

    __slots__ = ("mac", "state", "metadata", "first_seen", "last_seen", "hostname")

    def __init__(self, mac: MACAddress, state: str, first_seen: float):
        self.mac = mac
        self.state = state
        self.metadata: Dict[str, str] = {}
        self.first_seen = first_seen
        self.last_seen = first_seen
        self.hostname = ""

    @property
    def display_name(self) -> str:
        """User-supplied name, falling back to hostname then MAC."""
        return self.metadata.get("name") or self.hostname or str(self.mac)

    def to_dict(self) -> Dict[str, object]:
        return {
            "mac": str(self.mac),
            "state": self.state,
            "metadata": dict(self.metadata),
            "hostname": self.hostname,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "display_name": self.display_name,
        }

    def __repr__(self) -> str:
        return f"DeviceRecord({self.mac}, {self.state}, {self.display_name!r})"


class DevicePolicyStore:
    """Tracks device access states; the DHCP server consults this.

    ``default_permit=False`` (the paper's deployment) means unknown
    devices sit in PENDING until a user permits them via the control
    interface — the DHCP server withholds addresses meanwhile.
    """

    def __init__(self, default_permit: bool = False):
        self.default_permit = default_permit
        self._devices: Dict[MACAddress, DeviceRecord] = {}
        self._listeners: List[Callable[[DeviceRecord, str], None]] = []

    def on_change(self, listener: Callable[[DeviceRecord, str], None]) -> None:
        """``listener(record, old_state)`` fires on every state change."""
        self._listeners.append(listener)

    def observe(self, mac: Union[str, MACAddress], now: float, hostname: str = "") -> DeviceRecord:
        """Record that ``mac`` was seen requesting access."""
        mac = MACAddress(mac)
        record = self._devices.get(mac)
        if record is None:
            state = PERMITTED if self.default_permit else PENDING
            record = DeviceRecord(mac, state, now)
            self._devices[mac] = record
            self._notify(record, "")
        record.last_seen = now
        if hostname:
            record.hostname = hostname
        return record

    def set_state(self, mac: Union[str, MACAddress], state: str, now: float = 0.0) -> DeviceRecord:
        if state not in VALID_STATES:
            raise ValueError(f"bad device state {state!r}")
        mac = MACAddress(mac)
        record = self._devices.get(mac)
        if record is None:
            record = DeviceRecord(mac, state, now)
            self._devices[mac] = record
            self._notify(record, "")
            return record
        old = record.state
        if old != state:
            record.state = state
            self._notify(record, old)
        return record

    def permit(self, mac: Union[str, MACAddress], now: float = 0.0) -> DeviceRecord:
        return self.set_state(mac, PERMITTED, now)

    def deny(self, mac: Union[str, MACAddress], now: float = 0.0) -> DeviceRecord:
        return self.set_state(mac, DENIED, now)

    def set_metadata(self, mac: Union[str, MACAddress], **metadata: str) -> DeviceRecord:
        mac = MACAddress(mac)
        record = self._devices.get(mac)
        if record is None:
            record = DeviceRecord(mac, PENDING, 0.0)
            self._devices[mac] = record
        record.metadata.update({k: str(v) for k, v in metadata.items()})
        return record

    def is_permitted(self, mac: Union[str, MACAddress]) -> bool:
        record = self._devices.get(MACAddress(mac))
        if record is None:
            return self.default_permit
        return record.state == PERMITTED

    def state_of(self, mac: Union[str, MACAddress]) -> str:
        record = self._devices.get(MACAddress(mac))
        if record is None:
            return PERMITTED if self.default_permit else PENDING
        return record.state

    def get(self, mac: Union[str, MACAddress]) -> Optional[DeviceRecord]:
        return self._devices.get(MACAddress(mac))

    def devices(self, state: Optional[str] = None) -> List[DeviceRecord]:
        records = sorted(self._devices.values(), key=lambda r: int(r.mac))
        if state is None:
            return records
        return [r for r in records if r.state == state]

    def _notify(self, record: DeviceRecord, old_state: str) -> None:
        for listener in self._listeners:
            listener(record, old_state)

    def __len__(self) -> int:
        return len(self._devices)
