"""The DHCP server NOX component.

DHCP broadcasts reach the controller as packet-ins (the datapath has no
matching flow for them); this component runs the protocol state machine,
consults the :class:`~repro.services.dhcp.policy.DevicePolicyStore`, and
answers with packet-outs.  Lease events are published on the router's
event bus (``dhcp.*``), which the hwdb lease collector and the artifact's
Mode 3 subscribe to.
"""

from __future__ import annotations

import logging
from typing import Optional

from ...core.config import RouterConfig
from ...core.events import EventBus
from ...net.addresses import IPv4Address, MACAddress
from ...net.dhcp_msg import (
    DHCPACK,
    DHCPDECLINE,
    DHCPDISCOVER,
    DHCPINFORM,
    DHCPMessage,
    DHCPNAK,
    DHCPOFFER,
    DHCPRELEASE,
    DHCPREQUEST,
    OPT_DNS_SERVER,
    OPT_LEASE_TIME,
    OPT_ROUTER,
    OPT_SUBNET_MASK,
)
from ...net.ethernet import ETH_TYPE_IPV4, Ethernet
from ...net.ipv4 import IPv4, PROTO_UDP
from ...net.packet import PacketError
from ...net.trace import trace_of, with_trace
from ...net.udp import PORT_DHCP_CLIENT, PORT_DHCP_SERVER, UDP
from ...nox.component import CONTINUE, Component, STOP
from ...nox.controller import EV_PACKET_IN
from ...openflow.actions import output
from ...openflow.match import extract_key
from ...openflow.messages import PacketIn
from .leases import LeaseDatabase, STATE_BOUND
from .policy import DENIED, DevicePolicyStore, PENDING
from .pool import AddressPool, FlatPool, IsolatingPool

logger = logging.getLogger(__name__)


class DhcpServer(Component):
    """The paper's DHCP server module."""

    name = "dhcp_server"

    def __init__(
        self,
        controller,
        config: RouterConfig,
        bus: EventBus,
        policy: Optional[DevicePolicyStore] = None,
        pool: Optional[AddressPool] = None,
    ):
        super().__init__(controller)
        self.config = config
        self.bus = bus
        self.policy = policy or DevicePolicyStore(config.default_permit)
        if pool is not None:
            self.pool = pool
        elif config.isolate_devices:
            self.pool = IsolatingPool(config.subnet)
        else:
            self.pool = FlatPool(config.subnet, config.router_ip)
        self.leases = LeaseDatabase()
        self.server_id = config.router_ip

        self.discovers = 0
        self.offers = 0
        self.acks = 0
        self.naks = 0
        self.withheld = 0

        # Telemetry: DISCOVER timestamps per client, so the ACK that
        # completes the handshake yields DISCOVER→ACK latency in
        # simulated seconds (controller round trips + client retries).
        self._discover_at = {}
        registry = getattr(controller, "registry", None)
        if registry is None:
            self._m_discovers = None
            self._m_acks = None
            self._m_naks = None
            self._m_handshake = None
        else:
            self._m_discovers = registry.counter("dhcp.discover_total")
            self._m_acks = registry.counter("dhcp.ack_total")
            self._m_naks = registry.counter("dhcp.nak_total")
            self._m_handshake = registry.histogram("dhcp.discover_to_ack_sim_seconds")

        self._expiry_timer = None

    def install(self) -> None:
        # Priority 10: DHCP runs before the routing component (100) so it
        # consumes DHCP packet-ins.
        self.register_handler(EV_PACKET_IN, self.handle_packet_in, priority=10)
        self._expiry_timer = self.sim.schedule_periodic(5.0, self._expire_leases)

    def uninstall(self) -> None:
        super().uninstall()
        if self._expiry_timer is not None:
            self._expiry_timer.cancel()
            self._expiry_timer = None

    # ------------------------------------------------------------------
    # Packet-in path
    # ------------------------------------------------------------------

    def handle_packet_in(self, msg: PacketIn) -> int:
        key = extract_key(msg.data, msg.in_port)
        if key is None or key.nw_proto != PROTO_UDP or key.tp_dst != PORT_DHCP_SERVER:
            return CONTINUE
        try:
            frame = Ethernet.unpack(msg.data)
        except PacketError:
            return CONTINUE
        request = frame.find(DHCPMessage)
        if request is None:
            udp = frame.find(UDP)
            if udp is None:
                return CONTINUE
            try:
                request = DHCPMessage.unpack(udp.pack_payload())
            except PacketError:
                return CONTINUE
        self._handle_dhcp(request, msg.in_port, trace_of(msg.data))
        return STOP

    def _handle_dhcp(self, request: DHCPMessage, in_port: int, ctx=None) -> None:
        mtype = request.message_type
        mac = request.chaddr
        hostname = request.hostname or ""
        record = self.policy.observe(mac, self.now, hostname)
        if ctx is not None:
            ctx.hop("dhcp", "handle", decision=f"type_{mtype}", cause=f"mac={mac}")
        if mtype == DHCPDISCOVER:
            self.discovers += 1
            if self._m_discovers is not None:
                self._m_discovers.inc()
                self._discover_at[mac] = self.now
            self._on_discover(request, record, in_port, ctx)
        elif mtype == DHCPREQUEST:
            self._on_request(request, record, in_port, ctx)
        elif mtype == DHCPRELEASE:
            self._on_release(request)
        elif mtype == DHCPDECLINE:
            self._revoke(mac, "declined")
        elif mtype == DHCPINFORM:
            self._on_inform(request, in_port, ctx)
        else:
            logger.debug("ignoring DHCP message type %s from %s", mtype, mac)

    def _on_discover(self, request: DHCPMessage, record, in_port: int, ctx=None) -> None:
        mac = request.chaddr
        if record.state == PENDING:
            # Device detected but not yet permitted: surface it to the
            # control interface and withhold the address.
            self.withheld += 1
            if ctx is not None:
                ctx.finish("dhcp", "withhold", decision="drop", cause="pending")
            self.bus.emit(
                "dhcp.device.pending",
                timestamp=self.now,
                mac=str(mac),
                hostname=record.hostname,
                port=in_port,
            )
            return
        if record.state == DENIED:
            self.withheld += 1
            if ctx is not None:
                ctx.finish("dhcp", "withhold", decision="deny", cause="device_denied")
            self.bus.emit(
                "dhcp.device.denied_attempt",
                timestamp=self.now,
                mac=str(mac),
                hostname=record.hostname,
            )
            return
        allocation = self.pool.allocate(mac)
        lease = self.leases.offer(
            mac, allocation, record.hostname, self.now, self.config.lease_time
        )
        self.offers += 1
        reply = request.reply(DHCPOFFER, yiaddr=lease.ip, server_id=self.server_id)
        if ctx is not None:
            ctx.hop("dhcp", "offer", cause=f"ip={lease.ip}")
        self._fill_options(reply, lease, request)
        self._send_reply(reply, in_port, ctx)

    def _on_request(self, request: DHCPMessage, record, in_port: int, ctx=None) -> None:
        mac = request.chaddr
        if record.state != "permitted":
            self._nak(request, in_port, ctx)
            return
        requested = request.requested_ip or request.ciaddr
        lease = self.leases.by_mac(mac)
        if lease is None:
            # REQUEST without prior OFFER (e.g. renewal after restart):
            # allocate if the requested address is still this device's.
            allocation = self.pool.lookup(mac)
            if allocation is None:
                allocation = self.pool.allocate(mac)
            lease = self.leases.offer(
                mac, allocation, record.hostname, self.now, self.config.lease_time
            )
        if requested and not requested.is_unspecified and requested != lease.ip:
            self._nak(request, in_port, ctx)
            return
        was_bound = lease.state == STATE_BOUND
        self.leases.bind(mac, self.now, self.config.lease_time)
        self.acks += 1
        if self._m_acks is not None:
            self._m_acks.inc()
            discovered_at = self._discover_at.pop(mac, None)
            if discovered_at is not None:
                self._m_handshake.observe(self.now - discovered_at)
        reply = request.reply(DHCPACK, yiaddr=lease.ip, server_id=self.server_id)
        if ctx is not None:
            ctx.hop("dhcp", "ack", cause=f"ip={lease.ip}")
        self._fill_options(reply, lease, request)
        self._send_reply(reply, in_port, ctx)
        action = "renewed" if was_bound else "granted"
        self.bus.emit(
            f"dhcp.lease.{action}",
            timestamp=self.now,
            mac=str(mac),
            ip=str(lease.ip),
            hostname=lease.hostname,
            expires=lease.expires_at,
            port=in_port,
        )

    def _on_release(self, request: DHCPMessage) -> None:
        self._revoke(request.chaddr, "released")

    def _on_inform(self, request: DHCPMessage, in_port: int, ctx=None) -> None:
        reply = request.reply(DHCPACK, yiaddr="0.0.0.0", server_id=self.server_id)
        reply.set_option_ip(OPT_DNS_SERVER, self.config.router_ip)
        self._send_reply(reply, in_port, ctx)

    def _nak(self, request: DHCPMessage, in_port: int, ctx=None) -> None:
        self.naks += 1
        if self._m_naks is not None:
            self._m_naks.inc()
            self._discover_at.pop(request.chaddr, None)
        reply = request.reply(DHCPNAK, yiaddr="0.0.0.0", server_id=self.server_id)
        if ctx is not None:
            ctx.hop("dhcp", "nak", cause=f"mac={request.chaddr}")
        self._send_reply(reply, in_port, ctx)
        self.bus.emit(
            "dhcp.lease.denied",
            timestamp=self.now,
            mac=str(request.chaddr),
            hostname=request.hostname or "",
        )

    def _revoke(self, mac: MACAddress, reason: str) -> None:
        lease = self.leases.release(mac)
        if lease is not None:
            self.bus.emit(
                "dhcp.lease.revoked",
                timestamp=self.now,
                mac=str(mac),
                ip=str(lease.ip),
                hostname=lease.hostname,
                reason=reason,
            )

    def revoke_device(self, mac) -> None:
        """Control-API entry: tear down a device's lease immediately."""
        self._revoke(MACAddress(mac), "policy")

    def _expire_leases(self) -> None:
        for lease in self.leases.expire_due(self.now):
            self.bus.emit(
                "dhcp.lease.revoked",
                timestamp=self.now,
                mac=str(lease.mac),
                ip=str(lease.ip),
                hostname=lease.hostname,
                reason="expired",
            )

    # ------------------------------------------------------------------
    # Reply plumbing
    # ------------------------------------------------------------------

    def _fill_options(
        self, reply: DHCPMessage, lease, request: Optional[DHCPMessage] = None
    ) -> None:
        """Populate reply options, honouring the client's option-55 list.

        Lease time is always included (mandatory on OFFER/ACK); the
        network parameters are filtered to what the client asked for,
        per RFC 2132 §9.8 — clients without a parameter list get all.
        """
        from ...net.dhcp_msg import OPT_PARAM_REQUEST

        wanted = None
        if request is not None:
            raw = request.options.get(OPT_PARAM_REQUEST)
            if raw:
                wanted = set(raw)
        if wanted is None or OPT_SUBNET_MASK in wanted:
            reply.options[OPT_SUBNET_MASK] = lease.allocation.netmask.packed
        if wanted is None or OPT_ROUTER in wanted:
            reply.set_option_ip(OPT_ROUTER, lease.gateway)
        # DNS points at the device's gateway: the router's DNS proxy.
        if wanted is None or OPT_DNS_SERVER in wanted:
            reply.set_option_ip(OPT_DNS_SERVER, lease.gateway)
        reply.set_option_u32(OPT_LEASE_TIME, int(self.config.lease_time))

    def _send_reply(self, reply: DHCPMessage, in_port: int, ctx=None) -> None:
        # Replies go link-layer unicast to the client MAC but IP broadcast
        # (the client has no address yet), matching common server practice.
        udp = UDP(sport=PORT_DHCP_SERVER, dport=PORT_DHCP_CLIENT, payload=reply)
        packet = IPv4(
            src=self.server_id,
            dst=IPv4Address.broadcast(),
            proto=PROTO_UDP,
            payload=udp,
        )
        frame = Ethernet(
            dst=reply.chaddr,
            src=self.config.router_mac,
            ethertype=ETH_TYPE_IPV4,
            payload=packet,
        )
        # The reply is fresh bytes continuing the request's lineage.
        self.controller.send_packet(with_trace(frame.pack(), ctx), output(in_port))
