"""The Homework DHCP server NOX module: pools, leases, policy, server."""

from .leases import (
    Lease,
    LeaseDatabase,
    STATE_BOUND,
    STATE_EXPIRED,
    STATE_OFFERED,
    STATE_RELEASED,
)
from .policy import (
    DENIED,
    DeviceRecord,
    DevicePolicyStore,
    PENDING,
    PERMITTED,
    VALID_STATES,
)
from .pool import AddressPool, Allocation, FlatPool, IsolatingPool
from .server import DhcpServer

__all__ = [
    "DhcpServer",
    "Lease",
    "LeaseDatabase",
    "STATE_OFFERED",
    "STATE_BOUND",
    "STATE_EXPIRED",
    "STATE_RELEASED",
    "DevicePolicyStore",
    "DeviceRecord",
    "PENDING",
    "PERMITTED",
    "DENIED",
    "VALID_STATES",
    "AddressPool",
    "Allocation",
    "IsolatingPool",
    "FlatPool",
]
