"""A minimal HTTP/1.1 message layer for the control API.

The paper's control API is "a simple RESTful web interface to the
router".  This module implements just enough of HTTP — request/response
parsing and serialisation with Content-Length framing — to serve that
interface over any byte transport (the in-process handler used by the
UIs, or a TCP stream in the simulator).
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple, Union

from ...core.errors import ServiceError

CRLF = "\r\n"

STATUS_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}

SUPPORTED_METHODS = ("GET", "POST", "PUT", "DELETE", "PATCH", "HEAD")


class HttpError(ServiceError):
    """Carries an HTTP status for the error response."""

    def __init__(self, status: int, message: str = ""):
        super().__init__(message or STATUS_REASONS.get(status, "error"))
        self.status = status


class HttpRequest:
    """A parsed request."""

    def __init__(
        self,
        method: str,
        path: str,
        headers: Optional[Dict[str, str]] = None,
        body: bytes = b"",
    ):
        self.method = method.upper()
        # Split query string off the path.
        self.raw_path = path
        self.path, _, query = path.partition("?")
        self.query: Dict[str, str] = {}
        if query:
            for pair in query.split("&"):
                key, _, value = pair.partition("=")
                if key:
                    self.query[key] = value
        self.headers = {k.lower(): v for k, v in (headers or {}).items()}
        self.body = body

    def json(self) -> dict:
        """Decode the body as a JSON object (400 on failure)."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise HttpError(400, "JSON body must be an object")
        return data

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def serialize(self) -> bytes:
        headers = dict(self.headers)
        headers.setdefault("content-length", str(len(self.body)))
        lines = [f"{self.method} {self.raw_path} HTTP/1.1"]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        return (CRLF.join(lines) + CRLF + CRLF).encode("utf-8") + self.body

    @classmethod
    def parse(cls, raw: bytes) -> "HttpRequest":
        head, _, body = raw.partition(b"\r\n\r\n")
        try:
            text = head.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise HttpError(400, "request head is not UTF-8") from exc
        lines = text.split(CRLF)
        if not lines or not lines[0]:
            raise HttpError(400, "empty request")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise HttpError(400, f"malformed request line {lines[0]!r}")
        method, path, _version = parts
        if method.upper() not in SUPPORTED_METHODS:
            raise HttpError(405, f"method {method!r} not supported")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise HttpError(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length")
        if length is not None:
            try:
                expected = int(length)
            except ValueError as exc:
                raise HttpError(400, "bad Content-Length") from exc
            if len(body) < expected:
                raise HttpError(400, "truncated body")
            body = body[:expected]
        return cls(method, path, headers, body)

    def __repr__(self) -> str:
        return f"HttpRequest({self.method} {self.raw_path})"


class HttpResponse:
    """A response, usually built via :func:`json_response`."""

    def __init__(
        self,
        status: int = 200,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
        content_type: str = "application/json",
    ):
        self.status = status
        self.body = body
        self.headers = {k.lower(): v for k, v in (headers or {}).items()}
        if body and "content-type" not in self.headers:
            self.headers["content-type"] = content_type

    def json(self) -> Union[dict, list]:
        return json.loads(self.body.decode("utf-8"))

    def serialize(self) -> bytes:
        reason = STATUS_REASONS.get(self.status, "Unknown")
        headers = dict(self.headers)
        headers["content-length"] = str(len(self.body))
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        return (CRLF.join(lines) + CRLF + CRLF).encode("utf-8") + self.body

    @classmethod
    def parse(cls, raw: bytes) -> "HttpResponse":
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode("utf-8").split(CRLF)
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise HttpError(400, f"malformed status line {lines[0]!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return cls(status, body, headers)

    def __repr__(self) -> str:
        return f"HttpResponse({self.status}, {len(self.body)} bytes)"


def json_response(data, status: int = 200) -> HttpResponse:
    """Build a JSON response from any JSON-serialisable value."""
    return HttpResponse(
        status, json.dumps(data, default=str, sort_keys=True).encode("utf-8")
    )


def text_response(text: str, status: int = 200) -> HttpResponse:
    """Plain-text response (metrics exposition, health probes)."""
    return HttpResponse(
        status, text.encode("utf-8"), content_type="text/plain; charset=utf-8"
    )


def error_response(status: int, message: str) -> HttpResponse:
    return json_response({"error": message, "status": status}, status)
