"""The control API NOX module: HTTP layer, REST router, endpoints."""

from .api import ControlApi
from .http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    error_response,
    json_response,
)
from .rest import RestRouter

__all__ = [
    "ControlApi",
    "RestRouter",
    "HttpRequest",
    "HttpResponse",
    "HttpError",
    "json_response",
    "error_response",
]
