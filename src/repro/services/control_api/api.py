"""The control API NOX module.

"The control API NOX module provides a simple RESTful web interface to
the router, invoked to exercise control over connected devices: by the
Linux udev subsystem when a suitably formatted USB storage device is
inserted; and directly by the various graphical control interfaces.  The
control API configures the behaviour of our DHCP server and DNS proxy
NOX modules."

Resources::

    GET    /status
    GET    /devices                 list all devices with policy state
    GET    /devices/{mac}
    POST   /devices/{mac}/permit    drag to the permitted category
    POST   /devices/{mac}/deny      drag to the denied category
    PUT    /devices/{mac}/metadata  attach user-supplied metadata
    GET    /leases
    GET    /flows?window=N          recent flows from hwdb
    GET    /bandwidth?window=N      per-device byte totals from hwdb
    GET    /policies
    POST   /policies                install a policy (JSON document)
    DELETE /policies/{id}
    POST   /policies/{id}/enable
    POST   /policies/{id}/disable
    POST   /usb/insert              {"key_id": ...} — udev hook
    POST   /usb/remove              {"key_id": ...}
    GET    /dns/rules               current per-device site rules

Requests carry the shared token in ``X-Auth-Token``.
"""

from __future__ import annotations

import logging
from typing import Optional, TYPE_CHECKING

from ...core.config import RouterConfig
from ...core.errors import PolicyError
from ...core.events import EventBus
from ...nox.component import Component
from .http import HttpError, HttpRequest, HttpResponse, error_response, json_response
from .rest import RestRouter, add_metrics_route

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...hwdb.database import HomeworkDatabase
    from ...policy.engine import PolicyEngine
    from ..dhcp.server import DhcpServer
    from ..dnsproxy.proxy import DnsProxy
    from ..routing import RouterCore

logger = logging.getLogger(__name__)


class ControlApi(Component):
    """REST control surface wired to the DHCP server, DNS proxy and policies."""

    name = "control_api"

    def __init__(
        self,
        controller,
        config: RouterConfig,
        bus: EventBus,
        dhcp: "DhcpServer",
        dns_proxy: Optional["DnsProxy"] = None,
        policy_engine: Optional["PolicyEngine"] = None,
        router_core: Optional["RouterCore"] = None,
        hwdb: Optional["HomeworkDatabase"] = None,
    ):
        super().__init__(controller)
        self.config = config
        self.bus = bus
        self.dhcp = dhcp
        self.dns_proxy = dns_proxy
        self.policy_engine = policy_engine
        self.router_core = router_core
        self.hwdb = hwdb
        self.registry = getattr(controller, "registry", None)
        self.router = RestRouter(registry=self.registry)
        self.requests_served = 0
        self._register_routes()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Serve one request object (the in-process UI path)."""
        self.requests_served += 1
        if request.header("x-auth-token") != self.config.control_api_token:
            return error_response(401, "missing or bad X-Auth-Token")
        return self.router.dispatch(request)

    def handle_bytes(self, raw: bytes) -> bytes:
        """Serve raw HTTP bytes (the on-the-wire path)."""
        try:
            request = HttpRequest.parse(raw)
        except HttpError as exc:
            return error_response(exc.status, str(exc)).serialize()
        return self.handle_request(request).serialize()

    def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> HttpResponse:
        """Convenience client used by the UIs and the udev monitor."""
        import json as _json

        raw = _json.dumps(body).encode("utf-8") if body is not None else b""
        request = HttpRequest(
            method,
            path,
            headers={"x-auth-token": self.config.control_api_token},
            body=raw,
        )
        return self.handle_request(request)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def _register_routes(self) -> None:
        r = self.router
        r.add("GET", "/status", self._status)
        r.add("GET", "/devices", self._devices)
        r.add("GET", "/devices/{mac}", self._device)
        r.add("POST", "/devices/{mac}/permit", self._permit)
        r.add("POST", "/devices/{mac}/deny", self._deny)
        r.add("PUT", "/devices/{mac}/metadata", self._metadata)
        r.add("GET", "/leases", self._leases)
        r.add("GET", "/flows", self._flows)
        r.add("GET", "/bandwidth", self._bandwidth)
        r.add("GET", "/policies", self._policies)
        r.add("POST", "/policies", self._install_policy)
        r.add("DELETE", "/policies/{pid}", self._remove_policy)
        r.add("POST", "/policies/{pid}/enable", self._enable_policy)
        r.add("POST", "/policies/{pid}/disable", self._disable_policy)
        r.add("POST", "/usb/insert", self._usb_insert)
        r.add("POST", "/usb/remove", self._usb_remove)
        r.add("GET", "/dns/rules", self._dns_rules)
        add_metrics_route(r, self.registry)

    # -- status / devices -------------------------------------------------

    def _status(self, request: HttpRequest) -> HttpResponse:
        leases = self.dhcp.leases
        data = {
            "router_ip": str(self.config.router_ip),
            "subnet": str(self.config.subnet),
            "devices": len(self.dhcp.policy),
            "active_leases": len(leases.active(self.now)),
            "pending": len(self.dhcp.policy.devices("pending")),
            "permitted": len(self.dhcp.policy.devices("permitted")),
            "denied": len(self.dhcp.policy.devices("denied")),
            "policies": len(self.policy_engine.policies()) if self.policy_engine else 0,
            "time": self.now,
        }
        return json_response(data)

    def _devices(self, request: HttpRequest) -> HttpResponse:
        state = request.query.get("state")
        records = self.dhcp.policy.devices(state)
        out = []
        for record in records:
            entry = record.to_dict()
            lease = self.dhcp.leases.by_mac(record.mac)
            entry["ip"] = str(lease.ip) if lease is not None else None
            entry["lease_state"] = lease.state if lease is not None else None
            out.append(entry)
        return json_response(out)

    def _device(self, request: HttpRequest, mac: str) -> HttpResponse:
        record = self.dhcp.policy.get(mac)
        if record is None:
            raise HttpError(404, f"unknown device {mac}")
        entry = record.to_dict()
        lease = self.dhcp.leases.by_mac(mac)
        entry["ip"] = str(lease.ip) if lease is not None else None
        entry["lease_state"] = lease.state if lease is not None else None
        if self.policy_engine is not None:
            entry["restrictions"] = self.policy_engine.restrictions_for(
                mac, self.now
            ).to_dict()
        return json_response(entry)

    def _permit(self, request: HttpRequest, mac: str) -> HttpResponse:
        record = self.dhcp.policy.permit(mac, self.now)
        # Policies outrank the control UI: if an installed document denies
        # this device, re-enforcement reasserts the denial right away
        # instead of leaving a permit window until the next sweep.
        if self.policy_engine is not None:
            self.policy_engine.enforce(self.now)
            record = self.dhcp.policy.get(mac) or record
        self.bus.emit("control.device.permitted", timestamp=self.now, mac=str(record.mac))
        return json_response(record.to_dict())

    def _deny(self, request: HttpRequest, mac: str) -> HttpResponse:
        record = self.dhcp.policy.deny(mac, self.now)
        # Denial is immediate: revoke the lease and evict live flows.
        self.dhcp.revoke_device(mac)
        if self.router_core is not None:
            self.router_core.evict_device(mac)
        self.bus.emit("control.device.denied", timestamp=self.now, mac=str(record.mac))
        return json_response(record.to_dict())

    def _metadata(self, request: HttpRequest, mac: str) -> HttpResponse:
        body = request.json()
        if not body:
            raise HttpError(400, "metadata body required")
        record = self.dhcp.policy.set_metadata(mac, **body)
        return json_response(record.to_dict())

    # -- leases / measurement ----------------------------------------------

    def _leases(self, request: HttpRequest) -> HttpResponse:
        out = []
        for lease in self.dhcp.leases.all():
            out.append(
                {
                    "mac": str(lease.mac),
                    "ip": str(lease.ip),
                    "gateway": str(lease.gateway),
                    "hostname": lease.hostname,
                    "state": lease.state,
                    "expires_at": lease.expires_at,
                    "renew_count": lease.renew_count,
                }
            )
        return json_response(out)

    def _flows(self, request: HttpRequest) -> HttpResponse:
        if self.hwdb is None:
            raise HttpError(404, "hwdb not attached")
        window = float(request.query.get("window", "10"))
        result = self.hwdb.query(
            f"SELECT src_ip, dst_ip, proto, src_port, dst_port, bytes "
            f"FROM flows [RANGE {window} SECONDS]"
        )
        return json_response(result.to_dicts())

    def _bandwidth(self, request: HttpRequest) -> HttpResponse:
        if self.hwdb is None:
            raise HttpError(404, "hwdb not attached")
        window = float(request.query.get("window", "10"))
        result = self.hwdb.query(
            f"SELECT src_mac, sum(bytes) AS bytes, sum(packets) AS packets "
            f"FROM flows [RANGE {window} SECONDS] GROUP BY src_mac "
            f"ORDER BY bytes DESC"
        )
        return json_response(result.to_dicts())

    # -- policies -----------------------------------------------------------

    def _need_engine(self) -> "PolicyEngine":
        if self.policy_engine is None:
            raise HttpError(404, "policy engine not attached")
        return self.policy_engine

    def _policies(self, request: HttpRequest) -> HttpResponse:
        engine = self._need_engine()
        out = []
        for policy in engine.policies():
            entry = policy.to_dict()
            entry["active_now"] = policy.active(self.now, engine.inserted_keys)
            out.append(entry)
        return json_response(out)

    def _install_policy(self, request: HttpRequest) -> HttpResponse:
        engine = self._need_engine()
        body = request.json()
        try:
            policy = engine.install_document(body, self.now)
        except PolicyError as exc:
            raise HttpError(400, f"bad policy document: {exc}") from exc
        return json_response(policy.to_dict(), status=201)

    def _remove_policy(self, request: HttpRequest, pid: str) -> HttpResponse:
        engine = self._need_engine()
        try:
            engine.remove(int(pid), self.now)
        except ValueError as exc:
            raise HttpError(400, f"bad policy id {pid!r}") from exc
        return HttpResponse(204)

    def _enable_policy(self, request: HttpRequest, pid: str) -> HttpResponse:
        self._need_engine().set_enabled(int(pid), True, self.now)
        return json_response({"id": int(pid), "enabled": True})

    def _disable_policy(self, request: HttpRequest, pid: str) -> HttpResponse:
        self._need_engine().set_enabled(int(pid), False, self.now)
        return json_response({"id": int(pid), "enabled": False})

    # -- USB mediation --------------------------------------------------------

    def _usb_insert(self, request: HttpRequest) -> HttpResponse:
        engine = self._need_engine()
        key_id = str(request.json().get("key_id", ""))
        if not key_id:
            raise HttpError(400, "key_id required")
        engine.key_inserted(key_id, self.now)
        return json_response({"inserted": key_id})

    def _usb_remove(self, request: HttpRequest) -> HttpResponse:
        engine = self._need_engine()
        key_id = str(request.json().get("key_id", ""))
        if not key_id:
            raise HttpError(400, "key_id required")
        engine.key_removed(key_id, self.now)
        return json_response({"removed": key_id})

    # -- DNS ---------------------------------------------------------------------

    def _dns_rules(self, request: HttpRequest) -> HttpResponse:
        if self.dns_proxy is None:
            raise HttpError(404, "dns proxy not attached")
        return json_response(self.dns_proxy.filter.rules())
