"""Tiny REST router: path templates → handlers."""

from __future__ import annotations

import logging
import re
from typing import Callable, Dict, List, Optional, Tuple

from .http import HttpError, HttpRequest, HttpResponse, error_response, text_response

logger = logging.getLogger(__name__)

Handler = Callable[..., HttpResponse]


def add_metrics_route(router: "RestRouter", registry) -> None:
    """Mount ``GET /metrics`` serving ``registry`` in text exposition format.

    Scrapers poll this endpoint the way Prometheus would; the same
    snapshot is what the flusher periodically publishes into the hwdb
    ``Metrics`` table.
    """

    def metrics_handler(request: HttpRequest) -> HttpResponse:
        if registry is None:
            raise HttpError(404, "metrics registry not attached")
        return text_response(registry.render_text())

    router.add("GET", "/metrics", metrics_handler)


def _compile_template(template: str) -> re.Pattern:
    """``/devices/{mac}/permit`` → regex with named groups."""
    parts = []
    for segment in template.strip("/").split("/"):
        if segment.startswith("{") and segment.endswith("}"):
            name = segment[1:-1]
            parts.append(f"(?P<{name}>[^/]+)")
        else:
            parts.append(re.escape(segment))
    return re.compile("^/" + "/".join(parts) + "/?$")


class RestRouter:
    """Routes (method, path) to handlers with extracted path params."""

    def __init__(self, registry=None) -> None:
        self._routes: List[Tuple[str, re.Pattern, str, Handler]] = []
        self._m_errors = (
            registry.counter("http.handler_error_total") if registry is not None else None
        )

    def route(self, method: str, template: str) -> Callable[[Handler], Handler]:
        """Decorator: ``@router.route("GET", "/devices/{mac}")``."""
        pattern = _compile_template(template)

        def decorator(handler: Handler) -> Handler:
            self._routes.append((method.upper(), pattern, template, handler))
            return handler

        return decorator

    def add(self, method: str, template: str, handler: Handler) -> None:
        self._routes.append((method.upper(), _compile_template(template), template, handler))

    def dispatch(self, request: HttpRequest) -> HttpResponse:
        """Find and invoke the handler; 404/405 when nothing matches."""
        path_matched = False
        for method, pattern, _template, handler in self._routes:
            match = pattern.match(request.path)
            if match is None:
                continue
            path_matched = True
            if method != request.method:
                continue
            try:
                return handler(request, **match.groupdict())
            except HttpError as exc:
                return error_response(exc.status, str(exc))
            except Exception as exc:  # noqa: BLE001 - API must answer
                logger.exception("handler for %s %s failed", method, request.path)
                if self._m_errors is not None:
                    self._m_errors.inc()
                return error_response(500, f"internal error: {exc}")
        if path_matched:
            return error_response(405, f"method {request.method} not allowed")
        return error_response(404, f"no such resource {request.path}")

    def routes(self) -> List[str]:
        return [f"{m} {t}" for m, _p, t, _h in self._routes]
